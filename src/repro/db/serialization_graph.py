"""Serialization graph ``SG(H)`` with cycle detection.

Nodes are committed jobs; a directed edge ``T_i -> T_j`` means ``T_i`` must
precede ``T_j`` in any equivalent serial order.  The graph is small (one node
per committed job), so the implementation favours clarity: adjacency sets, a
Kahn topological sort for acyclicity, and an explicit DFS to extract a
witness cycle when one exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class SerializationGraph:
    """A directed graph over job names with labelled edges."""

    def __init__(self, nodes: Iterable[str] = ()):
        self._succ: Dict[str, Set[str]] = {}
        self._labels: Dict[Tuple[str, str], Set[str]] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Ensure ``node`` exists (idempotent)."""
        self._succ.setdefault(node, set())

    def add_edge(self, src: str, dst: str, label: str = "") -> None:
        """Add ``src -> dst``; self-loops are ignored (a transaction never
        conflicts with itself in ``SG(H)``)."""
        if src == dst:
            return
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)
        if label:
            self._labels.setdefault((src, dst), set()).add(label)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._succ))

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(
            sorted((s, d) for s, dsts in self._succ.items() for d in dsts)
        )

    def successors(self, node: str) -> Tuple[str, ...]:
        """Nodes reachable from ``node`` by one edge, sorted."""
        return tuple(sorted(self._succ.get(node, ())))

    def edge_labels(self, src: str, dst: str) -> Tuple[str, ...]:
        """Conflict kinds ("wr", "rw", "ww") that induced ``src -> dst``."""
        return tuple(sorted(self._labels.get((src, dst), ())))

    def has_edge(self, src: str, dst: str) -> bool:
        """Whether the edge ``src -> dst`` exists."""
        return dst in self._succ.get(src, ())

    def __len__(self) -> int:
        return len(self._succ)

    # ------------------------------------------------------------------
    # Acyclicity
    # ------------------------------------------------------------------
    def topological_order(self) -> Optional[Tuple[str, ...]]:
        """Kahn's algorithm.

        Returns a topological order of the nodes (a valid serialization
        order of the committed transactions), or ``None`` if the graph has
        a cycle.  Among admissible orders the lexicographically smallest is
        returned, making results deterministic for tests.
        """
        indeg: Dict[str, int] = {n: 0 for n in self._succ}
        for dsts in self._succ.values():
            for d in dsts:
                indeg[d] += 1
        ready = sorted(n for n, deg in indeg.items() if deg == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            inserted = False
            for d in sorted(self._succ[node]):
                indeg[d] -= 1
                if indeg[d] == 0:
                    ready.append(d)
                    inserted = True
            if inserted:
                ready.sort()
        if len(order) != len(self._succ):
            return None
        return tuple(order)

    def is_acyclic(self) -> bool:
        """Whether the graph admits a topological order."""
        return self.topological_order() is not None

    def find_cycle(self) -> Optional[Tuple[str, ...]]:
        """Return one cycle as a tuple of nodes (without repeating the
        first node at the end), or ``None`` when the graph is acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[str, int] = {n: WHITE for n in self._succ}
        parent: Dict[str, Optional[str]] = {}

        for root in sorted(self._succ):
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[str, Iterable[str]]] = [
                (root, iter(sorted(self._succ[root])))
            ]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(self._succ[nxt]))))
                        advanced = True
                        break
                    if colour[nxt] == GREY:
                        # Found a back edge node -> nxt: unwind the parents.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]  # type: ignore[assignment]
                            cycle.append(cur)
                        cycle.reverse()
                        return tuple(cycle)
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None
