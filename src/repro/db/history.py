"""Committed-history recording.

A :class:`History` is the sequence of *observable* data events of a run:

* ``read`` events — a job bound its read of item ``x`` to a particular
  installed version (identified by that version's install sequence number);
* ``install`` events — a committed write placed a new version of ``x``;
* ``commit`` / ``abort`` events — transaction outcomes.

This is exactly the information needed to build ``SG(H)`` and check the
paper's Theorem 3 (all histories produced by PCP-DA are serializable).  The
history speaks in terms of *jobs* (transaction instances, e.g. ``"T2#0"``)
because under periodic execution each instance is an independent transaction
for serializability purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro._compat import DATACLASS_SLOTS


class HistoryEventKind(enum.Enum):
    READ = "read"
    INSTALL = "install"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(**DATACLASS_SLOTS)
class HistoryEvent:
    """One observable event of a committed history.

    Attributes:
        kind: read / install / commit / abort.
        job: the job (transaction instance) performing the event.
        item: the data item, for read/install events.
        version_seq: for READ — the install sequence number of the version
            observed (0 = initial version); for INSTALL — the sequence number
            of the version created.
        time: simulation time of the event.
        seq: global history order (assigned by the recorder).
    """

    kind: HistoryEventKind
    job: str
    item: Optional[str]
    version_seq: Optional[int]
    time: float
    seq: int


class History:
    """Append-only recorder of history events."""

    def __init__(self) -> None:
        self._events: List[HistoryEvent] = []
        self._committed: List[str] = []
        self._aborted: List[str] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[HistoryEvent]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[HistoryEvent, ...]:
        return tuple(self._events)

    @property
    def committed_jobs(self) -> Tuple[str, ...]:
        """Jobs that committed, in commit order."""
        return tuple(self._committed)

    @property
    def aborted_jobs(self) -> Tuple[str, ...]:
        """Jobs that were aborted at least once (abort-based baselines only)."""
        return tuple(self._aborted)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(
        self,
        kind: HistoryEventKind,
        job: str,
        item: Optional[str],
        version_seq: Optional[int],
        time: float,
    ) -> HistoryEvent:
        event = HistoryEvent(kind, job, item, version_seq, time, len(self._events))
        self._events.append(event)
        return event

    def record_read(self, job: str, item: str, version_seq: int, time: float) -> None:
        """A job observed version ``version_seq`` of ``item``."""
        self._append(HistoryEventKind.READ, job, item, version_seq, time)

    def record_install(self, job: str, item: str, version_seq: int, time: float) -> None:
        """A committed write of ``job`` created version ``version_seq``."""
        self._append(HistoryEventKind.INSTALL, job, item, version_seq, time)

    def record_commit(self, job: str, time: float) -> None:
        """The job committed at ``time``."""
        self._append(HistoryEventKind.COMMIT, job, None, None, time)
        self._committed.append(job)

    def record_abort(self, job: str, time: float) -> None:
        """The job's current execution was aborted at ``time``."""
        self._append(HistoryEventKind.ABORT, job, None, None, time)
        self._aborted.append(job)

    # ------------------------------------------------------------------
    # Views used by the serializability checker
    # ------------------------------------------------------------------
    def committed_reads(self) -> Sequence[HistoryEvent]:
        """READ events of the *surviving* execution of each committed job.

        Reads performed by an execution that was later aborted and restarted
        (2PL-HP, deadlock-resolution aborts) do not participate in
        ``SG(H)``: the restarted execution re-reads.  For each committed job
        only READ events after its last ABORT are kept; reads by jobs that
        never committed (still running at the horizon) are excluded too.
        """
        committed = set(self._committed)
        last_abort: dict = {}
        for e in self._events:
            if e.kind is HistoryEventKind.ABORT:
                last_abort[e.job] = e.seq
        return [
            e
            for e in self._events
            if e.kind is HistoryEventKind.READ
            and e.job in committed
            and e.seq > last_abort.get(e.job, -1)
        ]

    def installs(self) -> Sequence[HistoryEvent]:
        """INSTALL events, in global history order (= install seq order)."""
        return [e for e in self._events if e.kind is HistoryEventKind.INSTALL]

    def commit_order(self) -> Tuple[str, ...]:
        """Alias of :attr:`committed_jobs` for readability at call sites."""
        return self.committed_jobs
