"""Memory-resident database substrate.

The paper assumes "a single processor with a memory resident database".
This package provides:

* :class:`~repro.db.database.Database` — named data items holding versioned
  values, with both *update-in-workspace* (deferred install at commit) and
  *update-in-place* (immediate install) write paths, because PCP-DA uses the
  former while RW-PCP/CCP use the latter;
* :class:`~repro.db.history.History` — a recorder of committed reads and
  installed writes, sufficient to decide conflict serializability;
* :class:`~repro.db.serialization_graph.SerializationGraph` — ``SG(H)`` with
  cycle detection, used by Theorem 3's correctness check.
"""

from repro.db.database import Database, DataItem, Version
from repro.db.history import History, HistoryEvent
from repro.db.serialization_graph import SerializationGraph
from repro.db.serializability import (
    check_serializable,
    check_serializable_fast,
    serialization_order,
)

__all__ = [
    "DataItem",
    "Database",
    "History",
    "HistoryEvent",
    "SerializationGraph",
    "Version",
    "check_serializable",
    "check_serializable_fast",
    "serialization_order",
]
