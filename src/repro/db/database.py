"""The memory-resident database: data items and installed versions.

Each :class:`DataItem` stores the sequence of *installed* versions, stamped
with the installing transaction and the install time.  Under the
update-in-workspace model a transaction's writes are buffered in its private
workspace (:mod:`repro.engine.workspace`) and installed here atomically at
commit; under update-in-place a write is installed the moment the write
operation executes.

Values are opaque; for traceability the engine writes tokens like
``"T2#0@5"`` (transaction, instance, time), which is enough for the
serializability checker to bind every read to the version it observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class Version:
    """One installed version of a data item.

    Attributes:
        value: the stored value (opaque to the engine).
        writer: name of the *job* (transaction instance) that installed it,
            or ``None`` for the initial version.
        time: simulation time of installation.
        seq: global install sequence number; total order over installs.
    """

    value: Any
    writer: Optional[str]
    time: float
    seq: int


class DataItem:
    """A single named data item with its version history."""

    __slots__ = ("name", "_versions")

    def __init__(self, name: str, initial_value: Any = None):
        self.name = name
        self._versions: List[Version] = [Version(initial_value, None, 0.0, 0)]

    @property
    def current(self) -> Version:
        """The most recently installed version."""
        return self._versions[-1]

    @property
    def versions(self) -> Tuple[Version, ...]:
        """All installed versions, oldest first."""
        return tuple(self._versions)

    def install(self, value: Any, writer: str, time: float, seq: int) -> Version:
        """Install a new committed version and return it."""
        if time < self.current.time:
            raise SimulationError(
                f"install on {self.name} at t={time} precedes latest version "
                f"at t={self.current.time}"
            )
        version = Version(value, writer, time, seq)
        self._versions.append(version)
        return version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataItem({self.name!r}, current={self.current.value!r})"


class Database:
    """A set of named data items.

    Items can be declared up front (from a task set's access sets) or
    created lazily on first touch; lazy creation keeps the worked examples
    terse while the workload generator declares everything explicitly.
    """

    def __init__(self, items: Iterable[str] = ()):
        self._items: Dict[str, DataItem] = {}
        self._install_seq = 0
        for name in items:
            self.declare(name)

    def declare(self, name: str, initial_value: Any = None) -> DataItem:
        """Create ``name`` if it does not exist; return the item."""
        if name not in self._items:
            self._items[name] = DataItem(name, initial_value)
        return self._items[name]

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __getitem__(self, name: str) -> DataItem:
        return self.declare(name)

    @property
    def item_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._items))

    def read_committed(self, name: str) -> Version:
        """Return the latest installed version of ``name``.

        This is what a reader observes under the update-in-workspace model
        even when another transaction holds a write lock: the writer's
        pending value lives only in its private workspace until commit.
        """
        return self[name].current

    def install(self, name: str, value: Any, writer: str, time: float) -> Version:
        """Install a committed value, assigning the next global sequence number."""
        self._install_seq += 1
        return self[name].install(value, writer, time, self._install_seq)

    def install_many(
        self, updates: Dict[str, Any], writer: str, time: float
    ) -> Dict[str, Version]:
        """Atomically install a set of updates (a commit's write-back).

        Items are installed in sorted order under one logical timestamp;
        the per-install sequence numbers remain distinct so ``ww`` ordering
        stays a total order.
        """
        return {
            name: self.install(name, value, writer, time)
            for name, value in sorted(updates.items())
        }

    def snapshot(self) -> Dict[str, Any]:
        """Current committed value of every item (for assertions in tests)."""
        return {name: item.current.value for name, item in self._items.items()}
