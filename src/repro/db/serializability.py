"""Conflict-serializability checking over committed histories.

This module turns a :class:`repro.db.history.History` into ``SG(H)`` and
checks acyclicity (the paper's Theorem 3 correctness criterion).

Edge construction, with writes modelled as *installed versions*:

* ``ww`` — for each item, consecutive installs by distinct jobs are ordered
  by install sequence.  (The paper argues blind writes need not constrain
  the serialization order; with deferred updates the install order *is* the
  commit order, so these edges are automatically consistent and never create
  a cycle on their own.)
* ``wr`` — a read that observed version ``v`` is preceded by the job that
  installed ``v``.
* ``rw`` — a read that observed version ``v`` of item ``x`` precedes every
  job that installed a later version of ``x``.

Because the engine binds every read to a concrete version, this check is
exact — no approximation of "read before/after write" by timestamps.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.db.history import History
from repro.db.serialization_graph import SerializationGraph
from repro.exceptions import SerializationViolation


def build_serialization_graph(history: History) -> SerializationGraph:
    """Construct ``SG(H)`` from a committed history."""
    graph = SerializationGraph(history.committed_jobs)

    # Installed versions per item, ordered by global install sequence.
    installs_by_item: Dict[str, List[Tuple[int, str]]] = {}
    for event in history.installs():
        assert event.item is not None and event.version_seq is not None
        installs_by_item.setdefault(event.item, []).append(
            (event.version_seq, event.job)
        )
    for versions in installs_by_item.values():
        versions.sort()

    # ww edges: install order per item.
    for item, versions in installs_by_item.items():
        for (_, earlier), (_, later) in zip(versions, versions[1:]):
            graph.add_edge(earlier, later, "ww")

    # wr and rw edges.
    committed = set(history.committed_jobs)
    for event in history.committed_reads():
        item = event.item
        assert item is not None and event.version_seq is not None
        observed_seq = event.version_seq
        for seq, writer in installs_by_item.get(item, ()):
            if writer not in committed:
                continue
            if seq == observed_seq:
                graph.add_edge(writer, event.job, "wr")
            elif seq > observed_seq:
                graph.add_edge(event.job, writer, "rw")
    return graph


def build_sparse_serialization_graph(history: History) -> SerializationGraph:
    """Construct a reachability-equivalent sparse variant of ``SG(H)``.

    :func:`build_serialization_graph` materialises every ``rw`` edge — a
    read that observed version ``v`` points at *every* later installer —
    which is quadratic per item and prohibitive for the stress harness's
    100k-transaction histories.  This variant keeps only:

    * ``ww`` — consecutive installs per item (identical to the dense
      graph's edges);
    * ``wr`` — installer of the observed version → reader (found by
      binary search instead of a scan);
    * ``rw`` — reader → the *first committed* later installer only.

    The dropped ``rw`` edges are redundant for acyclicity: the kept
    edges are a subset of the dense graph's (so a sparse cycle is a
    dense cycle), and every dropped edge reader → ``w`` is covered by
    the kept ``rw`` edge to the first committed later installer followed
    by the ``ww`` chain up to ``w`` (so a dense cycle maps to a sparse
    one) — the two checks render identical verdicts on any history.
    Construction is ``O(events · log versions)`` with ``O(events)`` edges.
    """
    import bisect

    graph = SerializationGraph(history.committed_jobs)

    installs_by_item: Dict[str, List[Tuple[int, str]]] = {}
    for event in history.installs():
        assert event.item is not None and event.version_seq is not None
        installs_by_item.setdefault(event.item, []).append(
            (event.version_seq, event.job)
        )
    committed = set(history.committed_jobs)
    for item, versions in installs_by_item.items():
        versions.sort()
        # ww chain between consecutive installers — exactly the dense
        # graph's ww edges (uncommitted installers included), so any rw
        # target can reach every later installer along the chain.
        for (_, earlier), (_, later) in zip(versions, versions[1:]):
            graph.add_edge(earlier, later, "ww")

    for event in history.committed_reads():
        item = event.item
        assert item is not None and event.version_seq is not None
        versions = installs_by_item.get(item, [])
        seqs = [seq for seq, _ in versions]
        index = bisect.bisect_left(seqs, event.version_seq)
        if index < len(versions) and versions[index][0] == event.version_seq:
            writer = versions[index][1]
            if writer in committed:
                graph.add_edge(writer, event.job, "wr")
            index += 1
        # First *committed* installer of a later version; uncommitted
        # installers never carry wr/rw edges, so skipping them preserves
        # reachability among the committed jobs.
        while index < len(versions):
            writer = versions[index][1]
            if writer in committed:
                graph.add_edge(event.job, writer, "rw")
                break
            index += 1
    return graph


def check_serializable(history: History) -> SerializationGraph:
    """Assert that ``history`` is conflict serializable.

    Returns:
        The serialization graph, for further inspection.

    Raises:
        SerializationViolation: carrying a witness cycle, when ``SG(H)``
        is cyclic.
    """
    graph = build_serialization_graph(history)
    cycle = graph.find_cycle()
    if cycle is not None:
        raise SerializationViolation(cycle)
    return graph


def check_serializable_fast(history: History) -> SerializationGraph:
    """Acyclicity check via the sparse graph — for very large histories.

    Same verdict as :func:`check_serializable` on any history (see
    :func:`build_sparse_serialization_graph`), but edge construction and
    cycle detection stay near-linear in the number of history events, so
    the stress harness can replay 100k-transaction overload traces in
    seconds.  The witness cycle may name a different (equally valid)
    cycle than the dense check would.

    Raises:
        SerializationViolation: carrying a witness cycle when cyclic.
    """
    graph = build_sparse_serialization_graph(history)
    cycle = graph.find_cycle()
    if cycle is not None:
        raise SerializationViolation(cycle)
    return graph


def serialization_order(history: History) -> Tuple[str, ...]:
    """Return one equivalent serial order of the committed jobs.

    Raises:
        SerializationViolation: when the history is not serializable.
    """
    graph = check_serializable(history)
    order = graph.topological_order()
    assert order is not None  # check_serializable guarantees acyclicity
    return order
