"""Conflict-serializability checking over committed histories.

This module turns a :class:`repro.db.history.History` into ``SG(H)`` and
checks acyclicity (the paper's Theorem 3 correctness criterion).

Edge construction, with writes modelled as *installed versions*:

* ``ww`` — for each item, consecutive installs by distinct jobs are ordered
  by install sequence.  (The paper argues blind writes need not constrain
  the serialization order; with deferred updates the install order *is* the
  commit order, so these edges are automatically consistent and never create
  a cycle on their own.)
* ``wr`` — a read that observed version ``v`` is preceded by the job that
  installed ``v``.
* ``rw`` — a read that observed version ``v`` of item ``x`` precedes every
  job that installed a later version of ``x``.

Because the engine binds every read to a concrete version, this check is
exact — no approximation of "read before/after write" by timestamps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.db.history import History
from repro.db.serialization_graph import SerializationGraph
from repro.exceptions import SerializationViolation


def build_serialization_graph(history: History) -> SerializationGraph:
    """Construct ``SG(H)`` from a committed history."""
    graph = SerializationGraph(history.committed_jobs)

    # Installed versions per item, ordered by global install sequence.
    installs_by_item: Dict[str, List[Tuple[int, str]]] = {}
    for event in history.installs():
        assert event.item is not None and event.version_seq is not None
        installs_by_item.setdefault(event.item, []).append(
            (event.version_seq, event.job)
        )
    for versions in installs_by_item.values():
        versions.sort()

    # ww edges: install order per item.
    for item, versions in installs_by_item.items():
        for (_, earlier), (_, later) in zip(versions, versions[1:]):
            graph.add_edge(earlier, later, "ww")

    # wr and rw edges.
    committed = set(history.committed_jobs)
    for event in history.committed_reads():
        item = event.item
        assert item is not None and event.version_seq is not None
        observed_seq = event.version_seq
        for seq, writer in installs_by_item.get(item, ()):
            if writer not in committed:
                continue
            if seq == observed_seq:
                graph.add_edge(writer, event.job, "wr")
            elif seq > observed_seq:
                graph.add_edge(event.job, writer, "rw")
    return graph


def check_serializable(history: History) -> SerializationGraph:
    """Assert that ``history`` is conflict serializable.

    Returns:
        The serialization graph, for further inspection.

    Raises:
        SerializationViolation: carrying a witness cycle, when ``SG(H)``
        is cyclic.
    """
    graph = build_serialization_graph(history)
    cycle = graph.find_cycle()
    if cycle is not None:
        raise SerializationViolation(cycle)
    return graph


def serialization_order(history: History) -> Tuple[str, ...]:
    """Return one equivalent serial order of the committed jobs.

    Raises:
        SerializationViolation: when the history is not serializable.
    """
    graph = check_serializable(history)
    order = graph.topological_order()
    assert order is not None  # check_serializable guarantees acyclicity
    return order
