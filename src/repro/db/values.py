"""Deterministic value semantics for the value-replay oracle.

Under the update-in-workspace model every committed write's value is a
pure function of (the writing job, the item, the values the job read from
*committed* versions).  That determinism is what lets
:mod:`repro.verify.value_replay` re-execute a committed history serially
and demand bit-identical final database state — a *final-state
serializability* oracle that is strictly stronger than checking ``SG(H)``
for cycles, because it also exercises version binding, install ordering
and read-from bookkeeping.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

#: Inputs longer than this are folded through SHA-1.  Without the fold,
#: values nest their inputs and grow *exponentially* along read-write
#: chains (job A's digest embeds B's embeds C's ...), which a long
#: hot-item workload turns into gigabytes of strings.  Hashing keeps the
#: function deterministic and collision-safe for the oracle while keeping
#: short histories human-readable.
_FOLD_THRESHOLD = 120


def write_digest(job_name: str, item: str, reads: Mapping[str, Any]) -> str:
    """The value a job writes to ``item``, as a pure function of its reads.

    Short renderings stay human-readable (a mismatch in the oracle prints
    *which* inputs diverged); long ones are folded through a hash to bound
    value growth.
    """
    inputs = ",".join(f"{key}={value}" for key, value in sorted(reads.items()))
    if len(inputs) > _FOLD_THRESHOLD:
        inputs = "#" + hashlib.sha1(inputs.encode()).hexdigest()
    return f"{job_name}:{item}({inputs})"
