"""Side-by-side comparison of two runs of the same task set.

The paper's argument is always comparative — "under RW-PCP T3 blocks four
units; under PCP-DA it does not".  :func:`compare_runs` lines two results
up per transaction (worst blocking, worst response, misses, restarts) and
per job (finish-time deltas), and :func:`render_comparison` prints the
table the Section 6 discussions read off their figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.exceptions import SpecificationError
from repro.trace.metrics import compute_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import SimulationResult


@dataclass(frozen=True)
class TransactionDelta:
    """Per-transaction differences between two runs (b minus a)."""

    transaction: str
    blocking_a: float
    blocking_b: float
    worst_response_a: Optional[float]
    worst_response_b: Optional[float]
    misses_a: int
    misses_b: int
    restarts_a: int
    restarts_b: int

    @property
    def blocking_delta(self) -> float:
        return self.blocking_b - self.blocking_a

    @property
    def response_delta(self) -> Optional[float]:
        if self.worst_response_a is None or self.worst_response_b is None:
            return None
        return self.worst_response_b - self.worst_response_a


@dataclass(frozen=True)
class RunComparison:
    """The full comparison of two runs."""

    protocol_a: str
    protocol_b: str
    transactions: Tuple[TransactionDelta, ...]
    total_blocking_a: float
    total_blocking_b: float
    misses_a: int
    misses_b: int
    restarts_a: int
    restarts_b: int

    def delta(self, transaction: str) -> TransactionDelta:
        """The per-transaction delta entry for ``transaction``."""
        for entry in self.transactions:
            if entry.transaction == transaction:
                return entry
        raise KeyError(transaction)


def _per_transaction(result: "SimulationResult") -> Dict[str, Dict[str, float]]:
    metrics = compute_metrics(result)
    out: Dict[str, Dict[str, float]] = {}
    for jm in metrics.jobs:
        entry = out.setdefault(
            jm.transaction,
            {"blocking": 0.0, "response": None, "misses": 0, "restarts": 0},
        )
        entry["blocking"] = max(entry["blocking"], jm.blocking_time)
        if jm.response_time is not None:
            current = entry["response"]
            entry["response"] = (
                jm.response_time if current is None else max(current, jm.response_time)
            )
        entry["misses"] += int(jm.missed_deadline)
        entry["restarts"] += jm.restarts
    return out


def compare_runs(
    result_a: "SimulationResult", result_b: "SimulationResult"
) -> RunComparison:
    """Compare two runs of the *same task set* (checked by name sets)."""
    if set(result_a.taskset.names) != set(result_b.taskset.names):
        raise SpecificationError(
            "cannot compare runs of different task sets: "
            f"{result_a.taskset.names} vs {result_b.taskset.names}"
        )
    table_a = _per_transaction(result_a)
    table_b = _per_transaction(result_b)
    deltas: List[TransactionDelta] = []
    for name in result_a.taskset.names:
        a = table_a.get(name, {"blocking": 0.0, "response": None, "misses": 0,
                               "restarts": 0})
        b = table_b.get(name, {"blocking": 0.0, "response": None, "misses": 0,
                               "restarts": 0})
        deltas.append(
            TransactionDelta(
                transaction=name,
                blocking_a=a["blocking"], blocking_b=b["blocking"],
                worst_response_a=a["response"], worst_response_b=b["response"],
                misses_a=int(a["misses"]), misses_b=int(b["misses"]),
                restarts_a=int(a["restarts"]), restarts_b=int(b["restarts"]),
            )
        )
    metrics_a = compute_metrics(result_a)
    metrics_b = compute_metrics(result_b)
    return RunComparison(
        protocol_a=result_a.protocol_name,
        protocol_b=result_b.protocol_name,
        transactions=tuple(deltas),
        total_blocking_a=metrics_a.total_blocking_time,
        total_blocking_b=metrics_b.total_blocking_time,
        misses_a=metrics_a.missed_jobs,
        misses_b=metrics_b.missed_jobs,
        restarts_a=metrics_a.total_restarts,
        restarts_b=metrics_b.total_restarts,
    )


def render_comparison(comparison: RunComparison) -> str:
    """ASCII table of the comparison, one row per transaction."""
    a, b = comparison.protocol_a, comparison.protocol_b
    header = (
        f"{'txn':<8}{'block ' + a:>14}{'block ' + b:>14}"
        f"{'resp ' + a:>13}{'resp ' + b:>13}{'miss':>6}{'restart':>9}"
    )
    lines = [header, "-" * len(header)]

    def fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:g}"

    for d in comparison.transactions:
        lines.append(
            f"{d.transaction:<8}{d.blocking_a:>14g}{d.blocking_b:>14g}"
            f"{fmt(d.worst_response_a):>13}{fmt(d.worst_response_b):>13}"
            f"{d.misses_a:>3}/{d.misses_b:<3}{d.restarts_a:>4}/{d.restarts_b:<4}"
        )
    lines.append(
        f"total blocking: {comparison.total_blocking_a:g} ({a}) vs "
        f"{comparison.total_blocking_b:g} ({b}); misses "
        f"{comparison.misses_a} vs {comparison.misses_b}; restarts "
        f"{comparison.restarts_a} vs {comparison.restarts_b}"
    )
    return "\n".join(lines)
