"""Raw trace recording during a simulation run.

The recorder is append-only and cheap; everything analytical (timelines,
metrics, Gantt charts) is derived afterwards.  Three event streams are kept:

* scheduling events — arrivals, dispatches, preemptions, commits, aborts,
  deadline misses;
* lock events — every protocol decision, with the rule that fired ("LC2",
  "ceiling blocking", ...) and the blockers on denial;
* execution segments — half-open intervals during which a job held the CPU;
* system-ceiling samples — the global ceiling level each time it changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.model.spec import LockMode


class SchedEventKind(enum.Enum):
    ARRIVAL = "arrival"
    DISPATCH = "dispatch"
    PREEMPT = "preempt"
    COMMIT = "commit"
    ABORT = "abort"
    MISS = "miss"
    HORIZON = "horizon"


@dataclass(**DATACLASS_SLOTS)
class SchedEvent:
    """One scheduling event.

    ``other`` names a second involved job when meaningful (the preemptor
    for PREEMPT, the aborter for ABORT).
    """

    time: float
    kind: SchedEventKind
    job: str
    other: Optional[str] = None


class LockOutcome(enum.Enum):
    GRANTED = "granted"
    DENIED = "denied"
    ABORT_GRANTED = "abort_granted"  # granted after aborting victims


@dataclass(**DATACLASS_SLOTS)
class LockEvent:
    """One protocol decision.

    Attributes:
        time: decision time.
        job: requesting job.
        item: data item.
        mode: requested lock mode.
        outcome: granted / denied / granted-after-abort.
        rule: the locking condition or denial reason reported by the
            protocol (e.g. ``"LC2"``, ``"ceiling blocking"``).
        blockers: blocking jobs (denials) or victims (abort-grants).
    """

    time: float
    job: str
    item: str
    mode: LockMode
    outcome: LockOutcome
    rule: str
    blockers: Tuple[str, ...] = ()


@dataclass(**DATACLASS_SLOTS)
class ExecSegment:
    """A half-open interval [start, end) during which ``job`` ran on the CPU."""

    job: str
    start: float
    end: float


class TraceRecorder:
    """Collects the event streams of one run."""

    def __init__(self) -> None:
        self.sched_events: List[SchedEvent] = []
        self.lock_events: List[LockEvent] = []
        self.segments: List[ExecSegment] = []
        self.sysceil_samples: List[Tuple[float, int]] = []
        #: (time, job, new running priority) — recorded whenever priority
        #: inheritance (or an IPCP ceiling floor) changes a job's level.
        self.priority_changes: List[Tuple[float, str, int]] = []
        #: Last recorded level per job — the duplicate-collapse test in
        #: :meth:`priority` without scanning the stream backwards.
        self._last_priority: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Scheduling stream
    # ------------------------------------------------------------------
    def sched(
        self,
        time: float,
        kind: SchedEventKind,
        job: str,
        other: Optional[str] = None,
    ) -> None:
        """Record one scheduling event."""
        self.sched_events.append(SchedEvent(time, kind, job, other))

    # ------------------------------------------------------------------
    # Lock stream
    # ------------------------------------------------------------------
    def lock(
        self,
        time: float,
        job: str,
        item: str,
        mode: LockMode,
        outcome: LockOutcome,
        rule: str,
        blockers: Tuple[str, ...] = (),
    ) -> None:
        """Record one protocol decision."""
        self.lock_events.append(
            LockEvent(time, job, item, mode, outcome, rule, blockers)
        )

    # ------------------------------------------------------------------
    # CPU stream
    # ------------------------------------------------------------------
    def segment(self, job: str, start: float, end: float) -> None:
        """Record a CPU slice; adjacent slices of the same job coalesce."""
        if end <= start:
            return
        segments = self.segments
        if segments:
            last = segments[-1]
            if last.job == job and abs(last.end - start) < 1e-12:
                last.end = end  # coalesce in place
                return
        segments.append(ExecSegment(job, start, end))

    # ------------------------------------------------------------------
    # Priority stream
    # ------------------------------------------------------------------
    def priority(self, time: float, job: str, level: int) -> None:
        """Record a running-priority change; consecutive duplicates for
        the same job collapse."""
        if self._last_priority.get(job) == level:
            return
        self._last_priority[job] = level
        self.priority_changes.append((time, job, level))

    def priority_history(self, job: str) -> List[Tuple[float, int]]:
        """(time, level) changes of one job, in order."""
        return [
            (time, level)
            for time, changed_job, level in self.priority_changes
            if changed_job == job
        ]

    # ------------------------------------------------------------------
    # Ceiling stream
    # ------------------------------------------------------------------
    def sysceil(self, time: float, level: int) -> None:
        """Record the global system ceiling; consecutive equal levels collapse."""
        if self.sysceil_samples:
            last_t, last_level = self.sysceil_samples[-1]
            if last_level == level:
                return
            if abs(last_t - time) < 1e-12:
                self.sysceil_samples[-1] = (time, level)
                return
        self.sysceil_samples.append((time, level))

    # ------------------------------------------------------------------
    # Convenience queries (tests lean on these)
    # ------------------------------------------------------------------
    def grants_for(self, job: str) -> List[LockEvent]:
        """Lock grants of one job, in order (abort-grants included)."""
        return [
            e
            for e in self.lock_events
            if e.job == job
            and e.outcome in (LockOutcome.GRANTED, LockOutcome.ABORT_GRANTED)
        ]

    def denials_for(self, job: str) -> List[LockEvent]:
        """Lock denials of one job, in order."""
        return [
            e
            for e in self.lock_events
            if e.job == job and e.outcome is LockOutcome.DENIED
        ]

    def commit_time(self, job: str) -> Optional[float]:
        """When the job committed, or ``None`` if it never did."""
        for e in self.sched_events:
            if e.kind is SchedEventKind.COMMIT and e.job == job:
                return e.time
        return None

    def segments_for(self, job: str) -> List[ExecSegment]:
        """CPU slices of one job, in order."""
        return [s for s in self.segments if s.job == job]
