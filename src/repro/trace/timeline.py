"""Per-transaction timelines: the horizontal bars of the paper's figures.

A :class:`Timeline` decomposes each job's lifetime into segments:

* ``EXECUTING`` — the job held the CPU;
* ``BLOCKED`` — the job waited for a lock (the shaded "blocked" spans in
  Figures 1, 3 and 5);
* ``PREEMPTED`` — the job was ready but a higher-priority job ran.

Segments are derived from the recorder's CPU slices and the jobs' block
intervals, so a timeline can be built for any completed
:class:`~repro.engine.simulator.SimulationResult`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import SimulationResult


class SegmentKind(enum.Enum):
    EXECUTING = "executing"
    BLOCKED = "blocked"
    PREEMPTED = "preempted"


@dataclass(frozen=True)
class Segment:
    """A half-open interval ``[start, end)`` in one job's life."""

    job: str
    kind: SegmentKind
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class JobTimeline:
    """All segments of one job, ordered by start time."""

    job: str
    transaction: str
    arrival: float
    finish: Optional[float]
    segments: Tuple[Segment, ...]

    def executing(self) -> Tuple[Segment, ...]:
        """The EXECUTING segments only."""
        return tuple(s for s in self.segments if s.kind is SegmentKind.EXECUTING)

    def blocked(self) -> Tuple[Segment, ...]:
        """The BLOCKED segments only."""
        return tuple(s for s in self.segments if s.kind is SegmentKind.BLOCKED)

    def preempted(self) -> Tuple[Segment, ...]:
        """The PREEMPTED segments only."""
        return tuple(s for s in self.segments if s.kind is SegmentKind.PREEMPTED)


@dataclass
class Timeline:
    """Timelines for every job of a run, plus the run horizon."""

    jobs: Tuple[JobTimeline, ...]
    end_time: float

    def for_job(self, name: str) -> JobTimeline:
        """Timeline of one job (KeyError when unknown)."""
        for jt in self.jobs:
            if jt.job == name:
                return jt
        raise KeyError(name)

    def for_transaction(self, name: str) -> Tuple[JobTimeline, ...]:
        """Timelines of every instance of the named transaction."""
        return tuple(jt for jt in self.jobs if jt.transaction == name)


_EPS = 1e-9


def _merge_intervals(
    intervals: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Merge overlapping/adjacent intervals; returns a sorted disjoint list."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end - start <= _EPS:
            continue
        if merged and start <= merged[-1][1] + _EPS:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def build_timeline(result: "SimulationResult") -> Timeline:
    """Derive a :class:`Timeline` from a simulation result."""
    job_timelines: List[JobTimeline] = []
    for job in result.jobs:
        end = job.finish_time if job.finish_time is not None else result.end_time
        exec_ivs = _merge_intervals(
            [(s.start, s.end) for s in result.trace.segments_for(job.name)]
        )
        block_ivs = _merge_intervals(
            [
                (b.start, b.end if b.end is not None else end)
                for b in job.block_intervals
            ]
        )
        segments: List[Segment] = [
            Segment(job.name, SegmentKind.EXECUTING, s, e) for s, e in exec_ivs
        ] + [Segment(job.name, SegmentKind.BLOCKED, s, e) for s, e in block_ivs]

        # PREEMPTED = alive, not executing, not blocked.
        covered = _merge_intervals(exec_ivs + block_ivs)
        cursor = job.arrival
        for s, e in covered:
            if s - cursor > _EPS:
                segments.append(
                    Segment(job.name, SegmentKind.PREEMPTED, cursor, s)
                )
            cursor = max(cursor, e)
        if end - cursor > _EPS:
            segments.append(Segment(job.name, SegmentKind.PREEMPTED, cursor, end))

        segments.sort(key=lambda s: (s.start, s.end))
        job_timelines.append(
            JobTimeline(
                job=job.name,
                transaction=job.spec.name,
                arrival=job.arrival,
                finish=job.finish_time,
                segments=tuple(segments),
            )
        )
    job_timelines.sort(key=lambda jt: (jt.transaction, jt.arrival))
    return Timeline(tuple(job_timelines), result.end_time)
