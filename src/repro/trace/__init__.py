"""Execution tracing, timelines, figures, and metrics.

The simulator feeds a :class:`~repro.trace.recorder.TraceRecorder`; the rest
of this package turns the recorded events into the artifacts the paper
presents:

* :mod:`repro.trace.timeline` — per-transaction execution/blocked segments
  (the horizontal bars of Figures 1-5);
* :mod:`repro.trace.gantt` — an ASCII Gantt renderer that regenerates those
  figures in the terminal;
* :mod:`repro.trace.sysceil` — the ``Sysceil(t)`` step function (the dotted
  ``Max_Sysceil`` line in Figures 4 and 5);
* :mod:`repro.trace.metrics` — blocking times, response times, deadline
  misses, restarts.
"""

from repro.trace.recorder import (
    LockEvent,
    LockOutcome,
    SchedEvent,
    SchedEventKind,
    TraceRecorder,
)
from repro.trace.timeline import Segment, SegmentKind, Timeline, build_timeline
from repro.trace.gantt import render_gantt, render_gantt_comparison
from repro.trace.metrics import (
    JobMetrics,
    RunMetrics,
    compute_metrics,
    priority_inversion_time,
)
from repro.trace.sysceil import SysceilTrace
from repro.trace.export import (
    metrics_to_csv,
    result_to_dict,
    result_to_json,
    segments_to_csv,
    sysceil_to_csv,
)
from repro.trace.compare import RunComparison, compare_runs, render_comparison
from repro.trace.svg import render_svg_gantt

__all__ = [
    "JobMetrics",
    "LockEvent",
    "LockOutcome",
    "RunComparison",
    "RunMetrics",
    "compare_runs",
    "render_comparison",
    "SchedEvent",
    "SchedEventKind",
    "Segment",
    "SegmentKind",
    "SysceilTrace",
    "Timeline",
    "TraceRecorder",
    "build_timeline",
    "compute_metrics",
    "metrics_to_csv",
    "priority_inversion_time",
    "render_gantt",
    "render_gantt_comparison",
    "render_svg_gantt",
    "result_to_dict",
    "result_to_json",
    "segments_to_csv",
    "sysceil_to_csv",
]
