"""The ``Sysceil(t)`` step function — Figures 4/5's dotted ``Max_Sysceil`` line.

The simulator samples the protocol's global system ceiling after every
event; this module turns those samples into a queryable step function and a
compact ASCII rendering.

The paper's observation (Section 6): under PCP-DA the global ceiling in
Example 4 never exceeds ``P2`` and drops back to the dummy level at t=9,
while under RW-PCP it reaches ``P1`` and stays up until no transaction
runs.  ``Max_Sysceil`` — the supremum of the step function — quantifies how
restrictive a protocol is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.model.spec import DUMMY_PRIORITY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import SimulationResult


@dataclass(frozen=True)
class SysceilTrace:
    """Step function of the global system ceiling over time."""

    samples: Tuple[Tuple[float, int], ...]
    end_time: float

    @classmethod
    def from_result(cls, result: "SimulationResult") -> "SysceilTrace":
        return cls(tuple(result.trace.sysceil_samples), result.end_time)

    def level_at(self, time: float) -> int:
        """Ceiling level in effect at ``time`` (step function, right-open)."""
        level = DUMMY_PRIORITY
        for t, value in self.samples:
            if t > time + 1e-9:
                break
            level = value
        return level

    @property
    def max_level(self) -> int:
        """``Max_Sysceil`` over the whole run."""
        return max((v for _, v in self.samples), default=DUMMY_PRIORITY)

    def intervals(self) -> Tuple[Tuple[float, float, int], ...]:
        """Constant-level intervals ``(start, end, level)`` covering the run."""
        if not self.samples:
            return ((0.0, self.end_time, DUMMY_PRIORITY),)
        out: List[Tuple[float, float, int]] = []
        times = [t for t, _ in self.samples]
        levels = [v for _, v in self.samples]
        if times[0] > 1e-9:
            out.append((0.0, times[0], DUMMY_PRIORITY))
        for i, (t, v) in enumerate(zip(times, levels)):
            end = times[i + 1] if i + 1 < len(times) else self.end_time
            if end > t + 1e-12:
                out.append((t, end, v))
        return tuple(out)

    def render(self, *, cell: float = 1.0, label: str = "Sysceil") -> str:
        """One-line ASCII rendering: the ceiling level digit per time cell."""
        import math

        n_cells = max(1, int(math.ceil(self.end_time / cell - 1e-9)))
        row = []
        for i in range(n_cells):
            level = self.level_at(i * cell)
            row.append("-" if level == DUMMY_PRIORITY else str(level % 10))
        return f"{label}: " + "".join(row) + "   (-=dummy)"
