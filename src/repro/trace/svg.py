"""Dependency-free SVG rendering of a run — the figures, publication-grade.

The ASCII Gantt is for terminals; this module emits a self-contained SVG
document (no matplotlib, no external assets) with one row per transaction,
colour-coded execution/blocked/preempted bars, arrival and commit markers,
and an optional ``Sysceil`` step line — i.e. the full visual content of
the paper's Figures 1-5.

The output is deliberately simple SVG 1.1 so it renders identically in
browsers, editors, and LaTeX via ``\\includesvg``.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, List

from repro.model.spec import DUMMY_PRIORITY
from repro.trace.timeline import SegmentKind, build_timeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import SimulationResult

_COLOURS = {
    SegmentKind.EXECUTING: "#4878d0",   # blue
    SegmentKind.BLOCKED: "#d65f5f",     # red
    SegmentKind.PREEMPTED: "#c9c9c9",   # grey
}

_ROW_HEIGHT = 26
_BAR_HEIGHT = 14
_LABEL_WIDTH = 70
_TOP_MARGIN = 28
_PX_PER_UNIT_DEFAULT = 36.0


def render_svg_gantt(
    result: "SimulationResult",
    *,
    px_per_unit: float = _PX_PER_UNIT_DEFAULT,
    include_sysceil: bool = True,
    title: str = "",
) -> str:
    """Render the run as a standalone SVG document (a string).

    Args:
        result: a finished simulation.
        px_per_unit: horizontal pixels per simulation time unit.
        include_sysceil: draw the ceiling step line below the rows
            (Figures 4/5's dotted line).
        title: optional caption placed above the chart.
    """
    timeline = build_timeline(result)
    specs = sorted(result.taskset.specs, key=lambda s: -(s.priority or 0))
    end = max(result.end_time, 1.0)

    n_rows = len(specs)
    ceiling_height = 40 if include_sysceil else 0
    width = int(_LABEL_WIDTH + end * px_per_unit + 20)
    height = int(
        _TOP_MARGIN + n_rows * _ROW_HEIGHT + ceiling_height + 40
    )

    def x_of(t: float) -> float:
        return _LABEL_WIDTH + t * px_per_unit

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_LABEL_WIDTH}" y="14" font-size="13" '
            f'font-weight="bold">{html.escape(title)}</text>'
        )

    # Time grid and axis labels (integer ticks, thinned for long runs).
    tick_step = 1
    while end / tick_step > 24:
        tick_step *= 2
    grid_bottom = _TOP_MARGIN + n_rows * _ROW_HEIGHT + ceiling_height
    tick = 0
    while tick <= end + 1e-9:
        x = x_of(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_TOP_MARGIN}" x2="{x:.1f}" '
            f'y2="{grid_bottom}" stroke="#eeeeee"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{grid_bottom + 14}" '
            f'text-anchor="middle" fill="#555555">{tick:g}</text>'
        )
        tick += tick_step

    # Rows.
    for row, spec in enumerate(specs):
        y = _TOP_MARGIN + row * _ROW_HEIGHT
        bar_y = y + (_ROW_HEIGHT - _BAR_HEIGHT) / 2
        parts.append(
            f'<text x="{_LABEL_WIDTH - 8}" y="{y + _ROW_HEIGHT / 2 + 4}" '
            f'text-anchor="end">{html.escape(spec.name)}</text>'
        )
        for jt in timeline.for_transaction(spec.name):
            for seg in jt.segments:
                colour = _COLOURS[seg.kind]
                seg_width = max((seg.end - seg.start) * px_per_unit, 0.5)
                parts.append(
                    f'<rect x="{x_of(seg.start):.1f}" y="{bar_y:.1f}" '
                    f'width="{seg_width:.1f}" height="{_BAR_HEIGHT}" '
                    f'fill="{colour}">'
                    f"<title>{html.escape(jt.job)} {seg.kind.value} "
                    f"[{seg.start:g}, {seg.end:g})</title></rect>"
                )
        # Arrival / commit markers.
        from repro.trace.recorder import SchedEventKind

        for event in result.trace.sched_events:
            if not event.job.startswith(spec.name + "#"):
                continue
            x = x_of(event.time)
            if event.kind is SchedEventKind.ARRIVAL:
                parts.append(
                    f'<path d="M {x:.1f} {bar_y + _BAR_HEIGHT + 7} '
                    f'l -4 6 l 8 0 z" fill="#222222"/>'
                )
            elif event.kind is SchedEventKind.COMMIT:
                parts.append(
                    f'<path d="M {x:.1f} {bar_y - 3} l -4 -6 l 8 0 z" '
                    'fill="#2ca02c"/>'
                )

    # Sysceil step line.
    if include_sysceil and result.trace.sysceil_samples:
        max_priority = max((s.priority or 1) for s in specs)
        base_y = _TOP_MARGIN + n_rows * _ROW_HEIGHT + ceiling_height - 4
        scale = (ceiling_height - 12) / max(max_priority, 1)

        def y_of(level: int) -> float:
            return base_y - level * scale

        samples = list(result.trace.sysceil_samples)
        path = [f"M {x_of(0):.1f} {y_of(DUMMY_PRIORITY):.1f}"]
        previous_level = DUMMY_PRIORITY
        for t, level in samples:
            path.append(f"L {x_of(t):.1f} {y_of(previous_level):.1f}")
            path.append(f"L {x_of(t):.1f} {y_of(level):.1f}")
            previous_level = level
        path.append(f"L {x_of(end):.1f} {y_of(previous_level):.1f}")
        parts.append(
            f'<path d="{" ".join(path)}" fill="none" stroke="#7b3294" '
            'stroke-width="1.5" stroke-dasharray="5,3"/>'
        )
        parts.append(
            f'<text x="{_LABEL_WIDTH - 8}" y="{base_y - ceiling_height / 2 + 4}" '
            'text-anchor="end" fill="#7b3294">Sysceil</text>'
        )

    # Legend.
    legend_y = height - 8
    legend_entries = [
        ("executing", _COLOURS[SegmentKind.EXECUTING]),
        ("blocked", _COLOURS[SegmentKind.BLOCKED]),
        ("preempted", _COLOURS[SegmentKind.PREEMPTED]),
    ]
    x = _LABEL_WIDTH
    for label, colour in legend_entries:
        parts.append(
            f'<rect x="{x}" y="{legend_y - 10}" width="12" height="10" '
            f'fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{x + 16}" y="{legend_y - 1}" fill="#333333">{label}</text>'
        )
        x += 90

    parts.append("</svg>")
    return "\n".join(parts)
