"""Export simulation traces to plain data formats.

The ASCII renderers are for the terminal; this module emits the same
information as structured data so the figures can be rebuilt in any
plotting tool:

* :func:`result_to_dict` / :func:`result_to_json` — the full run (jobs,
  scheduling events, lock decisions, execution segments, Sysceil samples)
  as one JSON-serialisable document;
* :func:`recorder_to_dict` / :func:`recorder_from_dict` — the *raw*
  :class:`~repro.trace.recorder.TraceRecorder` streams, round-trippable
  (unlike ``result_to_dict``, which is derived and one-way);
* :func:`segments_to_csv` — the Gantt bars as CSV rows
  ``transaction,job,kind,start,end``;
* :func:`sysceil_to_csv` — the ceiling step function as ``time,level``
  rows (the Figure 4/5 dotted line);
* :func:`metrics_to_csv` — one row per job with response/blocking/miss.

Everything returns strings; callers decide where to write.
"""

from __future__ import annotations

import io
import json
from typing import TYPE_CHECKING, Any, Dict, List

from repro.trace.metrics import compute_metrics, priority_inversion_time
from repro.trace.timeline import build_timeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import SimulationResult
    from repro.trace.recorder import TraceRecorder


def result_to_dict(result: "SimulationResult") -> Dict[str, Any]:
    """The full run as a JSON-serialisable dictionary."""
    timeline = build_timeline(result)
    metrics = compute_metrics(result)
    return {
        "protocol": result.protocol_name,
        "end_time": result.end_time,
        "deadlock": (
            None
            if result.deadlock is None
            else {"time": result.deadlock.time, "cycle": list(result.deadlock.cycle)}
        ),
        "restarts": result.aborted_restarts,
        "transactions": [
            {
                "name": spec.name,
                "priority": spec.priority,
                "period": spec.period,
                "offset": spec.offset,
                "execution_time": spec.execution_time,
                "reads": sorted(spec.read_set),
                "writes": sorted(spec.write_set),
            }
            for spec in result.taskset
        ],
        "jobs": [
            {
                "job": jm.job,
                "transaction": jm.transaction,
                "arrival": jm.arrival,
                "finish": jm.finish,
                "response_time": jm.response_time,
                "blocking_time": jm.blocking_time,
                "blockers": sorted(jm.distinct_blockers),
                "missed_deadline": jm.missed_deadline,
                "restarts": jm.restarts,
                "preemptions": jm.preemptions,
                "executed_time": jm.executed_time,
                "interference_time": jm.interference_time,
                "priority_inversion_time": priority_inversion_time(
                    result, jm.job
                ),
            }
            for jm in metrics.jobs
        ],
        "segments": [
            {
                "job": seg.job,
                "transaction": jt.transaction,
                "kind": seg.kind.value,
                "start": seg.start,
                "end": seg.end,
            }
            for jt in timeline.jobs
            for seg in jt.segments
        ],
        "lock_events": [
            {
                "time": e.time,
                "job": e.job,
                "item": e.item,
                "mode": e.mode.value,
                "outcome": e.outcome.value,
                "rule": e.rule,
                "blockers": list(e.blockers),
            }
            for e in result.trace.lock_events
        ],
        "sched_events": [
            {"time": e.time, "kind": e.kind.value, "job": e.job, "other": e.other}
            for e in result.trace.sched_events
        ],
        "sysceil": [
            {"time": t, "level": level}
            for t, level in result.trace.sysceil_samples
        ],
        "priority_changes": [
            {"time": t, "job": job, "level": level}
            for t, job, level in result.trace.priority_changes
        ],
        "committed": list(result.history.commit_order()),
    }


def result_to_json(result: "SimulationResult", *, indent: int = 2) -> str:
    """The full run as a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=False)


def recorder_to_dict(recorder: "TraceRecorder") -> Dict[str, Any]:
    """The raw recorder streams as a JSON-serialisable dictionary.

    This serialises the five append-only streams verbatim — no timeline
    or metric derivation — so :func:`recorder_from_dict` can reconstruct
    a recorder that compares equal stream-for-stream.  ``result_to_dict``
    stays the one-way analytical export (its shape is pinned by the
    golden-trace digests and must not change).
    """
    return {
        "sched_events": [
            {"time": e.time, "kind": e.kind.value, "job": e.job,
             "other": e.other}
            for e in recorder.sched_events
        ],
        "lock_events": [
            {"time": e.time, "job": e.job, "item": e.item,
             "mode": e.mode.value, "outcome": e.outcome.value,
             "rule": e.rule, "blockers": list(e.blockers)}
            for e in recorder.lock_events
        ],
        "segments": [
            {"job": s.job, "start": s.start, "end": s.end}
            for s in recorder.segments
        ],
        "sysceil": [
            {"time": t, "level": level}
            for t, level in recorder.sysceil_samples
        ],
        "priority_changes": [
            {"time": t, "job": job, "level": level}
            for t, job, level in recorder.priority_changes
        ],
    }


def recorder_from_dict(document: Dict[str, Any]) -> "TraceRecorder":
    """Rebuild a :class:`TraceRecorder` from :func:`recorder_to_dict` output.

    Events are appended to the streams directly rather than replayed
    through the recording methods: ``segment``/``sysceil``/``priority``
    coalesce adjacent entries at record time, and re-coalescing already
    coalesced data would not be an identity.
    """
    from repro.model.spec import LockMode
    from repro.trace.recorder import (
        ExecSegment,
        LockEvent,
        LockOutcome,
        SchedEvent,
        SchedEventKind,
        TraceRecorder,
    )

    recorder = TraceRecorder()
    for row in document["sched_events"]:
        recorder.sched_events.append(SchedEvent(
            row["time"], SchedEventKind(row["kind"]), row["job"],
            row.get("other"),
        ))
    for row in document["lock_events"]:
        recorder.lock_events.append(LockEvent(
            row["time"], row["job"], row["item"], LockMode(row["mode"]),
            LockOutcome(row["outcome"]), row["rule"],
            tuple(row.get("blockers", ())),
        ))
    for row in document["segments"]:
        recorder.segments.append(
            ExecSegment(row["job"], row["start"], row["end"])
        )
    for row in document["sysceil"]:
        recorder.sysceil_samples.append((row["time"], row["level"]))
    for row in document["priority_changes"]:
        recorder.priority_changes.append(
            (row["time"], row["job"], row["level"])
        )
    return recorder


def _csv(rows: List[List[Any]], header: List[str]) -> str:
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def segments_to_csv(result: "SimulationResult") -> str:
    """Gantt bars as ``transaction,job,kind,start,end`` CSV rows."""
    timeline = build_timeline(result)
    rows = [
        [jt.transaction, seg.job, seg.kind.value, seg.start, seg.end]
        for jt in timeline.jobs
        for seg in jt.segments
    ]
    return _csv(rows, ["transaction", "job", "kind", "start", "end"])


def sysceil_to_csv(result: "SimulationResult") -> str:
    """The ceiling step function as ``time,level`` CSV rows."""
    rows = [[t, level] for t, level in result.trace.sysceil_samples]
    return _csv(rows, ["time", "level"])


def metrics_to_csv(result: "SimulationResult") -> str:
    """Per-job metrics as CSV rows."""
    metrics = compute_metrics(result)
    rows = [
        [
            jm.job, jm.transaction, jm.arrival, jm.finish, jm.response_time,
            jm.blocking_time, int(jm.missed_deadline), jm.restarts,
            jm.preemptions,
        ]
        for jm in metrics.jobs
    ]
    return _csv(
        rows,
        [
            "job", "transaction", "arrival", "finish", "response_time",
            "blocking_time", "missed_deadline", "restarts", "preemptions",
        ],
    )
