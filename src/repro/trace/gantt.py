"""ASCII Gantt rendering of a run — the terminal version of Figures 1-5.

One row per transaction (instances share the row, like the paper's
figures); the time axis is discretised into fixed-width cells:

* ``#`` — executing,
* ``b`` — blocked waiting for a lock,
* ``.`` — preempted (ready, not running),
* `` `` — not released / finished,
* ``^`` below the axis marks arrivals, ``v`` marks commits.

The renderer works best with the paper's unit-length operations (one cell
per time unit) but accepts any ``cell`` width.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.trace.recorder import SchedEventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import SimulationResult
from repro.trace.timeline import SegmentKind, build_timeline

_GLYPH = {
    SegmentKind.EXECUTING: "#",
    SegmentKind.BLOCKED: "b",
    SegmentKind.PREEMPTED: ".",
}


def render_gantt(
    result: "SimulationResult",
    *,
    cell: float = 1.0,
    width_limit: int = 200,
    show_markers: bool = True,
) -> str:
    """Render the run as an ASCII Gantt chart.

    Args:
        result: a finished simulation.
        cell: time units per character cell.
        width_limit: maximum number of cells (longer runs are truncated
            with a note).
        show_markers: add arrival (``^``) / commit (``v``) marker rows.

    Returns:
        A multi-line string, one row per transaction, highest priority
        first, headed by a time ruler.
    """
    end = max(result.end_time, cell)
    n_cells = min(int(math.ceil(end / cell + 1e-9)), width_limit)
    truncated = n_cells < int(math.ceil(end / cell + 1e-9))

    timeline = build_timeline(result)
    specs = sorted(
        result.taskset.specs,
        key=lambda s: -(s.priority or 0),
    )
    label_width = max(len(s.name) for s in specs) + 1

    def cell_range(start: float, stop: float) -> range:
        first = int(math.floor(start / cell + 1e-9))
        last = int(math.ceil(stop / cell - 1e-9))
        return range(max(first, 0), min(last, n_cells))

    lines: List[str] = []

    # Ruler: tens row (only when useful) and units row.
    units = "".join(str(int(i * cell) % 10) for i in range(n_cells))
    if n_cells * cell >= 10:
        tens = "".join(
            str(int(i * cell) // 10 % 10) if int(i * cell) % 10 == 0 and i > 0 else " "
            for i in range(n_cells)
        )
        lines.append(" " * label_width + tens)
    lines.append(" " * label_width + units)

    for spec in specs:
        row = [" "] * n_cells
        for jt in timeline.for_transaction(spec.name):
            for seg in jt.segments:
                glyph = _GLYPH[seg.kind]
                for i in cell_range(seg.start, seg.end):
                    # Execution wins over blocked wins over preempted when
                    # a cell straddles segment boundaries.
                    current = row[i]
                    rank = {" ": 0, ".": 1, "b": 2, "#": 3}
                    if rank[glyph] > rank[current]:
                        row[i] = glyph
        lines.append(f"{spec.name:<{label_width}}" + "".join(row))

        if show_markers:
            marks = [" "] * n_cells
            for ev in result.trace.sched_events:
                if not ev.job.startswith(spec.name + "#"):
                    continue
                idx = int(math.floor(ev.time / cell + 1e-9))
                if idx >= n_cells:
                    continue
                if ev.kind is SchedEventKind.ARRIVAL:
                    marks[idx] = "^"
                elif ev.kind is SchedEventKind.COMMIT:
                    marks[idx] = "v" if marks[idx] == " " else "*"
            if any(m != " " for m in marks):
                lines.append(" " * label_width + "".join(marks))

    legend = "#=executing  b=blocked  .=preempted  ^=arrival  v=commit"
    lines.append("")
    lines.append(" " * label_width + legend)
    if truncated:
        lines.append(f"(truncated at {n_cells * cell:g} of {end:g} time units)")
    return "\n".join(lines)


def render_gantt_comparison(
    results,
    *,
    cell: float = 1.0,
    width_limit: int = 200,
) -> str:
    """Stack the Gantt charts of several runs of the same task set.

    The paper's Figures 2/3 and 4/5 are exactly this artifact: the same
    transactions under two protocols, aligned on one time axis.  Results
    must share a task set (same transaction names).

    Args:
        results: sequence of finished simulations (2+).
        cell / width_limit: as in :func:`render_gantt`.
    """
    results = list(results)
    if len(results) < 2:
        raise ValueError("need at least two runs to compare")
    names = set(results[0].taskset.names)
    for result in results[1:]:
        if set(result.taskset.names) != names:
            raise ValueError(
                "comparison requires runs of the same task set; got "
                f"{sorted(names)} vs {sorted(result.taskset.names)}"
            )
    blocks = []
    for result in results:
        title = f"--- {result.protocol_name} ---"
        blocks.append(
            title + "\n" + render_gantt(
                result, cell=cell, width_limit=width_limit, show_markers=False
            )
        )
    return "\n\n".join(blocks)
