"""Run metrics: blocking, response times, deadline misses, restarts.

These are the quantities the paper's examples and Section 9 analysis talk
about: "the effective blocking times of T1 and T3 blocked by T4 are 1 and 4
time units respectively", deadline misses, and the worst-case blocking per
transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Tuple

from repro.model.spec import DUMMY_PRIORITY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import SimulationResult


@dataclass(frozen=True)
class JobMetrics:
    """Metrics of one job (transaction instance)."""

    job: str
    transaction: str
    arrival: float
    finish: Optional[float]
    response_time: Optional[float]
    blocking_time: float
    distinct_blockers: FrozenSet[str]
    missed_deadline: bool
    restarts: int
    preemptions: int
    #: Executed CPU time (sum of this job's execution segments).
    executed_time: float = 0.0

    @property
    def interference_time(self) -> Optional[float]:
        """Time spent ready-but-not-running (higher-priority work held the
        CPU): ``response - executed - blocking``.  ``None`` until the job
        finishes.  Under IPCP this is where the PCP literature's
        "blocking" reappears (see docs/PROTOCOLS.md)."""
        if self.response_time is None:
            return None
        return max(
            0.0, self.response_time - self.executed_time - self.blocking_time
        )


@dataclass(frozen=True)
class RunMetrics:
    """Aggregated metrics of one run."""

    protocol: str
    jobs: Tuple[JobMetrics, ...]
    total_blocking_time: float
    max_blocking_time: float
    mean_blocking_time: float
    total_jobs: int
    committed_jobs: int
    missed_jobs: int
    miss_ratio: float
    total_restarts: int
    max_sysceil: int
    mean_response_time: Optional[float]

    def per_transaction_blocking(self) -> Dict[str, float]:
        """Worst observed blocking per transaction (max over instances)."""
        out: Dict[str, float] = {}
        for jm in self.jobs:
            out[jm.transaction] = max(
                out.get(jm.transaction, 0.0), jm.blocking_time
            )
        return out

    def blocking_of(self, transaction: str) -> float:
        """Worst observed blocking of the named transaction (0 if never)."""
        return self.per_transaction_blocking().get(transaction, 0.0)


def priority_inversion_time(result: "SimulationResult", job_name: str) -> float:
    """Time the named job spent blocked *while a lower-base-priority job
    held the CPU* — priority inversion in the strict sense of the paper's
    introduction ("a higher priority transaction is blocked by lower
    priority transactions").

    Computed exactly by intersecting the job's blocking intervals with the
    execution segments of lower-base-priority jobs.  Inheritance does not
    disguise inversion here: the comparison uses *base* priorities, so a
    boosted blocker still counts (that is the inversion PCP bounds to one
    critical section, and plain 2PL does not bound at all).
    """
    target = result.job(job_name)
    base_priorities = {
        spec.name: spec.priority or 0 for spec in result.taskset
    }

    blocked_windows = [
        (interval.start, interval.end if interval.end is not None else result.end_time)
        for interval in target.block_intervals
    ]
    if not blocked_windows:
        return 0.0

    total = 0.0
    for segment in result.trace.segments:
        runner_base = base_priorities.get(segment.job.split("#", 1)[0], 0)
        if runner_base >= target.base_priority:
            continue
        for start, end in blocked_windows:
            overlap = min(end, segment.end) - max(start, segment.start)
            if overlap > 0:
                total += overlap
    return total


def compute_metrics(result: "SimulationResult") -> RunMetrics:
    """Derive :class:`RunMetrics` from a finished simulation."""
    from repro.engine.job import JobState  # deferred: avoids import cycle

    executed: Dict[str, float] = {}
    for segment in result.trace.segments:
        executed[segment.job] = executed.get(segment.job, 0.0) + (
            segment.end - segment.start
        )

    job_metrics = []
    for job in result.jobs:
        job_metrics.append(
            JobMetrics(
                job=job.name,
                transaction=job.spec.name,
                arrival=job.arrival,
                finish=job.finish_time,
                response_time=job.response_time,
                blocking_time=job.total_blocking_time(),
                distinct_blockers=job.distinct_blockers(),
                missed_deadline=job.missed_deadline,
                restarts=job.restarts,
                preemptions=job.preemptions,
                executed_time=executed.get(job.name, 0.0),
            )
        )
    job_metrics_t = tuple(job_metrics)
    blocking = [jm.blocking_time for jm in job_metrics_t]
    responses = [
        jm.response_time for jm in job_metrics_t if jm.response_time is not None
    ]
    committed = sum(
        1 for j in result.jobs if j.state is JobState.COMMITTED
    )
    missed = sum(1 for jm in job_metrics_t if jm.missed_deadline)
    max_ceiling = max(
        (level for _, level in result.trace.sysceil_samples),
        default=DUMMY_PRIORITY,
    )
    n = len(job_metrics_t)
    return RunMetrics(
        protocol=result.protocol_name,
        jobs=job_metrics_t,
        total_blocking_time=sum(blocking),
        max_blocking_time=max(blocking, default=0.0),
        mean_blocking_time=(sum(blocking) / n) if n else 0.0,
        total_jobs=n,
        committed_jobs=committed,
        missed_jobs=missed,
        miss_ratio=(missed / n) if n else 0.0,
        total_restarts=result.aborted_restarts,
        max_sysceil=max_ceiling,
        mean_response_time=(sum(responses) / len(responses)) if responses else None,
    )
