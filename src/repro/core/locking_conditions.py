"""PCP-DA's locking conditions LC1..LC4 as inspectable predicates.

Exposing the conditions separately from the protocol object serves two
purposes: the tests pin each worked example to *which* condition fired
(the paper narrates "LC4 is true because T* = T4 and z ∉ WriteSet(T4)"),
and the ablation benchmarks can disable individual conditions to measure
their contribution.

Quantities involved (paper, Section 5):

* ``Sysceil_i`` — highest ``Wceil(x)`` among items **read-locked** by
  transactions other than ``T_i``.
* ``T*`` — the transaction holding the read lock whose ``Wceil`` equals
  ``Sysceil_i``.  Lemma 6 proves it unique in the situations where LC3/LC4
  consult it; the implementation nevertheless collects the full set and
  requires the conditions to hold for *every* member, which is equivalent
  in the proven-unique cases and conservative otherwise.
* ``HPW(x)`` — highest priority of a transaction that may write ``x``
  (statically equal to ``Wceil(x)``).
* The Table-1 footnote condition for reading a write-locked item:
  ``DataRead(holder) ∩ WriteSet(requester) = ∅`` (see
  :mod:`repro.core.compatibility`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.core.ceilings import CeilingTable
from repro.engine.lock_table import CeilingIndex
from repro.model.spec import DUMMY_PRIORITY, LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.engine.lock_table import LockEntry, LockTable

#: Index kind implementing PCP-DA's ``Sysceil`` semantics (read locks
#: raise ``Wceil``; write locks raise nothing).  ``system_ceiling`` and
#: ``ceiling_holders`` only fast-path an attached index of this kind —
#: other ceiling protocols attach indexes with different level semantics.
READ_CEILING_INDEX_KIND = "pcpda-read"


@dataclass(frozen=True)
class ConditionReport:
    """Full evaluation of a PCP-DA lock request.

    Attributes:
        mode: requested lock mode.
        sysceil: ``Sysceil_i`` at request time.
        tstar: jobs holding read locks at the ceiling level (``T*``).
        lc1..lc4: truth of each locking condition (``None`` when the
            condition does not apply to this mode).
        footnote_ok: Table-1 condition against current write holders of the
            item (always True when the item is not write-locked by others).
        footnote_violators: write holders failing the footnote condition.
        granted: overall admission decision.
        rule: the first condition that admitted the request, or "".
        blockers: jobs to blame (and boost) on denial.
        reason: denial classification ("conflict blocking" /
            "ceiling blocking" / footnote text).
    """

    mode: LockMode
    sysceil: int
    tstar: "Tuple[Job, ...]"
    lc1: Optional[bool]
    lc2: Optional[bool]
    lc3: Optional[bool]
    lc4: Optional[bool]
    footnote_ok: bool
    footnote_violators: "Tuple[Job, ...]"
    granted: bool
    rule: str
    blockers: "Tuple[Job, ...]"
    reason: str


def _exclusion_set(exclude) -> "FrozenSet[Job]":
    """Normalise ``exclude`` (None, one job, or a collection) to a set."""
    if exclude is None:
        return frozenset()
    if isinstance(exclude, (set, frozenset, list, tuple)):
        return frozenset(exclude)
    return frozenset({exclude})


def _read_locked_items(table: "LockTable", excluded) -> "List[str]":
    """Items read-locked by at least one job outside ``excluded``."""
    out = []
    for item in table.read_locked_items():
        if any(reader not in excluded for reader in table.readers_of(item)):
            out.append(item)
    return out


def make_read_ceiling_index(ceilings: CeilingTable) -> CeilingIndex:
    """Build the :class:`CeilingIndex` that incrementally tracks PCP-DA's
    ``Sysceil``: an item contributes ``Wceil(x)`` while read-locked (write
    locks never raise a ceiling — Lemma 1), and items nobody writes
    (``Wceil = DUMMY_PRIORITY``) contribute nothing."""
    wceil = ceilings.wceil

    def level_of(item: str, entry: "LockEntry") -> Optional[int]:
        if not entry.readers:
            return None
        level = wceil(item)
        return None if level == DUMMY_PRIORITY else level

    return CeilingIndex(READ_CEILING_INDEX_KIND, level_of, select="readers")


def _read_index(table: "LockTable") -> Optional[CeilingIndex]:
    """The table's attached index, iff it has PCP-DA read semantics."""
    index = getattr(table, "ceiling_index", None)
    if index is not None and index.kind == READ_CEILING_INDEX_KIND:
        return index
    return None


def system_ceiling(
    table: "LockTable", ceilings: CeilingTable, exclude=None
) -> int:
    """``Sysceil`` — max ``Wceil`` over items read-locked by jobs outside
    ``exclude`` (a job, a collection of jobs, or ``None``).

    The exclusion set matters beyond "not my own locks": per Lemma 8 /
    Theorem 2, jobs transitively blocked *on the requester* must not raise
    the requester's ceiling either (see ``evaluate_conditions``).

    Answered from the table's incremental :class:`CeilingIndex` when one
    with read-ceiling semantics is attached (the protocols attach it in
    ``bind``); otherwise by :func:`system_ceiling_rescan`.
    """
    excluded = _exclusion_set(exclude)
    index = _read_index(table)
    if index is not None:
        level = index.max_level(excluded)
        return DUMMY_PRIORITY if level is None else level
    return system_ceiling_rescan(table, ceilings, excluded)


def system_ceiling_rescan(
    table: "LockTable", ceilings: CeilingTable, exclude=None
) -> int:
    """``Sysceil`` recomputed from scratch by walking every read-locked
    item.  The reference implementation the incremental index is verified
    against (and the fallback for bare tables without an index)."""
    excluded = _exclusion_set(exclude)
    level = DUMMY_PRIORITY
    for item in _read_locked_items(table, excluded):
        level = max(level, ceilings.wceil(item))
    return level


def ceiling_holders(
    table: "LockTable", ceilings: CeilingTable, exclude=None
) -> "Tuple[Job, ...]":
    """Jobs (outside ``exclude``) holding read locks at the ``Sysceil``
    level — ``T*``.  Index-accelerated like :func:`system_ceiling`."""
    excluded = _exclusion_set(exclude)
    index = _read_index(table)
    if index is not None:
        level, items = index.scan(excluded)
        if level is None:
            return ()
        holders: List["Job"] = []
        for item in items:
            for job in table.readers_of(item):
                if job not in excluded and job not in holders:
                    holders.append(job)
        return tuple(sorted(holders, key=lambda j: j.seq))
    return ceiling_holders_rescan(table, ceilings, excluded)


def ceiling_holders_rescan(
    table: "LockTable", ceilings: CeilingTable, exclude=None
) -> "Tuple[Job, ...]":
    """From-scratch ``T*`` computation (reference / no-index fallback)."""
    excluded = _exclusion_set(exclude)
    level = system_ceiling_rescan(table, ceilings, excluded)
    if level == DUMMY_PRIORITY:
        return ()
    holders: List["Job"] = []
    for item in _read_locked_items(table, excluded):
        if ceilings.wceil(item) == level:
            for job in table.readers_of(item):
                if job not in excluded and job not in holders:
                    holders.append(job)
    return tuple(sorted(holders, key=lambda j: j.seq))


def evaluate_conditions(
    job: "Job",
    item: str,
    mode: LockMode,
    table: "LockTable",
    ceilings: CeilingTable,
    *,
    enable_lc3: bool = True,
    enable_lc4: bool = True,
    enable_table1_check: bool = True,
    waiters_on_requester=(),
) -> ConditionReport:
    """Evaluate LC1..LC4 (and the Table-1 footnote) for one request.

    ``enable_lc3`` / ``enable_lc4`` / ``enable_table1_check`` exist for the
    ablation study; the real protocol leaves all of them on.  The paper
    remarks that LC2/LC3 never need the Table-1
    ``DataRead(holder) ∩ WriteSet(requester)`` check explicitly; we enforce
    it uniformly anyway as a belt-and-braces guard, and extensive fuzzing
    (200k random workloads plus the exhaustive two-transaction
    enumeration) could not distinguish the protocol with the check from
    the protocol without it — empirical support for the paper's
    implication argument on a single processor.

    ``waiters_on_requester`` must contain the jobs transitively blocked
    waiting on ``job``.  Their read locks are exempt from the ceiling
    computations (``Sysceil``, ``T*``, LC4's ``No_Rlock``): a waiter makes
    no progress until the requester commits, so per Lemma 8 / Theorem 2
    its locks must not block the requester — otherwise a genuine wait
    cycle arises (see DESIGN.md §2.10 and
    tests/test_theorem2_waiter_exemption.py).  The Table-1 consistency
    check still applies against *all* write holders, waiters included,
    and LC1 still respects waiters' read locks (write-over-waiting-reader
    is unsafe).
    """
    priority = job.running_priority
    ceiling_excluded = frozenset({job}) | frozenset(waiters_on_requester)

    if mode is LockMode.WRITE:
        other_readers = tuple(
            sorted(table.readers_of(item) - {job}, key=lambda j: j.seq)
        )
        lc1 = not other_readers
        if lc1:
            return ConditionReport(
                mode=mode, sysceil=system_ceiling(table, ceilings, job),
                tstar=(), lc1=True, lc2=None, lc3=None, lc4=None,
                footnote_ok=True, footnote_violators=(),
                granted=True, rule="LC1", blockers=(), reason="",
            )
        return ConditionReport(
            mode=mode, sysceil=system_ceiling(table, ceilings, job),
            tstar=(), lc1=False, lc2=None, lc3=None, lc4=None,
            footnote_ok=True, footnote_violators=(),
            granted=False, rule="", blockers=other_readers,
            reason="conflict blocking: write-lock denied, item is read-locked",
        )

    # ---- read request -------------------------------------------------
    sysceil = system_ceiling(table, ceilings, ceiling_excluded)
    tstar = ceiling_holders(table, ceilings, ceiling_excluded)
    write_set = job.spec.write_set

    # Table-1 footnote against the item's current write holders.
    writers = tuple(
        sorted(table.writers_of(item) - {job}, key=lambda j: j.seq)
    )
    violators = tuple(
        w for w in writers if w.data_read & write_set
    )
    if not enable_table1_check:
        violators = ()
    footnote_ok = not violators

    lc2 = priority > sysceil
    hpw = ceilings.hpw(item)
    item_outside_tstar_writes = all(item not in t.spec.write_set for t in tstar)
    lc3 = bool(enable_lc3) and priority > hpw and bool(tstar) and item_outside_tstar_writes
    other_readers = table.readers_of(item) - ceiling_excluded
    lc4 = (
        bool(enable_lc4)
        and priority == hpw
        and not other_readers
        and bool(tstar)
        and item_outside_tstar_writes
        and all(not (t.data_read & write_set) for t in tstar)
    )

    if footnote_ok and (lc2 or lc3 or lc4):
        rule = "LC2" if lc2 else ("LC3" if lc3 else "LC4")
        return ConditionReport(
            mode=mode, sysceil=sysceil, tstar=tstar,
            lc1=None, lc2=lc2, lc3=lc3, lc4=lc4,
            footnote_ok=True, footnote_violators=(),
            granted=True, rule=rule, blockers=(), reason="",
        )

    if not footnote_ok:
        blockers: "Tuple[Job, ...]" = violators
        reason = (
            "conflict blocking: DataRead(holder) ∩ WriteSet(requester) ≠ ∅ "
            "(Table 1 * condition)"
        )
    else:
        blockers = tstar
        reason = "ceiling blocking: LC2/LC3/LC4 all false"
    return ConditionReport(
        mode=mode, sysceil=sysceil, tstar=tstar,
        lc1=None, lc2=lc2, lc3=lc3, lc4=lc4,
        footnote_ok=footnote_ok, footnote_violators=violators,
        granted=False, rule="", blockers=blockers, reason=reason,
    )
