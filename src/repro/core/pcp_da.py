"""PCP-DA — the Priority Ceiling Protocol with Dynamic Adjustment of
serialization order (the paper's contribution, Section 5).

Summary of the rules (see :mod:`repro.core.locking_conditions` for the
precise predicates):

* update-in-workspace model — writes are deferred and installed at commit,
  so the serialization order between conflicting transactions stays
  adjustable until commit time;
* one static ceiling per item, ``Wceil(x)``, in effect only while ``x`` is
  read-locked — write locks never raise any ceiling because deferred
  writes are *preemptable operations* (Lemma 1);
* a write lock is granted iff no other transaction read-locks the item
  (LC1); concurrent write locks are allowed (blind writes, Case 3);
* a read lock is granted iff LC2, LC3 or LC4 holds and the Table-1
  condition against current write holders passes;
* denial makes the responsible transactions (``T*`` for ceiling denials,
  the conflicting holders otherwise) inherit the requester's priority.

Guarantees (proved in the paper, verified by this library's test suite):
single-blocking (Theorem 1), deadlock freedom (Theorem 2), serializability
(Theorem 3), and zero restarts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.ceilings import CeilingTable
from repro.core.locking_conditions import (
    evaluate_conditions,
    make_read_ceiling_index,
    system_ceiling,
)
from repro.engine.interfaces import (
    ConcurrencyControlProtocol,
    Deny,
    Grant,
    InstallPolicy,
)
from repro.model.spec import LockMode, TaskSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.engine.lock_table import LockTable


class PCPDA(ConcurrencyControlProtocol):
    """The paper's protocol.

    Args:
        enable_lc3: admit reads through LC3 (default True).  Disabling is
            for the ablation study only.
        enable_lc4: admit reads through LC4 (default True).  Ditto.
        enable_table1_check: enforce the Table-1 ``DataRead ∩ WriteSet``
            condition on reads of write-locked items (default True).
            The paper argues LC2/LC3 imply it; we keep it on uniformly as
            a belt-and-braces guard.  The flag exists for the ablation
            study, which found the two variants empirically
            indistinguishable on a single processor.
    """

    name = "pcp-da"
    install_policy = InstallPolicy.AT_COMMIT
    can_deadlock = False

    def __init__(
        self,
        *,
        enable_lc3: bool = True,
        enable_lc4: bool = True,
        enable_table1_check: bool = True,
    ):
        super().__init__()
        self._ceilings: Optional[CeilingTable] = None
        self._enable_lc3 = enable_lc3
        self._enable_lc4 = enable_lc4
        self._enable_table1_check = enable_table1_check

    def bind(self, taskset: TaskSet, table: "LockTable") -> None:
        super().bind(taskset, table)
        self._ceilings = CeilingTable(taskset)
        # Incremental Sysceil: every grant/release keeps the index current,
        # so the per-request ceiling queries stop rescanning the table.
        table.attach_ceiling_index(make_read_ceiling_index(self._ceilings))

    @property
    def ceilings(self) -> CeilingTable:
        assert self._ceilings is not None, "protocol used before bind()"
        return self._ceilings

    def decide(self, job: "Job", item: str, mode: LockMode):
        report = evaluate_conditions(
            job,
            item,
            mode,
            self.table,
            self.ceilings,
            enable_lc3=self._enable_lc3,
            enable_lc4=self._enable_lc4,
            enable_table1_check=self._enable_table1_check,
            waiters_on_requester=self.waiters_on(job),
        )
        if report.granted:
            return Grant(report.rule)
        return Deny(report.blockers, report.reason)

    def system_ceiling(self, exclude: "Optional[Job]" = None) -> int:
        """``Sysceil`` with respect to ``exclude`` (global when ``None``)."""
        return system_ceiling(self.table, self.ceilings, exclude)

    def compile_table(self):
        """PCP-DA's decision table for the array kernel: read-lock-only
        ``Wceil`` ceilings, waiter-exempt exclusion, LC1..LC4 plus the
        Table-1 footnote, with the ablation flags carried through."""
        from repro.engine.kernel.tables import (
            FAMILY_PCPDA,
            LEVEL_READ_WCEIL,
            ProtocolTable,
        )

        return ProtocolTable(
            protocol=self.name,
            family=FAMILY_PCPDA,
            level_source=LEVEL_READ_WCEIL,
            select_readers=True,
            ceilings=self.ceilings,
            waiter_exempt=True,
            enable_lc3=self._enable_lc3,
            enable_lc4=self._enable_lc4,
            enable_table1=self._enable_table1_check,
            read_grant_rules=("LC2", "LC3", "LC4"),
        )

    def describe(self) -> str:
        suffix = []
        if not self._enable_lc3:
            suffix.append("LC3 off")
        if not self._enable_lc4:
            suffix.append("LC4 off")
        if not self._enable_table1_check:
            suffix.append("Table-1 check off")
        return self.name + (f" ({', '.join(suffix)})" if suffix else "")
