"""Static priority ceilings derived from a task set.

Definitions (paper, Sections 3 and 5), all in terms of *original* priorities
of the transactions that may access an item:

* ``Wceil(x)`` — priority of the highest-priority transaction that may
  **write** ``x``.  In PCP-DA this is the only ceiling; it "comes into
  effect" only while ``x`` is read-locked.  ``HPW(x)`` in the protocol text
  is the same static quantity.
* ``Aceil(x)`` — priority of the highest-priority transaction that may
  **read or write** ``x`` (used by RW-PCP and the original PCP).

Items nobody writes (resp. accesses) get the *dummy* ceiling, "lower than
the priorities of all transactions in the system".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

from repro.exceptions import SpecificationError
from repro.model.spec import DUMMY_PRIORITY, TaskSet


class CeilingTable:
    """Precomputed ``Wceil`` / ``Aceil`` for every item of a task set."""

    def __init__(self, taskset: TaskSet):
        if not taskset.has_priorities:
            raise SpecificationError(
                "ceilings require every transaction to carry a priority"
            )
        self._wceil: Dict[str, int] = {}
        self._aceil: Dict[str, int] = {}
        for spec in taskset:
            assert spec.priority is not None
            for item in spec.write_set:
                self._wceil[item] = max(
                    self._wceil.get(item, DUMMY_PRIORITY), spec.priority
                )
                self._aceil[item] = max(
                    self._aceil.get(item, DUMMY_PRIORITY), spec.priority
                )
            for item in spec.read_set:
                self._aceil[item] = max(
                    self._aceil.get(item, DUMMY_PRIORITY), spec.priority
                )
        self._items = frozenset(self._aceil)

    @property
    def items(self) -> FrozenSet[str]:
        """Items accessed by at least one transaction."""
        return self._items

    def wceil(self, item: str) -> int:
        """``Wceil(x)``; the dummy priority when nobody writes ``x``."""
        return self._wceil.get(item, DUMMY_PRIORITY)

    def hpw(self, item: str) -> int:
        """``HPW(x)`` — alias of :meth:`wceil`; the paper distinguishes the
        names only because ``Wceil`` is said to "come into effect" when the
        item is read-locked, while ``HPW`` is the raw static quantity."""
        return self._wceil.get(item, DUMMY_PRIORITY)

    def aceil(self, item: str) -> int:
        """``Aceil(x)``; the dummy priority when nobody accesses ``x``."""
        return self._aceil.get(item, DUMMY_PRIORITY)

    def as_mapping(self) -> Mapping[str, Tuple[int, int]]:
        """``{item: (Wceil, Aceil)}`` for reports and tests."""
        return {
            item: (self.wceil(item), self.aceil(item))
            for item in sorted(self._items)
        }

    def describe(self) -> str:
        """ASCII table of every item's Wceil/Aceil."""
        lines = ["item  Wceil  Aceil"]
        for item in sorted(self._items):
            lines.append(f"{item:<5} {self.wceil(item):>5}  {self.aceil(item):>5}")
        return "\n".join(lines)
