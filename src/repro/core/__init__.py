"""The paper's contribution: PCP-DA and its building blocks.

* :class:`~repro.core.ceilings.CeilingTable` — static priority ceilings
  (``Wceil``, ``Aceil``, ``HPW``) derived from a task set's declared read
  and write sets;
* :mod:`repro.core.compatibility` — the paper's Table 1 (lock compatibility
  under dynamic adjustment of serialization order);
* :mod:`repro.core.locking_conditions` — LC1..LC4 as inspectable
  predicates, shared by the protocol and the tests;
* :class:`~repro.core.pcp_da.PCPDA` — the protocol itself.
"""

from repro.core.ceilings import CeilingTable
from repro.core.compatibility import CompatibilityDecision, compatibility_table, lock_compatible
from repro.core.locking_conditions import ConditionReport, evaluate_conditions
from repro.core.pcp_da import PCPDA

__all__ = [
    "CeilingTable",
    "CompatibilityDecision",
    "ConditionReport",
    "PCPDA",
    "compatibility_table",
    "evaluate_conditions",
    "lock_compatible",
]
