"""The paper's Table 1: lock compatibility with dynamic serialization order.

With deferred updates, the compatibility of a new request against an
existing holder is:

=====================  ==============  ==============
holder ``T_L`` holds   ``T_H`` requests read  ``T_H`` requests write
=====================  ==============  ==============
read lock              OK              **NOK** (Case 2: a read must block
                                       later conflicting writes)
write lock             OK\\*           OK (Case 3: blind writes are
                                       non-conflicting)
=====================  ==============  ==============

\\* under the condition ``DataRead(T_L) ∩ WriteSet(T_H) = ∅`` — the
sufficient condition of Section 4.1 that guarantees the reader commits
before the writer (Case 1), so neither transaction ever restarts.

This table is *necessary* for consistency and no-restart, but not
sufficient for single-blocking and deadlock freedom; the ceiling-based
locking conditions LC1..LC4 add that (see
:mod:`repro.core.locking_conditions`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, List, Tuple

from repro.model.spec import LockMode


@dataclass(frozen=True)
class CompatibilityDecision:
    """Outcome of one compatibility lookup.

    Attributes:
        compatible: whether the request may coexist with the holder's lock.
        conditional: True when compatibility depended on the Table-1 ``*``
            condition (read request over a write lock).
        rationale: which of the paper's cases decided it.
    """

    compatible: bool
    conditional: bool
    rationale: str


def lock_compatible(
    held: LockMode,
    requested: LockMode,
    holder_data_read: AbstractSet[str] = frozenset(),
    requester_write_set: AbstractSet[str] = frozenset(),
) -> CompatibilityDecision:
    """Evaluate Table 1 for one (holder mode, requested mode) pair.

    Args:
        held: mode the holder ``T_L`` has on the item.
        requested: mode ``T_H`` requests on the same item.
        holder_data_read: ``DataRead(T_L)`` — items the holder has read.
        requester_write_set: ``WriteSet(T_H)`` — items the requester may
            write (static).

    Returns:
        A :class:`CompatibilityDecision`.
    """
    if held is LockMode.READ and requested is LockMode.READ:
        return CompatibilityDecision(
            True, False, "read/read: no conflict"
        )
    if held is LockMode.READ and requested is LockMode.WRITE:
        return CompatibilityDecision(
            False,
            False,
            "Case 2 (Read_L, Write_H): serialization order is forced to "
            "T_L -> T_H, so T_H must wait",
        )
    if held is LockMode.WRITE and requested is LockMode.WRITE:
        return CompatibilityDecision(
            True,
            False,
            "Case 3 (Write_L, Write_H): blind writes are non-conflicting; "
            "commit order decides the final value",
        )
    # held WRITE, requested READ — Case 1, conditional.
    overlap = sorted(set(holder_data_read) & set(requester_write_set))
    if overlap:
        return CompatibilityDecision(
            False,
            True,
            "Case 1 (Write_L, Read_H) refused: DataRead(T_L) ∩ WriteSet(T_H) "
            f"= {overlap} ≠ ∅, so T_H could later be blocked by T_L and "
            "fail to commit first",
        )
    return CompatibilityDecision(
        True,
        True,
        "Case 1 (Write_L, Read_H): allowed because DataRead(T_L) ∩ "
        "WriteSet(T_H) = ∅ guarantees T_H commits before T_L "
        "(serialization order adjusted to T_H -> T_L)",
    )


def compatibility_table() -> List[Tuple[str, str, str, bool]]:
    """Regenerate Table 1 as rows ``(held, requested, condition, ok)``.

    The conditional cell is expanded into its two outcomes, so the table
    has five rows: the four mode pairs plus the refused variant of the
    conditional cell.
    """
    rows: List[Tuple[str, str, str, bool]] = []
    for held in (LockMode.READ, LockMode.WRITE):
        for requested in (LockMode.READ, LockMode.WRITE):
            if held is LockMode.WRITE and requested is LockMode.READ:
                ok = lock_compatible(held, requested, frozenset(), frozenset())
                rows.append(
                    (str(held), str(requested),
                     "DataRead(T_L) ∩ WriteSet(T_H) = ∅", ok.compatible)
                )
                refused = lock_compatible(
                    held, requested, frozenset({"y"}), frozenset({"y"})
                )
                rows.append(
                    (str(held), str(requested),
                     "DataRead(T_L) ∩ WriteSet(T_H) ≠ ∅", refused.compatible)
                )
            else:
                ok = lock_compatible(held, requested)
                rows.append((str(held), str(requested), "-", ok.compatible))
    return rows


def render_compatibility_table() -> str:
    """ASCII rendering of Table 1 for reports and the benchmark harness."""
    rows = compatibility_table()
    lines = [
        "T_L holds | T_H requests | condition                          | outcome",
        "----------+--------------+------------------------------------+--------",
    ]
    for held, requested, condition, ok in rows:
        outcome = "OK" if ok else "NOK"
        lines.append(
            f"{held:<9} | {requested:<12} | {condition:<34} | {outcome}"
        )
    return "\n".join(lines)
