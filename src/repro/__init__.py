"""repro — a reproduction of *"A Priority Ceiling Protocol with Dynamic
Adjustment of Serialization Order"* (Kwok-wa Lam, Sang H. Son, Sheung-lun
Hung; ICDE 1997).

The library implements the paper's protocol (**PCP-DA**), its published
comparators (RW-PCP, CCP, the original PCP, priority-inheritance 2PL,
2PL-HP, plain 2PL), a deterministic discrete-event simulator of a
single-processor hard real-time database system, the worst-case
schedulability analysis of Section 9, and the tooling that regenerates
every table and figure of the paper.

Quickstart::

    from repro import (
        PCPDA, Simulator, TaskSet, TransactionSpec, read, write,
        assign_by_order, render_gantt,
    )

    t_high = TransactionSpec("T1", (read("x"), read("y")), period=5, offset=1)
    t_low = TransactionSpec("T2", (write("x"), write("y")), offset=0)
    taskset = assign_by_order([t_high, t_low])

    result = Simulator(taskset, PCPDA()).run()
    print(render_gantt(result))
    result.check_serializable()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro.core import CeilingTable, PCPDA
from repro.core.compatibility import compatibility_table, lock_compatible
from repro.db import Database, History, check_serializable, serialization_order
from repro.engine import SimConfig, SimulationResult, Simulator
from repro.exceptions import (
    DeadlockError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SerializationViolation,
    SimulationError,
    SpecificationError,
)
from repro.model import (
    DUMMY_PRIORITY,
    LockMode,
    OpKind,
    Operation,
    TaskSet,
    TransactionSpec,
    assign_rate_monotonic,
    compute,
    read,
    write,
)
from repro.model.priorities import assign_by_order
from repro.protocols import (
    CCP,
    OriginalPCP,
    PIP2PL,
    Plain2PL,
    RWPCP,
    TwoPLHP,
    WeakPCPDA,
    available_protocols,
    make_protocol,
)
from repro.trace import (
    SysceilTrace,
    build_timeline,
    compute_metrics,
    render_gantt,
)
from repro.verify import (
    LemmaCheckingPCPDA,
    assert_deadlock_free,
    assert_serializable,
    assert_single_blocking,
    verify_pcp_da_run,
)
from repro.workloads import (
    WorkloadConfig,
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
    generate_taskset,
)

__version__ = "1.0.0"

__all__ = [
    "CCP",
    "CeilingTable",
    "LemmaCheckingPCPDA",
    "assert_deadlock_free",
    "assert_serializable",
    "assert_single_blocking",
    "verify_pcp_da_run",
    "DUMMY_PRIORITY",
    "Database",
    "DeadlockError",
    "History",
    "InvariantViolation",
    "LockMode",
    "OpKind",
    "Operation",
    "OriginalPCP",
    "PCPDA",
    "PIP2PL",
    "Plain2PL",
    "ProtocolError",
    "RWPCP",
    "ReproError",
    "SerializationViolation",
    "SimConfig",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "SpecificationError",
    "SysceilTrace",
    "TaskSet",
    "TransactionSpec",
    "TwoPLHP",
    "WeakPCPDA",
    "WorkloadConfig",
    "assign_by_order",
    "assign_rate_monotonic",
    "available_protocols",
    "build_timeline",
    "check_serializable",
    "compatibility_table",
    "compute",
    "compute_metrics",
    "example1_taskset",
    "example3_taskset",
    "example4_taskset",
    "example5_taskset",
    "generate_taskset",
    "lock_compatible",
    "make_protocol",
    "read",
    "render_gantt",
    "serialization_order",
    "write",
]
