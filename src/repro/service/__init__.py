"""Live lock-manager service: PCP-DA (and the baseline protocols) served
to concurrent clients over an asyncio runtime.

The simulator answers "what would the protocol do over virtual time"; this
package answers the paper's actual systems question — grant/deny locks
*online* to concurrently connected clients with bounded blocking — while
reusing the exact same building blocks:

* admission decisions come from the registered protocol objects
  (``protocols/*`` — the same ``decide()`` the simulator calls);
* bookkeeping lives in :class:`repro.engine.lock_table.LockTable` and
  :class:`repro.engine.inheritance.WaitForGraph` (priority inheritance and
  deadlock detection included);
* data correctness uses the ``db/`` workspace model: deferred updates,
  version-bound reads, and a committed :class:`repro.db.history.History`
  that replays through :func:`repro.db.serializability.check_serializable`
  — the live path is checked against the same oracle as the simulator.

Layers (see docs/SERVICE.md):

* :mod:`repro.service.manager` — the transport-agnostic async runtime
  (sessions, grant queues, commit, observability hooks);
* :mod:`repro.service.stats` — latency histograms, per-priority-band
  blocking breakdown, grant/deny/abort counters;
* :mod:`repro.service.wire` — the newline-delimited JSON request/response
  schema shared by both transports;
* :mod:`repro.service.server` — the TCP transport (``repro serve``);
* :mod:`repro.service.client` — the async client library (in-process and
  TCP transports);
* :mod:`repro.service.loadgen` — open/closed-loop load generation with
  the serializability replay oracle (``repro loadgen``);
* :mod:`repro.service.sharding` — the partitioned deployment: N shard
  managers behind a coordinator that routes by item, merges the
  per-shard serialization-constraint registries, and runs the commit
  gate globally (``repro serve --shards N``, docs/SHARDING.md).
"""

from repro.service.client import ServiceClient, connect_tcp, in_process_client
from repro.service.eventloop import install_uvloop, loop_implementation
from repro.service.loadgen import LoadgenConfig, LoadReport, run_loadgen
from repro.service.manager import LockManager, ServiceConfig, Session
from repro.service.server import LockServer
from repro.service.sharding import (
    GlobalSession,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    ShardedLockManager,
    make_partitioner,
)
from repro.service.stats import LatencyHistogram, ServiceStats, ShardingStats

__all__ = [
    "GlobalSession",
    "HashPartitioner",
    "LatencyHistogram",
    "LoadReport",
    "LoadgenConfig",
    "LockManager",
    "LockServer",
    "Partitioner",
    "RangePartitioner",
    "ServiceClient",
    "ServiceConfig",
    "ServiceStats",
    "Session",
    "ShardedLockManager",
    "ShardingStats",
    "connect_tcp",
    "in_process_client",
    "install_uvloop",
    "loop_implementation",
    "make_partitioner",
    "run_loadgen",
]
