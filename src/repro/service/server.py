"""The TCP transport: NDJSON request/response over asyncio streams.

One :class:`LockServer` wraps one :class:`~repro.service.manager.LockManager`
behind ``asyncio.start_server``.  Connections are cheap: each request line
spawns a task, so a client may pipeline requests (a session blocked in the
grant queue does not stall the connection's other sessions); responses are
batched per event-loop tick — every response completing in one tick is
coalesced into a single write+drain by the connection's flusher task, so a
pipelining client costs one syscall per tick instead of one per message.
Responses leave in completion order and are matched by ``id`` on the
client side.

Crash safety for clients: sessions are owned by the connection that opened
them.  When a connection drops, its still-live sessions are aborted and
their locks released — a vanished client cannot wedge the lock table (the
service equivalent of the simulator's firm-deadline cleanup).
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Set

from repro.service import wire
from repro.service.manager import LockManager, SessionState


class LockServer:
    """Serve a lock manager on a TCP socket.

    Usage::

        server = LockServer(manager, host="127.0.0.1", port=0)
        await server.start()          # port resolved (server.port)
        ...
        await server.close()          # drains connections, shuts manager down

    ``port=0`` binds an ephemeral port — the tests and the self-hosting
    loadgen mode rely on this.  ``manager`` is anything with the
    :class:`LockManager` surface; a
    :class:`~repro.service.sharding.coordinator.ShardedLockManager`
    serves identically (``repro serve --shards N``).
    """

    def __init__(
        self,
        manager: LockManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and start accepting connections; resolves ``self.port``."""
        self._server = await asyncio.start_server(
            self._accept, self.host, self.port, limit=wire.STREAM_LIMIT
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled (``repro serve``)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drop connections, shut the manager down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.manager.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancelled us mid-cleanup.  Ending the
            # connection task cancelled would make asyncio's streams
            # machinery log a spurious "exception was never retrieved";
            # close() gathers us with return_exceptions anyway.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Sessions opened over this connection, for disconnect cleanup.
        owned: Dict[int, None] = {}
        inflight: Set[asyncio.Task] = set()
        # Batched response path: handlers append and wake the flusher;
        # everything queued by the time it runs goes out as one
        # write+drain (wire.encode_batch), so pipelined responses cost
        # one syscall per event-loop tick, not one per message.
        pending: list = []
        flush_wakeup = asyncio.Event()

        def respond(document: dict) -> None:
            pending.append(document)
            flush_wakeup.set()

        async def flush_loop() -> None:
            try:
                while True:
                    await flush_wakeup.wait()
                    flush_wakeup.clear()
                    if not pending:
                        continue
                    batch = wire.encode_batch(pending)
                    pending.clear()
                    writer.write(batch)
                    await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass  # peer vanished mid-response; cleanup happens below
            except asyncio.CancelledError:
                pass

        flusher = asyncio.ensure_future(flush_loop())
        self._connection_opened(respond)

        async def handle(request: dict) -> None:
            response = await self._handle_request(request, respond, owned)
            respond(response)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = wire.decode(line)
                except ValueError as exc:
                    respond(
                        wire.error_response(None, "bad-request", str(exc))
                    )
                    continue
                task = asyncio.ensure_future(handle(request))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        except asyncio.CancelledError:
            pass  # server shutting down
        finally:
            for task in list(inflight):
                task.cancel()
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            flusher.cancel()
            await asyncio.gather(flusher, return_exceptions=True)
            if pending:
                # Final flush: responses completed after the flusher's
                # last pass must still reach an orderly-closing peer.
                try:
                    writer.write(wire.encode_batch(pending))
                    await writer.drain()
                except (ConnectionError, RuntimeError, OSError):
                    pass
                pending.clear()
            self._connection_closed(respond)
            await self._abort_owned(owned)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, request: dict, respond, owned: Dict[int, None]
    ) -> dict:
        """Dispatch one request; subclasses intercept connection-scoped
        operations here (the shard host's ``subscribe``).  ``respond``
        is the connection's push callback — anything passed to it rides
        the same batched write path as responses, in order.
        """
        response = await wire.dispatch_request(self.manager, request)
        if (
            response.get("ok")
            and request.get("op") == "begin"
            and isinstance(response.get("result"), dict)
        ):
            owned[response["result"]["session"]] = None
        return response

    def _connection_opened(self, respond) -> None:
        """Hook: a connection's push callback became usable."""

    def _connection_closed(self, respond) -> None:
        """Hook: the connection is going away; drop any push registrations."""

    async def _abort_owned(self, owned: Dict[int, None]) -> None:
        """Abort live sessions whose connection disappeared."""
        for session_id in owned:
            try:
                session = self.manager.session(session_id)
            except Exception:
                continue
            if session.state in (SessionState.ACTIVE,):
                try:
                    await self.manager.abort(session, "disconnect")
                except Exception:
                    pass
