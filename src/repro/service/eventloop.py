"""Opt-in uvloop support for the service entry points.

uvloop is a drop-in libuv-based replacement for the stock asyncio event
loop that roughly halves per-request loop overhead under socket-heavy
load.  It is an *optional* accelerator, never a dependency: ``repro
serve --uvloop`` / ``repro loadgen --uvloop`` request it, and when the
package is not installed the request degrades to the stock loop with a
one-line notice instead of an error — deployments pick up the speedup
where available and behave identically everywhere else.

The active implementation is surfaced as the ``event_loop`` field of the
``stats`` payload, so a remote client can tell which loop a server is
actually running.
"""

from __future__ import annotations

import asyncio
import sys


def install_uvloop(requested: bool) -> str:
    """Install uvloop's event-loop policy when requested and available.

    Returns the implementation that will actually drive ``asyncio.run``
    afterwards: ``"uvloop"`` on success, ``"asyncio"`` when not requested
    or when uvloop is not installed (the fallback prints a one-line
    notice to stderr — the run proceeds on the stock loop).
    """
    if not requested:
        return "asyncio"
    try:
        import uvloop
    except ImportError:
        print(
            "uvloop requested but not installed; using the stock asyncio "
            "event loop",
            file=sys.stderr,
        )
        return "asyncio"
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return "uvloop"


def loop_implementation() -> str:
    """The event-loop implementation the current policy will produce
    (``"uvloop"`` or ``"asyncio"``); feeds the ``stats`` payload."""
    policy = asyncio.get_event_loop_policy()
    module = type(policy).__module__ or ""
    return "uvloop" if module.split(".")[0] == "uvloop" else "asyncio"
