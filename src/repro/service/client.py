"""Async client library for the lock-manager service.

One :class:`ServiceClient` speaks the wire schema of
:mod:`repro.service.wire` over a pluggable transport:

* :func:`in_process_client` — calls ``dispatch_request`` directly on a
  local :class:`~repro.service.manager.LockManager`.  No sockets, no
  serialization ambiguity: ideal for tests and for embedding the service
  in another asyncio program.
* :func:`connect_tcp` — a real NDJSON-over-TCP connection to a
  ``repro serve`` instance, with pipelining: requests carry correlation
  ids, a background reader task routes responses to their futures, so many
  sessions can be driven concurrently over one connection.

Wire errors are re-raised as the matching
:class:`~repro.exceptions.ServiceError` subclass (``kind`` → class via
``wire.ERROR_TYPES``), so client code handles ``TransactionAborted`` or
``DeadlineExceeded`` identically whether the manager is in-process or
remote.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Awaitable, Callable, Dict, List, Optional

from repro.exceptions import ServiceError
from repro.service import wire
from repro.service.manager import LockManager

#: A transport: takes a request document, returns the response document.
Transport = Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]


class ClientSession:
    """Handle for one open transaction on the service.

    Thin sugar over the session-scoped wire operations; also usable as an
    async context manager that aborts on exceptional exit and leaves
    committed/aborted sessions alone::

        async with await client.begin("T2") as txn:
            v = await txn.read("x")
            await txn.write("y", v + 1)
            await txn.commit()
    """

    def __init__(self, client: "ServiceClient", session_id: int, name: str,
                 priority: int):
        self.client = client
        self.id = session_id
        self.name = name
        self.priority = priority
        self.finished = False

    async def read(self, item: str) -> Any:
        """Read ``item`` through this session; returns the bound value."""
        result = await self.client.request("read", session=self.id, item=item)
        return result["value"]

    async def write(self, item: str, value: Any) -> None:
        """Buffer a write of ``item`` in the session workspace."""
        await self.client.request("write", session=self.id, item=item,
                                  value=value)

    async def commit(self) -> Dict[str, Any]:
        """Commit; returns the install summary (items, latency, blocking)."""
        result = await self.client.request("commit", session=self.id)
        self.finished = True
        return result

    async def abort(self, reason: str = "client") -> None:
        """Abort the session, discarding its buffered writes."""
        await self.client.request("abort", session=self.id, reason=reason)
        self.finished = True

    async def __aenter__(self) -> "ClientSession":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if self.finished:
            return
        if isinstance(exc, ServiceError):
            # The service already tore the session down (abort/deadline).
            self.finished = True
            return
        try:
            await self.abort("context-exit")
        except ServiceError:
            pass  # raced with a service-side abort


class ServiceClient:
    """Request/response client over an arbitrary transport."""

    def __init__(self, transport: Transport,
                 closer: Optional[Callable[[], Awaitable[None]]] = None):
        self._transport = transport
        self._closer = closer
        self._ids = itertools.count(1)

    async def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Issue one wire operation; raises the mapped service error."""
        document = {"id": next(self._ids), "op": op, **params}
        response = await self._transport(document)
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        kind = error.get("kind", "service")
        message = error.get("message", "unknown service error")
        raise wire.ERROR_TYPES.get(kind, ServiceError)(message)

    # -- convenience wrappers ------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns version and protocol name."""
        return await self.request("ping")

    async def hello(self, *, features: tuple = ("events",)) -> Dict[str, Any]:
        """Negotiate protocol version and features with the server.

        Raises :class:`~repro.exceptions.ProtocolVersionError` when the
        server speaks a different wire era; otherwise returns the
        server's version and the granted feature subset.
        """
        return await self.request(
            "hello", version=wire.PROTOCOL_VERSION, features=list(features)
        )

    async def catalog(self) -> Dict[str, Any]:
        """The service's transaction catalog (specs and operations)."""
        return await self.request("catalog")

    async def begin(self, transaction: str, *,
                    deadline_s: Optional[float] = None) -> ClientSession:
        """Open one instance of ``transaction``; returns its session handle."""
        params: Dict[str, Any] = {"transaction": transaction}
        if deadline_s is not None:
            params["deadline_s"] = deadline_s
        result = await self.request("begin", **params)
        return ClientSession(self, result["session"], result["name"],
                             result["priority"])

    async def stats(self) -> Dict[str, Any]:
        """The full service-side stats snapshot."""
        return await self.request("stats")

    async def topology(self) -> Dict[str, Any]:
        """The deployment's shard topology (partitioner and assignment).

        Unsharded services answer with one implicit shard, so callers
        need not know in advance which kind of deployment they reached.
        """
        return await self.request("topology")

    async def history(self) -> List[Dict[str, Any]]:
        """The observable history rows, in global order."""
        return (await self.request("history"))["events"]

    async def close(self) -> None:
        """Tear the transport down (idempotent)."""
        if self._closer is not None:
            await self._closer()
            self._closer = None

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


def in_process_client(manager: LockManager) -> ServiceClient:
    """A client whose transport is a direct call into ``manager``.

    Runs the exact dispatch code the TCP server runs — only the socket is
    skipped — so in-process tests exercise the full service surface.
    Each request still crosses the event loop once: over TCP every op is
    a socket round-trip that lets other connections run, and without the
    equivalent yield here an in-process client would execute whole
    transactions back-to-back — no interleaving, so no contention, which
    is not the concurrency profile the wire tests mean to exercise.
    """

    async def transport(request: Dict[str, Any]) -> Dict[str, Any]:
        await asyncio.sleep(0)
        return await wire.dispatch_request(manager, request)

    return ServiceClient(transport)


async def connect_tcp(
    host: str,
    port: int,
    *,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ServiceClient:
    """Open an NDJSON-over-TCP connection to a running lock server.

    ``on_event`` receives server-pushed frames (documents with no
    correlation id — the v2 event stream a shard host emits after a
    ``subscribe``).  Without it frames are dropped, which keeps plain
    clients compatible with event-capable servers.
    """
    reader, writer = await asyncio.open_connection(
        host, port, limit=wire.STREAM_LIMIT
    )
    pending: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}
    write_lock = asyncio.Lock()

    async def pump() -> None:
        """Route response lines to their awaiting futures."""
        error: Optional[BaseException] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response = wire.decode(line)
                if wire.is_event(response):
                    if on_event is not None:
                        on_event(response)
                    continue
                future = pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionResetError("client closed")
        finally:
            failure = error or ConnectionResetError("server closed connection")
            for future in pending.values():
                if not future.done():
                    future.set_exception(
                        ServiceError(f"connection lost: {failure}")
                    )
            pending.clear()

    pump_task = asyncio.ensure_future(pump())

    async def transport(request: Dict[str, Any]) -> Dict[str, Any]:
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        pending[request["id"]] = future
        try:
            async with write_lock:
                writer.write(wire.encode(request))
                await writer.drain()
        except ConnectionError as exc:
            pending.pop(request["id"], None)
            raise ServiceError(f"connection lost: {exc}") from exc
        return await future

    async def closer() -> None:
        pump_task.cancel()
        try:
            await pump_task
        except asyncio.CancelledError:
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    return ServiceClient(transport, closer)
