"""Item-space partitioners: which shard owns which data item.

A partitioner is a pure, deterministic function ``item id -> shard id``
fixed at deployment time.  Determinism matters twice over: every
coordinator instance (and every test re-run) must route an item to the
same shard, and the shard assignment is part of what the client-side
serializability replay implicitly verifies — a wobbling partitioner
would manifest as a shard granting nothing (the loadgen report flags
exactly that).

Two schemes, mirroring the classic trade-off:

* :class:`HashPartitioner` — a stable digest of the item id modulo the
  shard count.  Spreads hot neighbouring keys apart; assignment is
  independent of the catalog, so items can be added without resharding
  everything (only the new ids hash somewhere).  Uses ``zlib.crc32``
  rather than the builtin ``hash()``, which is salted per process and
  therefore *not* stable across runs.
* :class:`RangePartitioner` — the sorted item universe is cut into
  contiguous slices of near-equal size.  Keeps key ranges co-located
  (scans of adjacent items stay on one shard, more transactions stay
  shard-local when their access sets are clustered), at the cost of
  sensitivity to skewed key popularity.

``docs/FAQ.md`` discusses when to prefer which.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import SpecificationError


class Partitioner:
    """Deterministic mapping from item ids to shard ids in ``[0, shards)``."""

    #: Scheme name, as shown in ``topology`` documents and CLI flags.
    name = "abstract"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise SpecificationError("shard count must be >= 1")
        self.shards = shards

    def shard_of(self, item: str) -> int:
        """The shard id owning ``item`` (stable across runs and processes)."""
        raise NotImplementedError

    def assignment(self, items: Iterable[str]) -> Dict[int, List[str]]:
        """Group ``items`` by owning shard (every shard id is present)."""
        groups: Dict[int, List[str]] = {shard: [] for shard in range(self.shards)}
        for item in sorted(items):
            groups[self.shard_of(item)].append(item)
        return groups

    def describe(self) -> str:
        """One-line human description of the scheme."""
        return f"{self.name} over {self.shards} shard(s)"


class HashPartitioner(Partitioner):
    """Stable-digest partitioning: ``crc32(item) % shards``.

    The digest is process- and run-independent (unlike builtin ``hash``,
    which is randomized by ``PYTHONHASHSEED``), so a client, a test, and
    a server restarted tomorrow all agree on the owner of every item.
    """

    name = "hash"

    def shard_of(self, item: str) -> int:
        """Owner of ``item``: CRC-32 of its UTF-8 bytes, modulo shards."""
        return zlib.crc32(item.encode("utf-8")) % self.shards


class RangePartitioner(Partitioner):
    """Contiguous-range partitioning over a known item universe.

    The sorted universe is split into ``shards`` slices whose sizes
    differ by at most one; slice ``k`` belongs to shard ``k``.  Items
    outside the universe still map deterministically (they fall into the
    range their sort position selects), so a catalog extension does not
    crash routing — it merely lands new keys on the neighbouring shard
    until the deployment is re-split.
    """

    name = "range"

    def __init__(self, shards: int, items: Sequence[str]) -> None:
        super().__init__(shards)
        universe = sorted(set(items))
        if not universe:
            raise SpecificationError(
                "range partitioning needs a non-empty item universe"
            )
        size, extra = divmod(len(universe), shards)
        #: First item of slice k for k >= 1; ``bisect`` against these
        #: boundaries answers ``shard_of`` in O(log shards).
        bounds: List[str] = []
        index = 0
        for shard in range(shards):
            width = size + (1 if shard < extra else 0)
            if shard > 0:
                bounds.append(universe[min(index, len(universe) - 1)])
            index += width
        self._bounds: Tuple[str, ...] = tuple(bounds)

    def shard_of(self, item: str) -> int:
        """Owner of ``item``: the contiguous slice its sort position hits."""
        return bisect_right(self._bounds, item)

    def describe(self) -> str:
        """One-line human description including the cut points."""
        cuts = ", ".join(self._bounds) or "single range"
        return f"range over {self.shards} shard(s); cuts at [{cuts}]"


#: Registered scheme names, for the CLI and ``make_partitioner``.
PARTITIONER_KINDS: Tuple[str, ...] = ("hash", "range")


def make_partitioner(
    kind: str, shards: int, items: Sequence[str]
) -> Partitioner:
    """Build a partitioner by scheme name (``"hash"`` or ``"range"``)."""
    if kind == "hash":
        return HashPartitioner(shards)
    if kind == "range":
        return RangePartitioner(shards, items)
    raise SpecificationError(
        f"unknown partitioner {kind!r} (expected one of {PARTITIONER_KINDS})"
    )
