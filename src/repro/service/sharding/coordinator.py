"""The shard coordinator: routing, span tracking, and the global gate.

A :class:`ShardedLockManager` owns N fully independent
:class:`~repro.service.manager.LockManager` shards — each with its own
lock table, wait-for graph, protocol instance (so ceilings and
inheritance are *per shard*, DPCP-p-style), database partition, and
history — plus the coordinator state that stitches them back into one
serializable service:

* **Routing.**  A :class:`~repro.service.sharding.partitioner.Partitioner`
  maps every item id to its owning shard; ``read``/``write`` forward to a
  lazily-opened *leg* session there.  All legs of one global session
  share the same pinned instance number, so every shard knows the
  transaction by the same name (``"T2#7"``) and the merged history is
  coherent.
* **Shard-span.**  Access sets are static (ceilings require it), so the
  span — the set of shards a session may touch — is known at ``begin``.
  Single-shard ("local") sessions take the fast path: their commit is
  delegated wholesale to the home shard, whose local commit gate is
  provably sufficient (every direct ≺-constraint involving a session is
  recorded on a shard where it holds locks, i.e. its home).  Multi-shard
  ("global") sessions pay for coordination.
* **Global commit gate.**  Before a cross-shard commit installs
  anything, the coordinator aggregates the per-shard reader≺writer
  registries (``LockManager._pred``) into one merged, session-level
  constraint graph and parks the committer until every live predecessor
  on *every* touched shard has finished.  The install loop that follows
  contains no ``await`` until the last shard's install lands — per-shard
  local gates are empty by then (their constraints are a subset of the
  merged ones), so a multi-shard commit is atomic on the event loop and
  no concurrent reader can observe a partially-installed transaction.
* **Global order guard.**  A read is held back while any live
  *transitive* predecessor on the merged graph — beyond those the owning
  shard can see locally — declares the item in its write set.  On a
  1-shard deployment the remote remainder is empty by construction, so
  the sharded service is decision-equivalent to the unsharded manager
  (the differential battery in ``tests/test_sharding_equivalence.py``
  pins this).
* **Cross-shard deadlock detection.**  Shard-local cycles are the
  shard's own business (same rules as the unsharded manager), but a
  cycle may close *across* shards — through coordinator gate/guard waits
  or through lock waits on two different shards (the per-shard ceilings
  cannot see each other, so the paper's deadlock-freedom theorem does
  not survive partitioning; ``docs/SHARDING.md`` discusses this
  honestly).  Waiters poll a cheap sweep while parked; the sweep builds
  the session-level union of all shard wait-for graphs plus the
  coordinator waits, and resolves any cycle not attributable to a
  single shard by aborting its lowest-priority member.

Deadlines are owned by the coordinator (legs run without deadlines):
checked at operation boundaries and enforced mid-wait by the watchdog
that wraps every forwarded operation.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.engine.job import Job
from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    ServiceError,
    SessionStateError,
    SpecificationError,
    TransactionAborted,
)
from repro.model.spec import TaskSet, TransactionSpec
from repro.service.manager import (
    LockManager,
    ServiceConfig,
    Session,
    SessionState,
)
from repro.service.sharding.partitioner import Partitioner, make_partitioner
from repro.service.stats import ServiceStats, ShardingStats

#: History-row sort rank: reads before installs before outcomes at equal
#: timestamps.  Serialization-graph edges depend only on per-item version
#: sequence numbers, so this rank only keeps the merged log readable.
_HISTORY_RANK = {"read": 0, "install": 1, "commit": 2, "abort": 2}


class GlobalSession:
    """One live transaction as the coordinator sees it.

    The coordinator-side twin of :class:`~repro.service.manager.Session`:
    it has no job of its own — instead it owns one *leg* session per
    touched shard, all running under the same pinned instance name.
    """

    __slots__ = ("id", "spec", "instance", "state", "deadline", "opened_at",
                 "abort_reason", "legs", "span", "in_flight")

    def __init__(self, session_id: int, spec: TransactionSpec, instance: int,
                 opened_at: float) -> None:
        self.id = session_id
        self.spec = spec
        self.instance = instance
        self.state = SessionState.ACTIVE
        #: Absolute deadline on the service clock (coordinator-enforced;
        #: legs run deadline-free so no shard can half-abort a commit).
        self.deadline: Optional[float] = None
        self.opened_at = opened_at
        self.abort_reason = ""
        #: shard id -> leg session, opened lazily on first touch.
        self.legs: Dict[int, Session] = {}
        #: Shards the declared access set may touch (static, see begin).
        self.span: FrozenSet[int] = frozenset()
        #: One in-flight operation per session, coordinator-enforced.
        self.in_flight = False

    @property
    def name(self) -> str:
        """The instance name every leg shares (``"T2#7"``)."""
        return f"{self.spec.name}#{self.instance}"

    @property
    def priority(self) -> int:
        """The transaction type's base priority."""
        return self.spec.priority

    @property
    def scope(self) -> str:
        """``"local"`` (single-shard span, fast path) or ``"global"``."""
        return "local" if len(self.span) <= 1 else "global"


@dataclass
class _CoordWait:
    """One parked coordinator-level wait (gate or guard), for deadlock
    edges and introspection."""

    kind: str
    blockers: Tuple[GlobalSession, ...]


class ShardedLockManager:
    """Partitioned lock-manager service behind the unsharded interface.

    Exposes the same surface as :class:`LockManager` (``begin`` /
    ``read`` / ``write`` / ``commit`` / ``abort`` / ``shutdown`` plus the
    introspection documents), so the wire layer, the TCP server, and the
    load generator drive it unchanged.

    Args:
        catalog: the registered transaction types (shared by all shards —
            ceilings are static information, and a shard computes its
            ceilings only from the locks it actually sees).
        protocol: a protocol *name*; each shard builds its own instance
            (protocol objects hold per-shard lock-table bindings, so a
            shared instance cannot be correct).
        config: coordinator-level :class:`ServiceConfig`; admission
            control and default deadlines apply globally, while
            ``record_sysceil`` / ``honor_early_release`` /
            ``deadlock_action`` are forwarded to every shard.
        shards: number of partitions (>= 1).
        partitioner: scheme name (``"hash"`` / ``"range"``) or a prebuilt
            :class:`Partitioner`.
        sweep_interval_s: polling period of the parked-waiter watchdog
            (cascade of shard-side aborts + cross-shard deadlock check).
    """

    def __init__(
        self,
        catalog: TaskSet,
        protocol: str = "pcp-da",
        config: Optional[ServiceConfig] = None,
        *,
        shards: int = 2,
        partitioner: Union[str, Partitioner] = "hash",
        sweep_interval_s: float = 0.05,
    ) -> None:
        if not isinstance(protocol, str):
            raise SpecificationError(
                "ShardedLockManager needs a protocol *name*: every shard "
                "builds its own instance (protocol objects bind one lock "
                "table)"
            )
        if sweep_interval_s <= 0:
            raise SpecificationError("sweep_interval_s must be positive")
        self.catalog = catalog
        self.config = config or ServiceConfig()
        items = sorted(catalog.items)
        if isinstance(partitioner, str):
            partitioner = make_partitioner(partitioner, shards, items)
        elif partitioner.shards != shards:
            raise SpecificationError(
                f"partitioner covers {partitioner.shards} shard(s), "
                f"manager has {shards}"
            )
        self.partitioner = partitioner
        shard_config = ServiceConfig(
            deadlock_action=self.config.deadlock_action,
            record_sysceil=self.config.record_sysceil,
            honor_early_release=self.config.honor_early_release,
        )
        self.shards: Tuple[LockManager, ...] = tuple(
            LockManager(catalog, protocol, shard_config)
            for _ in range(shards)
        )
        # One service clock for the whole deployment: merged histories
        # and latency figures must be comparable across shards.
        self._t0 = time.monotonic()
        for shard in self.shards:
            shard._t0 = self._t0
        self.stats = ServiceStats()
        self.sharding_stats = ShardingStats()
        self._sweep_interval = sweep_interval_s

        self._sessions: Dict[int, GlobalSession] = {}
        self._live: Dict[GlobalSession, None] = {}  # insertion-ordered set
        #: leg job -> owning global session (constraint/wait translation).
        self._job_sessions: Dict[Job, GlobalSession] = {}
        #: Parked coordinator-level waits (commit gate / order guard).
        self._coord_waits: Dict[GlobalSession, _CoordWait] = {}
        #: Futures fired whenever any global session finishes.
        self._finish_futures: List["asyncio.Future[None]"] = []
        #: (kind, instance name, time) terminal rows for the merged history.
        self._outcomes: List[Tuple[str, str, float]] = []
        self._instances: Dict[str, int] = {}
        self._next_session_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Clock and identity
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the deployment started (shared service clock)."""
        return time.monotonic() - self._t0

    @property
    def protocol(self):
        """The protocol instance of shard 0 (all shards run the same one)."""
        return self.shards[0].protocol

    @property
    def shard_count(self) -> int:
        """Number of partitions in this deployment."""
        return len(self.shards)

    def add_decision_listener(self, listener) -> None:
        """Subscribe ``listener`` to every shard's lock decisions.

        The callback receives each :class:`repro.trace.recorder.LockEvent`
        at the moment a shard records it, so a single listener observes
        the deployment-wide decision sequence in true global order —
        per-shard traces alone cannot reconstruct the interleaving.  Used
        by the parity harness (:mod:`repro.verify.parity`).
        """
        for shard in self.shards:
            shard.decision_listeners.append(listener)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    async def begin(
        self, transaction: str, *, deadline_s: Optional[float] = None
    ) -> GlobalSession:
        """Open a global session for one instance of ``transaction``.

        The shard-span is computed here, from the declared access set —
        it is static by the same argument that makes ceilings static.
        No leg is opened yet; the first touch of a shard opens one.
        """
        self._ensure_open()
        spec = self.catalog[transaction]
        limit = self.config.max_sessions
        if limit is not None and len(self._live) >= limit:
            self.stats.sessions_rejected += 1
            raise AdmissionError(
                f"session limit reached ({limit} live sessions); retry later"
            )
        now = self.now()
        instance = self._instances.get(transaction, 0)
        self._instances[transaction] = instance + 1
        session = GlobalSession(self._next_session_id, spec, instance, now)
        self._next_session_id += 1
        relative = (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        if relative is not None:
            session.deadline = now + relative
        session.span = frozenset(
            self.partitioner.shard_of(item) for item in spec.access_set
        )
        self._sessions[session.id] = session
        self._live[session] = None
        self.stats.sessions_started += 1
        if session.scope == "local":
            self.sharding_stats.local_sessions += 1
        else:
            self.sharding_stats.cross_shard_sessions += 1
        return session

    def session(self, session_id: int) -> GlobalSession:
        """Look up a global session by id (for the wire layer)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionStateError(f"unknown session {session_id}") from None

    async def read(self, session: GlobalSession, item: str) -> Any:
        """Read ``item`` through the owning shard's leg.

        The merged-graph order guard runs first: predecessors the owning
        shard cannot see locally (they hold no constraint edge there)
        must finish before this read may observe the item they will
        write.  The shard's own guard then covers the local remainder.
        """
        self._pre_op(session)
        shard_id = self.partitioner.shard_of(item)
        session.in_flight = True
        try:
            await self._await_remote(
                session, "order guard",
                lambda: self._remote_guard_blockers(session, shard_id, item),
            )
            leg = await self._ensure_leg(session, shard_id)
            return await self._forward(
                session, self.shards[shard_id].read(leg, item)
            )
        finally:
            session.in_flight = False

    async def write(self, session: GlobalSession, item: str, value: Any) -> None:
        """Buffer a deferred write on the owning shard's leg."""
        self._pre_op(session)
        shard_id = self.partitioner.shard_of(item)
        session.in_flight = True
        try:
            leg = await self._ensure_leg(session, shard_id)
            await self._forward(
                session, self.shards[shard_id].write(leg, item, value)
            )
        finally:
            session.in_flight = False

    async def commit(self, session: GlobalSession) -> Dict[str, Any]:
        """Commit across every touched shard; returns the merged summary.

        Single-leg sessions delegate to their home shard (the local gate
        is sufficient — every direct constraint involving this session
        lives where it holds locks).  Cross-shard sessions park at the
        global gate until the merged predecessor set drains, then install
        leg by leg with no intervening ``await`` — atomic on the loop.
        """
        self._pre_op(session)
        session.in_flight = True
        try:
            legs = {k: session.legs[k] for k in sorted(session.legs)}
            if len(legs) <= 1:
                if legs:
                    ((shard_id, leg),) = legs.items()
                    summary = await self._forward(
                        session, self.shards[shard_id].commit(leg)
                    )
                else:
                    summary = {"installed": [], "blocking_s": 0.0}
                now = self.now()
                self._finish_global(session, now)
                summary["latency_s"] = now - session.opened_at
                summary["shards"] = list(legs)
                return summary

            await self._await_remote(
                session, "commit gate",
                lambda: self._gate_blockers(session),
            )
            # Atomic section: from the (empty) gate check to the last
            # install there is no await — each leg commit's local gate is
            # empty (its constraints are a subset of the merged set just
            # drained), so awaiting it never yields to the loop.
            installed: List[str] = []
            blocking = 0.0
            try:
                for shard_id, leg in legs.items():
                    summary = await self.shards[shard_id].commit(leg)
                    installed.extend(summary["installed"])
                    blocking += summary["blocking_s"]
            except BaseException as exc:
                # Unreachable by construction (legs are ACTIVE and their
                # gates empty); if it ever fires, fail loudly but do not
                # leave sibling legs holding locks.
                self._abort_global(
                    session, f"commit failure: {exc}", forced=True
                )
                raise
            now = self.now()
            self._finish_global(session, now)
            # OCC-style installs may have broadcast-aborted other
            # sessions' legs; cascade synchronously (no await: the
            # atomic section stays atomic).
            self._cascade_dead()
            return {
                "installed": sorted(installed),
                "latency_s": now - session.opened_at,
                "blocking_s": blocking,
                "shards": list(legs),
            }
        finally:
            session.in_flight = False

    async def abort(self, session: GlobalSession, reason: str = "client") -> None:
        """Client-requested abort: tear down every leg, discard buffers."""
        if not session.state.live:
            raise SessionStateError(
                f"{session.name}: cannot abort a {session.state.value} session"
            )
        if session.in_flight or session.state is SessionState.WAITING:
            raise SessionStateError(
                f"{session.name}: another operation is waiting for a lock"
            )
        self._abort_global(session, reason, forced=False)

    async def shutdown(self) -> None:
        """Abort every live session, shut every shard down, refuse new work."""
        if self._closed:
            return
        self._closed = True
        for session in list(self._live):
            self._abort_global(
                session, "shutdown", forced=True,
                exc=TransactionAborted("service shutting down"),
            )
        for shard in self.shards:
            await shard.shutdown()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_sessions(self) -> Tuple[GlobalSession, ...]:
        """Currently live global sessions, oldest first."""
        return tuple(self._live)

    def stats_document(self) -> Dict[str, Any]:
        """The ``stats`` payload: merged shard stats + coordinator view.

        Lock-level signals (grants, denials, waits, priority bands) are
        the union of the shards; session-level scalars (sessions,
        commits, aborts, end-to-end commit latency) come from the
        coordinator, which is the only place a cross-shard transaction
        counts once.  ``shards`` carries one summary entry per shard
        (including its latency histograms) and ``coordinator`` the
        sharding counters — both ignored by
        :meth:`ServiceStats.from_dict`, so unsharded consumers read the
        document unchanged.
        """
        merged = ServiceStats()
        for shard in self.shards:
            merged.merge(shard.stats)
        merged.lock_wait.merge(self.stats.lock_wait)  # gate/guard parks
        doc = merged.to_dict()
        for scalar in (
            "sessions_started", "sessions_rejected", "commits",
            "client_aborts", "forced_aborts", "deadline_aborts", "requests",
        ):
            doc[scalar] = getattr(self.stats, scalar)
        doc["commit_latency"] = self.stats.commit_latency.to_dict()
        doc["protocol"] = self.protocol.name
        doc["uptime_s"] = self.now()
        doc["live_sessions"] = len(self._live)
        doc["waiting_sessions"] = (
            sum(len(shard._waiters) for shard in self.shards)
            + len(self._coord_waits)
        )
        ceilings = [shard.system_ceiling() for shard in self.shards]
        known = [c for c in ceilings if c is not None]
        doc["system_ceiling"] = max(known) if known else None
        assignment = self.partitioner.assignment(self.catalog.items)
        doc["shard_count"] = self.shard_count
        doc["partitioner"] = self.partitioner.name
        doc["shards"] = [
            {
                "shard": index,
                "items": len(assignment[index]),
                "sessions": shard.stats.sessions_started,
                "grants": shard.stats.grants,
                "denials": shard.stats.denials,
                "commits": shard.stats.commits,
                "forced_aborts": shard.stats.forced_aborts,
                "deadlocks": shard.stats.deadlocks,
                "commit_latency": shard.stats.commit_latency.to_dict(),
                "lock_wait": shard.stats.lock_wait.to_dict(),
            }
            for index, shard in enumerate(self.shards)
        ]
        doc["coordinator"] = self.sharding_stats.to_dict()
        return doc

    def topology_document(self) -> Dict[str, Any]:
        """The ``topology`` payload: partitioning scheme and assignment."""
        assignment = self.partitioner.assignment(self.catalog.items)
        return {
            "shards": self.shard_count,
            "partitioner": self.partitioner.name,
            "scheme": self.partitioner.describe(),
            "assignment": {
                str(shard): items for shard, items in assignment.items()
            },
        }

    def history_events(self) -> List[Dict[str, Any]]:
        """The merged observable history as JSON-friendly rows.

        Data rows (reads, installs) come from the shard that executed
        them; terminal rows (commit, abort) come from the coordinator's
        outcome log — exactly one per global session, replacing the
        per-leg terminals each shard recorded.  Rows are ordered by
        service-clock time (one clock for all shards); the
        serializability oracle depends only on per-item version
        sequences, which shard-disjoint item spaces keep consistent, so
        the merged log replays through ``check_serializable`` unchanged.
        """
        rows: List[Tuple[float, int, Dict[str, Any]]] = []
        for shard in self.shards:
            for event in shard.history:
                kind = event.kind.value
                if kind not in ("read", "install"):
                    continue  # per-leg terminals: superseded globally
                rows.append((event.time, _HISTORY_RANK[kind], {
                    "kind": kind,
                    "job": event.job,
                    "item": event.item,
                    "version_seq": event.version_seq,
                    "time": event.time,
                }))
        for kind, name, when in self._outcomes:
            rows.append((when, _HISTORY_RANK[kind], {
                "kind": kind,
                "job": name,
                "item": None,
                "version_seq": None,
                "time": when,
            }))
        rows.sort(key=lambda entry: (entry[0], entry[1]))
        return [row for _, _, row in rows]

    def catalog_document(self) -> List[Dict[str, Any]]:
        """The registered transaction types (identical on every shard)."""
        return self.shards[0].catalog_document()

    # ------------------------------------------------------------------
    # Operation plumbing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("lock manager is shut down")

    def _pre_op(self, session: GlobalSession) -> None:
        """Shared entry checks: liveness, one-in-flight, deadline."""
        self._ensure_open()
        if session.in_flight or session.state is SessionState.WAITING:
            raise SessionStateError(
                f"{session.name}: a previous operation is still waiting "
                "for a lock (one in-flight operation per session)"
            )
        if not session.state.live:
            raise SessionStateError(
                f"{session.name}: session already {session.state.value}"
            )
        # A leg may have died shard-side since the last touch (2PL-HP
        # victim, OCC broadcast abort) without any parked waiter to run
        # the sweep: mirror the unsharded manager, where such an abort
        # flips the session state synchronously.
        self._cascade_session(session)
        if not session.state.live:
            raise TransactionAborted(
                f"{session.name}: {session.abort_reason or 'aborted'}"
            )
        if session.deadline is not None and self.now() > session.deadline:
            self.stats.deadline_aborts += 1
            self._abort_global(session, "deadline", forced=True)
            raise DeadlineExceeded(
                f"{session.name}: deadline passed before the operation"
            )

    async def _ensure_leg(
        self, session: GlobalSession, shard_id: int
    ) -> Session:
        """The session's leg on ``shard_id``, opened on first touch.

        ``LockManager.begin`` never awaits internally, so awaiting it
        here runs it to completion without yielding to the loop — leg
        creation is atomic with the operation that needed it.  Legs run
        uncapped and deadline-free: admission and deadlines are
        coordinator concerns.
        """
        leg = session.legs.get(shard_id)
        if leg is not None:
            if not leg.state.live:
                # The leg died while this operation was parked at the
                # coordinator (guard/gate): the whole transaction is gone.
                self._cascade_session(session)
                raise TransactionAborted(
                    f"{session.name}: leg on shard {shard_id} already "
                    f"{leg.state.value} ({leg.abort_reason or 'aborted'})"
                )
            return leg
        shard = self.shards[shard_id]
        leg = await shard.begin(session.spec.name, instance=session.instance)
        # Tie-breakers (grant-queue FIFO, victim choice) must follow the
        # *global* begin order, not the lazy leg-creation order, or two
        # equal-priority sessions could be served in a different order
        # than the unsharded manager would serve them.  ``seq`` is used
        # purely as a deterministic tie-break, and this leg's job is in
        # no queue yet, so the override is safe.
        leg.job.seq = session.id
        session.legs[shard_id] = leg
        self._job_sessions[leg.job] = session
        return leg

    # ------------------------------------------------------------------
    # Forwarding with the watchdog
    # ------------------------------------------------------------------
    async def _forward(self, session: GlobalSession, coro) -> Any:
        """Await a shard operation under the coordinator's watchdog.

        While the operation is parked shard-side, the watchdog wakes
        every sweep interval to cascade shard-initiated aborts, run the
        cross-shard deadlock check, and enforce the session's deadline
        (legs carry none).  Cancellation (client disconnect) tears the
        global session down, mirroring the unsharded manager.
        """
        task = asyncio.ensure_future(coro)
        while True:
            if (
                session.deadline is not None
                and self.now() > session.deadline
            ):
                await self._reap(task)
                if session.state.live:
                    self.stats.deadline_aborts += 1
                    self._abort_global(session, "deadline", forced=True)
                raise DeadlineExceeded(
                    f"{session.name}: deadline passed during the operation"
                )
            timeout = self._sweep_interval
            if session.deadline is not None:
                timeout = min(
                    timeout, max(1e-4, session.deadline - self.now())
                )
            try:
                result = await asyncio.wait_for(asyncio.shield(task), timeout)
                # The operation may have aborted *other* sessions
                # shard-side (2PL-HP victims, OCC broadcast): cascade
                # now, synchronously, exactly as the unsharded manager
                # flips those sessions' states inside the operation.
                self._cascade_dead()
                return result
            except asyncio.TimeoutError:
                self._sweep()
            except asyncio.CancelledError:
                await self._reap(task)
                if session.state.live:
                    self._abort_global(session, "cancelled", forced=True)
                raise
            except ServiceError as exc:
                self._on_leg_failure(session, exc)
                raise

    @staticmethod
    async def _reap(task: "asyncio.Task") -> None:
        """Cancel a forwarded task and silence its outcome."""
        task.cancel()
        try:
            await task
        except BaseException:  # noqa: BLE001 - outcome deliberately dropped
            pass

    def _on_leg_failure(self, session: GlobalSession, exc: ServiceError) -> None:
        """Map a shard-side failure onto the global session.

        A leg abort (deadlock victim, OCC validation victim, shard
        shutdown) kills the whole transaction: the sibling legs are torn
        down so no shard keeps locks for a dead session.  Client-level
        errors (session-state, bad item) leave the session alive, same
        as on the unsharded manager.
        """
        if not session.state.live:
            return
        if isinstance(exc, (TransactionAborted, DeadlineExceeded)):
            dead = next(
                (leg for leg in session.legs.values()
                 if leg.state is SessionState.ABORTED),
                None,
            )
            reason = dead.abort_reason if dead is not None else "shard abort"
            self.sharding_stats.cascade_aborts += 1
            self._abort_global(
                session, f"shard:{reason}", forced=True,
                exc=TransactionAborted(f"{session.name}: {reason}"),
            )

    # ------------------------------------------------------------------
    # The global gate and guard
    # ------------------------------------------------------------------
    def _merged_preds(self, session: GlobalSession) -> Set[GlobalSession]:
        """Live sessions serialized before this one, on the merged graph.

        Transitive closure over the union of every shard's constraint
        registry, translated from leg jobs to global sessions.  The
        registries hold only live jobs, so no staleness filtering is
        needed.
        """
        self.sharding_stats.constraint_merges += 1
        seen: Set[GlobalSession] = set()
        stack: List[GlobalSession] = [session]
        while stack:
            current = stack.pop()
            for shard_id, leg in current.legs.items():
                shard = self.shards[shard_id]
                for pred_job in shard._pred.get(leg.job, ()):
                    pred = self._job_sessions.get(pred_job)
                    if pred is None or pred is session or pred in seen:
                        continue
                    seen.add(pred)
                    stack.append(pred)
        return seen

    def _remote_guard_blockers(
        self, session: GlobalSession, shard_id: int, item: str
    ) -> Tuple[GlobalSession, ...]:
        """Predecessors that write ``item`` and are invisible locally.

        The owning shard's order guard already holds a read back for
        every predecessor in *its* transitive closure; the coordinator
        only has to cover the remainder visible on the merged graph.  On
        a 1-shard deployment the remainder is empty by construction —
        the guarantee behind decision-equivalence.
        """
        merged = self._merged_preds(session)
        if not merged:
            return ()
        local: Set[GlobalSession] = set()
        leg = session.legs.get(shard_id)
        if leg is not None and leg.state.live:
            shard = self.shards[shard_id]
            for pred_job in shard._transitive_preds(leg.job):
                pred = self._job_sessions.get(pred_job)
                if pred is not None:
                    local.add(pred)
        blockers = [
            pred for pred in merged
            if pred.state.live
            and item in pred.spec.write_set
            and pred not in local
        ]
        return tuple(sorted(blockers, key=lambda s: s.id))

    def _gate_blockers(
        self, session: GlobalSession
    ) -> Tuple[GlobalSession, ...]:
        """Live merged predecessors that must finish before this commit."""
        return tuple(sorted(
            (pred for pred in self._merged_preds(session)
             if pred.state.live),
            key=lambda s: s.id,
        ))

    async def _await_remote(
        self,
        session: GlobalSession,
        kind: str,
        blockers_fn: Callable[[], Tuple[GlobalSession, ...]],
    ) -> None:
        """Park until ``blockers_fn`` drains (finish-wakes + sweep polls).

        Registers the wait for the cross-shard deadlock detector, counts
        it in the sharding stats, and enforces liveness/deadline on
        every wake.  Returns synchronously once the blocker set is empty
        — callers rely on there being no trailing ``await``.
        """
        blockers = blockers_fn()
        if not blockers:
            return
        if kind == "commit gate":
            self.sharding_stats.gate_waits += 1
        else:
            self.sharding_stats.guard_waits += 1
        started = self.now()
        previous_state = session.state
        session.state = SessionState.WAITING
        try:
            while True:
                blockers = blockers_fn()
                if not blockers:
                    return
                loop = asyncio.get_running_loop()
                future: "asyncio.Future[None]" = loop.create_future()
                self._finish_futures.append(future)
                self._coord_waits[session] = _CoordWait(kind, blockers)
                self._check_global_deadlock()
                try:
                    if session.state.live:
                        timeout = self._sweep_interval
                        if session.deadline is not None:
                            timeout = min(
                                timeout,
                                max(1e-4, session.deadline - self.now()),
                            )
                        try:
                            await asyncio.wait_for(
                                asyncio.shield(future), timeout
                            )
                        except asyncio.TimeoutError:
                            self._sweep()
                        except asyncio.CancelledError:
                            if session.state.live:
                                self._abort_global(
                                    session, "cancelled", forced=True
                                )
                            raise
                finally:
                    self._coord_waits.pop(session, None)
                    if future in self._finish_futures:
                        self._finish_futures.remove(future)
                if not session.state.live:
                    raise TransactionAborted(
                        f"{session.name}: "
                        f"{session.abort_reason or 'aborted'} "
                        f"(while parked at the {kind})"
                    )
                if (
                    session.deadline is not None
                    and self.now() > session.deadline
                ):
                    self.stats.deadline_aborts += 1
                    self._abort_global(session, "deadline", forced=True)
                    raise DeadlineExceeded(
                        f"{session.name}: deadline passed at the {kind}"
                    )
        finally:
            if session.state is SessionState.WAITING:
                session.state = previous_state
            self.stats.record_wait(session.priority, self.now() - started)

    def _wake_finish_waiters(self) -> None:
        """Fire every parked coordinator wait to re-evaluate its blockers."""
        for future in self._finish_futures:
            if not future.done():
                future.set_result(None)

    # ------------------------------------------------------------------
    # Terminal transitions
    # ------------------------------------------------------------------
    def _finish_global(self, session: GlobalSession, now: float) -> None:
        """Commit bookkeeping: outcome row, stats, wake-ups."""
        session.state = SessionState.COMMITTED
        self._live.pop(session, None)
        for leg in session.legs.values():
            self._job_sessions.pop(leg.job, None)
        self._outcomes.append(("commit", session.name, now))
        self.stats.record_commit(session.priority, now - session.opened_at)
        if len(session.legs) > 1:
            self.sharding_stats.cross_shard_commits += 1
        self._wake_finish_waiters()

    def _abort_global(
        self,
        session: GlobalSession,
        reason: str,
        *,
        forced: bool = True,
        exc: Optional[ServiceError] = None,
    ) -> None:
        """Tear a global session down: every live leg, then bookkeeping."""
        if not session.state.live:
            return
        session.state = SessionState.ABORTED
        session.abort_reason = reason
        self._live.pop(session, None)
        failure = exc or TransactionAborted(f"{session.name}: {reason}")
        for shard_id, leg in session.legs.items():
            if leg.state.live:
                self.shards[shard_id].force_abort(leg, reason, exc=failure)
            self._job_sessions.pop(leg.job, None)
        self._outcomes.append(("abort", session.name, self.now()))
        self.stats.record_abort(session.priority, forced=forced)
        self._wake_finish_waiters()

    # ------------------------------------------------------------------
    # Sweep: cascades and cross-shard deadlock detection
    # ------------------------------------------------------------------
    def _cascade_session(self, session: GlobalSession) -> None:
        """Kill ``session`` globally if any of its legs was *aborted*
        shard-side.

        Only ABORTED counts as dead here: during a commit there is an
        instant where a leg is already COMMITTED while the global
        session is still live — that is the commit path's own business,
        not a cascade.
        """
        if not session.state.live:
            return
        dead = next(
            (leg for leg in session.legs.values()
             if leg.state is SessionState.ABORTED),
            None,
        )
        if dead is not None:
            self.sharding_stats.cascade_aborts += 1
            self._abort_global(
                session,
                f"shard:{dead.abort_reason or 'abort'}",
                forced=True,
            )

    def _cascade_dead(self) -> None:
        """Cascade every live session that lost a leg shard-side.

        A shard may abort a leg with no coordinator frame on the stack —
        a 2PL-HP victim displaced by a higher-priority writer, an OCC
        broadcast abort at a neighbour's commit, a shard deadlock
        victim.  The global session must follow, so sibling legs release
        their locks and subsequent client operations see the abort
        rather than a half-dead transaction.
        """
        for session in list(self._live):
            self._cascade_session(session)

    def _sweep(self) -> None:
        """Periodic watchdog body (runs while anything is parked).

        1. Cascade: a leg aborted shard-side (deadlock victim, OCC
           validation) without the coordinator on the call stack kills
           its global session, so sibling legs release their locks.
        2. Cross-shard deadlock detection (see module docstring).
        """
        self._cascade_dead()
        self._check_global_deadlock()

    def _check_global_deadlock(self) -> None:
        """Find and resolve wait cycles spanning shards or the coordinator.

        Builds a session-level wait graph from every shard's wait-for
        edges plus the coordinator's parked gate/guard waits, each edge
        tagged with its sources.  A cycle whose edges are all
        attributable to one single shard is left to that shard's own
        detector (identical rules to the unsharded manager); any other
        cycle exists only because of partitioning, so it is resolved by
        aborting the lowest-base-priority member — the same policy the
        unsharded manager applies to service-level cycles.
        """
        edges: Dict[GlobalSession, Dict[GlobalSession, Set[Any]]] = {}
        for index, shard in enumerate(self.shards):
            for waiter_job in shard.waits.waiters():
                waiter = self._job_sessions.get(waiter_job)
                if waiter is None or not waiter.state.live:
                    continue
                for blocker_job in shard.waits.blockers_of(waiter_job):
                    blocker = self._job_sessions.get(blocker_job)
                    if (
                        blocker is None or blocker is waiter
                        or not blocker.state.live
                    ):
                        continue
                    edges.setdefault(waiter, {}).setdefault(
                        blocker, set()
                    ).add(index)
        for waiter, wait in self._coord_waits.items():
            if not waiter.state.live:
                continue
            for blocker in wait.blockers:
                if blocker.state.live and blocker is not waiter:
                    edges.setdefault(waiter, {}).setdefault(
                        blocker, set()
                    ).add("coordinator")
        cycle = self._find_cycle(edges)
        if cycle is None:
            return
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        for index in range(len(self.shards)):
            if all(index in edges[a][b] for a, b in pairs):
                return  # purely shard-local: that shard's own business
        self.sharding_stats.cross_shard_deadlocks += 1
        names = " -> ".join(s.name for s in cycle)
        victim = min(cycle, key=lambda s: (s.priority, -s.id))
        self._abort_global(
            victim, "deadlock", forced=True,
            exc=TransactionAborted(
                f"{victim.name} chosen as cross-shard deadlock victim "
                f"({names})"
            ),
        )

    @staticmethod
    def _find_cycle(
        edges: Dict[GlobalSession, Dict[GlobalSession, Set[Any]]]
    ) -> Optional[List[GlobalSession]]:
        """One cycle in the session wait graph, or ``None`` (iterative DFS)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[GlobalSession, int] = {}
        for root in sorted(edges, key=lambda s: s.id):
            if color.get(root, WHITE) is not WHITE:
                continue
            path: List[GlobalSession] = []
            stack: List[Tuple[GlobalSession, bool]] = [(root, False)]
            while stack:
                node, done = stack.pop()
                if done:
                    color[node] = BLACK
                    path.pop()
                    continue
                state = color.get(node, WHITE)
                if state is BLACK:
                    continue
                if state is GRAY:
                    continue
                color[node] = GRAY
                path.append(node)
                stack.append((node, True))
                for target in sorted(
                    edges.get(node, ()), key=lambda s: s.id
                ):
                    target_state = color.get(target, WHITE)
                    if target_state is GRAY:
                        start = path.index(target)
                        return path[start:]
                    if target_state is WHITE:
                        stack.append((target, False))
        return None
