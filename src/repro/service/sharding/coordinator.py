"""The shard coordinator: routing, span tracking, and the global gate.

A :class:`ShardedLockManager` owns N fully independent
:class:`~repro.service.manager.LockManager` shards — each with its own
lock table, wait-for graph, protocol instance (so ceilings and
inheritance are *per shard*, DPCP-p-style), database partition, and
history — plus the coordinator state that stitches them back into one
serializable service:

* **Routing.**  A :class:`~repro.service.sharding.partitioner.Partitioner`
  maps every item id to its owning shard; ``read``/``write`` forward to a
  lazily-opened *leg* session there.  All legs of one global session
  share the same pinned instance number, so every shard knows the
  transaction by the same name (``"T2#7"``) and the merged history is
  coherent.
* **Shard-span.**  Access sets are static (ceilings require it), so the
  span — the set of shards a session may touch — is known at ``begin``.
  Single-shard ("local") sessions take the fast path: their commit is
  delegated wholesale to the home shard, whose local commit gate is
  provably sufficient (every direct ≺-constraint involving a session is
  recorded on a shard where it holds locks, i.e. its home).  Multi-shard
  ("global") sessions pay for coordination.
* **Global commit gate.**  Before a cross-shard commit installs
  anything, the coordinator parks the committer until every live
  predecessor on the merged, session-level constraint graph has
  finished.  The graph is maintained *incrementally*: every shard
  publishes churn notifications (``LockManager.churn_listeners``), and
  an LC3/LC4 constraint record adds a session-level edge the moment the
  shard records it, while a global terminal removes the session's node —
  no per-wait rebuild over the shard ``_pred`` registries.  The install
  loop that follows contains no ``await`` until the last shard's install
  lands — per-shard local gates are empty by then (their constraints are
  a subset of the merged ones), so a multi-shard commit is atomic on the
  event loop and no concurrent reader can observe a partially-installed
  transaction.
* **Global order guard.**  A read is held back while any live
  *transitive* predecessor on the merged graph — beyond those the owning
  shard can see locally — declares the item in its write set.  On a
  1-shard deployment the remote remainder is empty by construction, so
  the sharded service is decision-equivalent to the unsharded manager
  (the differential battery in ``tests/test_sharding_equivalence.py``
  pins this).
* **Cross-shard deadlock detection.**  Shard-local cycles are the
  shard's own business (same rules as the unsharded manager), but a
  cycle may close *across* shards — through coordinator gate/guard waits
  or through lock waits on two different shards (the per-shard ceilings
  cannot see each other, so the paper's deadlock-freedom theorem does
  not survive partitioning; ``docs/SHARDING.md`` discusses this
  honestly).  A cycle needs a *new* wait edge to close, so the check is
  event-driven: shard ``"wait"`` notifications and coordinator parks
  schedule one coalesced detection pass per event-loop tick, which
  builds the session-level union of all shard wait-for graphs plus the
  coordinator waits and resolves any cycle not attributable to a single
  shard by aborting its lowest-priority member.

Everything the old polling watchdog did is now notification-driven:
shard-side leg aborts cascade to their global session synchronously
from the shard's ``"abort"`` churn event, predecessor terminals wake
exactly the gate/guard waiters indexed on them, and deadlines are
enforced as wait timeouts.  A long-period failsafe re-check (the
remnant of ``sweep_interval_s``) backstops lost notifications but does
no steady-state work.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.engine.job import Job
from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    ServiceError,
    SessionStateError,
    SpecificationError,
    TransactionAborted,
)
from repro.model.spec import TaskSet, TransactionSpec
from repro.service.manager import (
    LockManager,
    ServiceConfig,
    Session,
    SessionState,
)
from repro.service.sharding.partitioner import Partitioner, make_partitioner
from repro.service.stats import ServiceStats, ShardingStats

#: History-row sort rank: reads before installs before outcomes at equal
#: timestamps.  Serialization-graph edges depend only on per-item version
#: sequence numbers, so this rank only keeps the merged log readable.
_HISTORY_RANK = {"read": 0, "install": 1, "commit": 2, "abort": 2}


class GlobalSession:
    """One live transaction as the coordinator sees it.

    The coordinator-side twin of :class:`~repro.service.manager.Session`:
    it has no job of its own — instead it owns one *leg* session per
    touched shard, all running under the same pinned instance name.
    """

    __slots__ = ("id", "spec", "instance", "state", "deadline", "opened_at",
                 "abort_reason", "legs", "span", "in_flight")

    def __init__(self, session_id: int, spec: TransactionSpec, instance: int,
                 opened_at: float) -> None:
        self.id = session_id
        self.spec = spec
        self.instance = instance
        self.state = SessionState.ACTIVE
        #: Absolute deadline on the service clock (coordinator-enforced;
        #: legs run deadline-free so no shard can half-abort a commit).
        self.deadline: Optional[float] = None
        self.opened_at = opened_at
        self.abort_reason = ""
        #: shard id -> leg session, opened lazily on first touch.
        self.legs: Dict[int, Session] = {}
        #: Shards the declared access set may touch (static, see begin).
        self.span: FrozenSet[int] = frozenset()
        #: One in-flight operation per session, coordinator-enforced.
        self.in_flight = False

    @property
    def name(self) -> str:
        """The instance name every leg shares (``"T2#7"``)."""
        return f"{self.spec.name}#{self.instance}"

    @property
    def priority(self) -> int:
        """The transaction type's base priority."""
        return self.spec.priority

    @property
    def scope(self) -> str:
        """``"local"`` (single-shard span, fast path) or ``"global"``."""
        return "local" if len(self.span) <= 1 else "global"


@dataclass
class _CoordWait:
    """One parked coordinator-level wait (gate or guard): deadlock
    edges, introspection, and the future a blocker's terminal fires."""

    kind: str
    blockers: Tuple[GlobalSession, ...]
    future: "asyncio.Future[None]"


class ShardedLockManager:
    """Partitioned lock-manager service behind the unsharded interface.

    Exposes the same surface as :class:`LockManager` (``begin`` /
    ``read`` / ``write`` / ``commit`` / ``abort`` / ``shutdown`` plus the
    introspection documents), so the wire layer, the TCP server, and the
    load generator drive it unchanged.

    Args:
        catalog: the registered transaction types (shared by all shards —
            ceilings are static information, and a shard computes its
            ceilings only from the locks it actually sees).
        protocol: a protocol *name*; each shard builds its own instance
            (protocol objects hold per-shard lock-table bindings, so a
            shared instance cannot be correct).
        config: coordinator-level :class:`ServiceConfig`; admission
            control and default deadlines apply globally, while
            ``record_sysceil`` / ``honor_early_release`` /
            ``deadlock_action`` are forwarded to every shard.
        shards: number of partitions (>= 1).
        partitioner: scheme name (``"hash"`` / ``"range"``) or a prebuilt
            :class:`Partitioner`.
        sweep_interval_s: period of the *failsafe* re-check run by parked
            waiters (cascade of shard-side aborts + cross-shard deadlock
            check).  All steady-state progress is notification-driven;
            the failsafe only backstops lost wake-ups, so its period is
            floored at one second regardless of this value.
    """

    def __init__(
        self,
        catalog: TaskSet,
        protocol: str = "pcp-da",
        config: Optional[ServiceConfig] = None,
        *,
        shards: int = 2,
        partitioner: Union[str, Partitioner] = "hash",
        sweep_interval_s: float = 0.05,
        shard_managers: Optional[Sequence[Any]] = None,
    ) -> None:
        if not isinstance(protocol, str):
            raise SpecificationError(
                "ShardedLockManager needs a protocol *name*: every shard "
                "builds its own instance (protocol objects bind one lock "
                "table)"
            )
        if sweep_interval_s <= 0:
            raise SpecificationError("sweep_interval_s must be positive")
        self.catalog = catalog
        self.config = config or ServiceConfig()
        items = sorted(catalog.items)
        if isinstance(partitioner, str):
            partitioner = make_partitioner(partitioner, shards, items)
        elif partitioner.shards != shards:
            raise SpecificationError(
                f"partitioner covers {partitioner.shards} shard(s), "
                f"manager has {shards}"
            )
        self.partitioner = partitioner
        #: item -> shard, precomputed for every catalog item: routing sits
        #: on the per-operation hot path and the mapping is static.
        self._shard_of: Dict[str, int] = {
            item: partitioner.shard_of(item) for item in items
        }
        #: transaction name -> shard span; static by the same argument
        #: that makes the ceilings static (declared access sets).
        self._span_cache: Dict[str, FrozenSet[int]] = {}
        shard_config = ServiceConfig(
            deadlock_action=self.config.deadlock_action,
            record_sysceil=self.config.record_sysceil,
            honor_early_release=self.config.honor_early_release,
        )
        if shard_managers is not None:
            # Injected shard surfaces — RemoteShardProxy instances for a
            # multi-process deployment, or pre-built managers in tests.
            if len(shard_managers) != shards:
                raise SpecificationError(
                    f"{len(shard_managers)} shard manager(s) injected, "
                    f"deployment declares {shards}"
                )
            self.shards = tuple(shard_managers)
        else:
            self.shards = tuple(
                LockManager(catalog, protocol, shard_config)
                for _ in range(shards)
            )
        #: True when any shard lives behind a process boundary: flips
        #: ``stats_document`` / ``history_events`` to the async fetch
        #: path (the wire layer awaits either shape).
        self._remote = any(
            getattr(shard, "is_remote", False) for shard in self.shards
        )
        # One service clock for the whole deployment: merged histories
        # and latency figures must be comparable across shards.  A
        # supervisor overrides ``_t0`` afterwards with the epoch it
        # already handed the shard-host processes.
        self._t0 = time.monotonic()
        for shard in self.shards:
            shard._t0 = self._t0
        self.stats = ServiceStats()
        self.sharding_stats = ShardingStats()
        self._sweep_interval = sweep_interval_s
        #: Failsafe period for parked waiters: the event-driven design
        #: needs no timer for progress, so the re-check runs rarely.
        self._failsafe_interval = max(sweep_interval_s, 1.0)

        self._sessions: Dict[int, GlobalSession] = {}
        self._live: Dict[GlobalSession, None] = {}  # insertion-ordered set
        #: leg job -> owning global session (constraint/wait translation).
        self._job_sessions: Dict[Job, GlobalSession] = {}
        #: Parked coordinator-level waits (commit gate / order guard).
        self._coord_waits: Dict[GlobalSession, _CoordWait] = {}
        #: blocker session -> waiters parked on it (terminal wake index).
        self._wake_index: Dict[GlobalSession, Set[GlobalSession]] = {}
        #: The incrementally maintained session-level constraint graph,
        #: mirrored from shard LC3/LC4 records via churn notifications:
        #: _gpred[w] = {s: s ≺ w}, _gsucc[s] = {w: s ≺ w}.  A session's
        #: node is dropped wholesale at its global terminal — exactly
        #: when its legs' shard-side edges are dropped.
        self._gpred: Dict[GlobalSession, Set[GlobalSession]] = {}
        self._gsucc: Dict[GlobalSession, Set[GlobalSession]] = {}
        #: Memoized transitive closures over ``_gpred``, dirtied
        #: wholesale on any graph edit.
        self._gpred_cache: Dict[GlobalSession, Set[GlobalSession]] = {}
        #: Coalescing flag: at most one deadlock pass per loop tick.
        self._deadlock_check_scheduled = False
        #: (kind, instance name, time) terminal rows for the merged history.
        self._outcomes: List[Tuple[str, str, float]] = []
        self._instances: Dict[str, int] = {}
        self._next_session_id = 0
        self._closed = False
        #: Registered decision listeners, kept so a replacement shard
        #: (crash restart) can be re-subscribed to all of them.
        self._decision_listeners: List[Callable] = []
        for index, shard in enumerate(self.shards):
            self._attach_shard_listeners(index, shard)

    def _attach_shard_listeners(self, index: int, shard: Any) -> None:
        """Subscribe the coordinator to one shard's churn stream."""
        shard.churn_listeners.append(
            lambda kind, job, other, _shard=index: self._on_shard_churn(
                _shard, kind, job, other
            )
        )

    # ------------------------------------------------------------------
    # Clock and identity
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the deployment started (shared service clock)."""
        return time.monotonic() - self._t0

    def _route(self, item: str) -> int:
        """Owning shard of ``item`` (memoized over the partitioner)."""
        shard = self._shard_of.get(item)
        if shard is None:
            shard = self.partitioner.shard_of(item)
            self._shard_of[item] = shard
        return shard

    @property
    def protocol(self):
        """The protocol instance of shard 0 (all shards run the same one)."""
        return self.shards[0].protocol

    @property
    def shard_count(self) -> int:
        """Number of partitions in this deployment."""
        return len(self.shards)

    def add_decision_listener(self, listener) -> None:
        """Subscribe ``listener`` to every shard's lock decisions.

        The callback receives each :class:`repro.trace.recorder.LockEvent`
        at the moment a shard records it, so a single listener observes
        the deployment-wide decision sequence in true global order —
        per-shard traces alone cannot reconstruct the interleaving.  Used
        by the parity harness (:mod:`repro.verify.parity`).
        """
        self._decision_listeners.append(listener)
        for shard in self.shards:
            shard.decision_listeners.append(listener)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    async def begin(
        self, transaction: str, *, deadline_s: Optional[float] = None
    ) -> GlobalSession:
        """Open a global session for one instance of ``transaction``.

        The shard-span is computed here, from the declared access set —
        it is static by the same argument that makes ceilings static.
        No leg is opened yet; the first touch of a shard opens one.
        """
        self._ensure_open()
        spec = self.catalog[transaction]
        limit = self.config.max_sessions
        if limit is not None and len(self._live) >= limit:
            self.stats.sessions_rejected += 1
            raise AdmissionError(
                f"session limit reached ({limit} live sessions); retry later"
            )
        now = self.now()
        instance = self._instances.get(transaction, 0)
        self._instances[transaction] = instance + 1
        session = GlobalSession(self._next_session_id, spec, instance, now)
        self._next_session_id += 1
        relative = (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        if relative is not None:
            session.deadline = now + relative
        span = self._span_cache.get(transaction)
        if span is None:
            span = frozenset(self._route(item) for item in spec.access_set)
            self._span_cache[transaction] = span
        session.span = span
        self._sessions[session.id] = session
        self._live[session] = None
        self.stats.sessions_started += 1
        if session.scope == "local":
            self.sharding_stats.local_sessions += 1
        else:
            self.sharding_stats.cross_shard_sessions += 1
        return session

    def session(self, session_id: int) -> GlobalSession:
        """Look up a global session by id (for the wire layer)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionStateError(f"unknown session {session_id}") from None

    async def read(self, session: GlobalSession, item: str) -> Any:
        """Read ``item`` through the owning shard's leg.

        The merged-graph order guard runs first: predecessors the owning
        shard cannot see locally (they hold no constraint edge there)
        must finish before this read may observe the item they will
        write.  The shard's own guard then covers the local remainder.
        """
        self._pre_op(session)
        shard_id = self._route(item)
        session.in_flight = True
        try:
            await self._await_remote(
                session, "order guard",
                lambda: self._remote_guard_blockers(session, shard_id, item),
            )
            leg = await self._ensure_leg(session, shard_id)
            return await self._forward(
                session, self.shards[shard_id].read(leg, item)
            )
        finally:
            session.in_flight = False

    async def write(self, session: GlobalSession, item: str, value: Any) -> None:
        """Buffer a deferred write on the owning shard's leg."""
        self._pre_op(session)
        shard_id = self._route(item)
        session.in_flight = True
        try:
            leg = await self._ensure_leg(session, shard_id)
            await self._forward(
                session, self.shards[shard_id].write(leg, item, value)
            )
        finally:
            session.in_flight = False

    async def commit(self, session: GlobalSession) -> Dict[str, Any]:
        """Commit across every touched shard; returns the merged summary.

        Single-leg sessions delegate to their home shard (the local gate
        is sufficient — every direct constraint involving this session
        lives where it holds locks).  Cross-shard sessions park at the
        global gate until the merged predecessor set drains, then install
        leg by leg with no intervening ``await`` — atomic on the loop.
        """
        self._pre_op(session)
        session.in_flight = True
        try:
            legs = {k: session.legs[k] for k in sorted(session.legs)}
            if len(legs) <= 1:
                if legs:
                    ((shard_id, leg),) = legs.items()
                    summary = await self._forward(
                        session, self.shards[shard_id].commit(leg)
                    )
                else:
                    summary = {"installed": [], "blocking_s": 0.0}
                now = self.now()
                self._finish_global(session, now)
                summary["latency_s"] = now - session.opened_at
                summary["shards"] = list(legs)
                return summary

            while True:
                await self._await_remote(
                    session, "commit gate",
                    lambda: self._gate_blockers(session),
                )
                if await self._prepare_legs(session, legs):
                    break
            # Install section.  In-process there is no await between the
            # gate check and the last install — each leg commit's local
            # gate is empty (its constraints are a subset of the merged
            # set just drained), so awaiting it never yields to the
            # loop.  Over the wire each leg commit is a round-trip, and
            # atomicity comes from the fences instead: every leg is
            # fenced, so no reader can pass a write lock and record a
            # new ``reader ≺ committer`` constraint between the installs
            # (write conflicts were already held off by the locks).
            installed: List[str] = []
            blocking = 0.0
            deferred_cancel: List[BaseException] = []
            try:
                for shard_id, leg in legs.items():
                    summary = await self._install_leg(
                        self.shards[shard_id].commit(leg), deferred_cancel
                    )
                    installed.extend(summary["installed"])
                    blocking += summary["blocking_s"]
            except BaseException as exc:
                # In-process this is unreachable by construction (legs
                # are ACTIVE and their gates empty); remotely a shard
                # host can die mid-install.  Either way, fail loudly but
                # do not leave sibling legs holding locks.
                if session.state.live:
                    self._abort_global(
                        session, f"commit failure: {exc}", forced=True
                    )
                raise
            now = self.now()
            self._finish_global(session, now)
            if deferred_cancel:
                # The client went away mid-install; the commit point had
                # passed, so the installs ran to completion first.
                raise deferred_cancel[0]
            # OCC-style installs may have broadcast-aborted other
            # sessions' legs; those cascaded synchronously from the
            # shards' "abort" notifications inside the install loop, so
            # the atomic section stayed atomic with no extra scan here.
            return {
                "installed": sorted(installed),
                "latency_s": now - session.opened_at,
                "blocking_s": blocking,
                "shards": list(legs),
            }
        finally:
            session.in_flight = False

    async def _prepare_legs(
        self, session: GlobalSession, legs: Dict[int, Session]
    ) -> bool:
        """Fence every leg for install; True when the gate stayed empty.

        In-process, :meth:`LockManager.prepare_commit` is synchronous,
        so this adds only inert state flips inside the atomic section.
        Over the wire each fence is a round-trip, and a reader may have
        slipped past a write lock (recording a new ``reader ≺
        committer`` constraint) before its shard's fence landed — but
        any such constraint frame travelled the same connection *before*
        the fence acknowledgement, so by the time every prepare has
        resolved the merged graph is complete: re-checking the gate here
        is sound.  Non-empty means back off (drop the fences, park at
        the gate again); the parked readers re-pass the write locks as
        if the fences never existed.
        """
        prepared: List[Tuple[int, Session]] = []
        try:
            for shard_id, leg in legs.items():
                result = self.shards[shard_id].prepare_commit(leg)
                if asyncio.iscoroutine(result):
                    await self._forward(session, result)
                prepared.append((shard_id, leg))
        except BaseException:
            self._unprepare_legs(prepared)
            raise
        if not self._gate_blockers(session):
            return True
        self._unprepare_legs(prepared)
        return False

    def _unprepare_legs(self, prepared: List[Tuple[int, Session]]) -> None:
        """Drop the fences of still-live legs (sync both ways: the proxy
        posts fire-and-forget)."""
        for shard_id, leg in prepared:
            if leg.state.live:
                self.shards[shard_id].unprepare_commit(leg)

    async def _install_leg(
        self, coro, deferred_cancel: List[BaseException]
    ) -> Any:
        """Run one leg commit to completion, deferring cancellation.

        Past the commit point (every leg fenced, gate empty) a client
        cancellation must not split the install across shards: the leg
        commit runs shielded to completion and the cancellation is
        collected for the caller to re-raise after the last install.
        In-process the coroutine completes on the eager first step, so
        this is exactly the old ``await shard.commit(leg)``.
        """
        try:
            first = coro.send(None)
        except StopIteration as stop:
            return stop.value
        task = asyncio.ensure_future(self._settle(coro, first))
        while True:
            try:
                return await asyncio.shield(task)
            except asyncio.CancelledError as exc:
                if task.cancelled():
                    raise
                deferred_cancel.append(exc)

    async def abort(self, session: GlobalSession, reason: str = "client") -> None:
        """Client-requested abort: tear down every leg, discard buffers."""
        if not session.state.live:
            raise SessionStateError(
                f"{session.name}: cannot abort a {session.state.value} session"
            )
        if session.in_flight or session.state is SessionState.WAITING:
            raise SessionStateError(
                f"{session.name}: another operation is waiting for a lock"
            )
        self._abort_global(session, reason, forced=False)

    async def shutdown(self) -> None:
        """Abort every live session, shut every shard down, refuse new work."""
        if self._closed:
            return
        self._closed = True
        for session in list(self._live):
            self._abort_global(
                session, "shutdown", forced=True,
                exc=TransactionAborted("service shutting down"),
            )
        for shard in self.shards:
            await shard.shutdown()

    # ------------------------------------------------------------------
    # Shard-process failure (supervisor hooks)
    # ------------------------------------------------------------------
    def on_shard_lost(self, shard_id: int, reason: str) -> None:
        """A shard process died: abort every session touching it.

        The supervisor calls this when a shard-host exits unexpectedly.
        Any transaction with a leg on the dead shard — or whose declared
        span includes it, so a future operation would route there — is
        aborted; its legs on *surviving* shards release their locks
        normally.  Mirror legs on the dead shard are flipped terminally
        first so the global abort does not try to RPC a corpse.
        """
        dead = self.shards[shard_id]
        drop = getattr(dead, "mark_lost", None)
        if drop is not None:
            drop(reason)
        failure = TransactionAborted(
            f"shard {shard_id} lost: {reason}"
        )
        for session in list(self._live):
            touches = (
                shard_id in session.legs or shard_id in session.span
            )
            if not touches:
                continue
            self.sharding_stats.cascade_aborts += 1
            self._abort_global(
                session, f"shard {shard_id} lost: {reason}",
                forced=True, exc=failure,
            )

    def replace_shard(self, shard_id: int, shard: Any) -> None:
        """Swap in a restarted shard (supervisor crash-restart policy).

        ``on_shard_lost`` must already have run for ``shard_id`` — the
        new shard starts empty, so no live session may still reference
        the old one.  The replacement joins the shared service clock and
        is re-subscribed to churn and every registered decision listener.
        """
        shards = list(self.shards)
        shards[shard_id] = shard
        self.shards = tuple(shards)
        shard._t0 = self._t0
        self._attach_shard_listeners(shard_id, shard)
        for listener in self._decision_listeners:
            shard.decision_listeners.append(listener)
        self._remote = any(
            getattr(s, "is_remote", False) for s in self.shards
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_sessions(self) -> Tuple[GlobalSession, ...]:
        """Currently live global sessions, oldest first."""
        return tuple(self._live)

    def stats_document(self) -> Dict[str, Any]:
        """The ``stats`` payload: merged shard stats + coordinator view.

        Lock-level signals (grants, denials, waits, priority bands) are
        the union of the shards; session-level scalars (sessions,
        commits, aborts, end-to-end commit latency) come from the
        coordinator, which is the only place a cross-shard transaction
        counts once.  ``shards`` carries one summary entry per shard
        (including its latency histograms) and ``coordinator`` the
        sharding counters — both ignored by
        :meth:`ServiceStats.from_dict`, so unsharded consumers read the
        document unchanged.

        With remote shards this returns a *coroutine* (the shard
        documents are wire fetches); the wire layer awaits either shape,
        and in-process embedders keep the synchronous contract.
        """
        if self._remote:
            return self._stats_document_remote()
        return self._assemble_stats(
            [shard.stats for shard in self.shards],
            shard_waiting=sum(len(shard._waiters) for shard in self.shards),
            ceilings=[shard.system_ceiling() for shard in self.shards],
        )

    async def _stats_document_remote(self) -> Dict[str, Any]:
        """Fetch per-host stats documents and assemble the merged view."""
        docs = await asyncio.gather(
            *(shard.fetch_stats_document() for shard in self.shards)
        )
        doc = self._assemble_stats(
            [ServiceStats.from_dict(shard_doc) for shard_doc in docs],
            shard_waiting=sum(
                shard_doc.get("waiting_sessions", 0) for shard_doc in docs
            ),
            ceilings=[shard_doc.get("system_ceiling") for shard_doc in docs],
        )
        doc["shard_procs"] = len(self.shards)
        doc["deployment"] = "multiprocess"
        return doc

    def _assemble_stats(
        self,
        shard_stats: List[ServiceStats],
        *,
        shard_waiting: int,
        ceilings: List[Optional[int]],
    ) -> Dict[str, Any]:
        merged = ServiceStats()
        for stats in shard_stats:
            merged.merge(stats)
        # Coordinator gate/guard parks are deliberately NOT merged into
        # lock_wait: they live in their own histograms on the
        # ``coordinator`` entry (ShardingStats.gate_wait / guard_wait),
        # so shard lock waits stay attributable.
        doc = merged.to_dict()
        for scalar in (
            "sessions_started", "sessions_rejected", "commits",
            "client_aborts", "forced_aborts", "deadline_aborts", "requests",
        ):
            doc[scalar] = getattr(self.stats, scalar)
        doc["commit_latency"] = self.stats.commit_latency.to_dict()
        doc["protocol"] = self.protocol.name
        doc["uptime_s"] = self.now()
        doc["live_sessions"] = len(self._live)
        doc["waiting_sessions"] = shard_waiting + len(self._coord_waits)
        known = [c for c in ceilings if c is not None]
        doc["system_ceiling"] = max(known) if known else None
        assignment = self.partitioner.assignment(self.catalog.items)
        doc["shard_count"] = self.shard_count
        doc["partitioner"] = self.partitioner.name
        doc["shards"] = [
            {
                "shard": index,
                "items": len(assignment[index]),
                "sessions": stats.sessions_started,
                "grants": stats.grants,
                "denials": stats.denials,
                "commits": stats.commits,
                "forced_aborts": stats.forced_aborts,
                "deadlocks": stats.deadlocks,
                "commit_latency": stats.commit_latency.to_dict(),
                "lock_wait": stats.lock_wait.to_dict(),
            }
            for index, stats in enumerate(shard_stats)
        ]
        doc["coordinator"] = self.sharding_stats.to_dict()
        return doc

    def topology_document(self) -> Dict[str, Any]:
        """The ``topology`` payload: partitioning scheme and assignment."""
        assignment = self.partitioner.assignment(self.catalog.items)
        return {
            "shards": self.shard_count,
            "partitioner": self.partitioner.name,
            "scheme": self.partitioner.describe(),
            "assignment": {
                str(shard): items for shard, items in assignment.items()
            },
        }

    def history_events(self) -> List[Dict[str, Any]]:
        """The merged observable history as JSON-friendly rows.

        Data rows (reads, installs) come from the shard that executed
        them; terminal rows (commit, abort) come from the coordinator's
        outcome log — exactly one per global session, replacing the
        per-leg terminals each shard recorded.  Rows are ordered by
        service-clock time (one clock for all shards); the
        serializability oracle depends only on per-item version
        sequences, which shard-disjoint item spaces keep consistent, so
        the merged log replays through ``check_serializable`` unchanged.

        With remote shards this returns a *coroutine* (the per-host rows
        are wire fetches); the wire layer awaits either shape.
        """
        if self._remote:
            return self._history_events_remote()
        data_rows = [
            {
                "kind": event.kind.value,
                "job": event.job,
                "item": event.item,
                "version_seq": event.version_seq,
                "time": event.time,
            }
            for shard in self.shards
            for event in shard.history
        ]
        return self._assemble_history(data_rows)

    async def _history_events_remote(self) -> List[Dict[str, Any]]:
        """Fetch each host's history rows and assemble the merged view."""
        fetched = await asyncio.gather(
            *(shard.fetch_history_events() for shard in self.shards)
        )
        return self._assemble_history(
            [row for rows in fetched for row in rows]
        )

    def _assemble_history(
        self, data_rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        rows: List[Tuple[float, int, Dict[str, Any]]] = []
        for row in data_rows:
            kind = row["kind"]
            if kind not in ("read", "install"):
                continue  # per-leg terminals: superseded globally
            rows.append((row["time"], _HISTORY_RANK[kind], {
                "kind": kind,
                "job": row["job"],
                "item": row["item"],
                "version_seq": row["version_seq"],
                "time": row["time"],
            }))
        for kind, name, when in self._outcomes:
            rows.append((when, _HISTORY_RANK[kind], {
                "kind": kind,
                "job": name,
                "item": None,
                "version_seq": None,
                "time": when,
            }))
        rows.sort(key=lambda entry: (entry[0], entry[1]))
        return [row for _, _, row in rows]

    def catalog_document(self) -> List[Dict[str, Any]]:
        """The registered transaction types (identical on every shard)."""
        return self.shards[0].catalog_document()

    # ------------------------------------------------------------------
    # Operation plumbing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("lock manager is shut down")

    def _pre_op(self, session: GlobalSession) -> None:
        """Shared entry checks: liveness, one-in-flight, deadline."""
        self._ensure_open()
        if session.in_flight or session.state is SessionState.WAITING:
            raise SessionStateError(
                f"{session.name}: a previous operation is still waiting "
                "for a lock (one in-flight operation per session)"
            )
        if not session.state.live:
            raise SessionStateError(
                f"{session.name}: session already {session.state.value}"
            )
        # A leg abort cascades synchronously from the shard's "abort"
        # notification, so a live global session with a dead leg should
        # be unobservable; keep the check as a cheap belt-and-braces
        # mirror of the unsharded manager's synchronous state flip.
        self._cascade_session(session)
        if not session.state.live:
            raise TransactionAborted(
                f"{session.name}: {session.abort_reason or 'aborted'}"
            )
        if session.deadline is not None and self.now() > session.deadline:
            self.stats.deadline_aborts += 1
            self._abort_global(session, "deadline", forced=True)
            raise DeadlineExceeded(
                f"{session.name}: deadline passed before the operation"
            )

    async def _ensure_leg(
        self, session: GlobalSession, shard_id: int
    ) -> Session:
        """The session's leg on ``shard_id``, opened on first touch.

        ``LockManager.begin`` never awaits internally, so awaiting it
        here runs it to completion without yielding to the loop — leg
        creation is atomic with the operation that needed it.  Legs run
        uncapped and deadline-free: admission and deadlines are
        coordinator concerns.
        """
        leg = session.legs.get(shard_id)
        if leg is not None:
            if not leg.state.live:
                # The leg died while this operation was parked at the
                # coordinator (guard/gate): the whole transaction is gone.
                self._cascade_session(session)
                raise TransactionAborted(
                    f"{session.name}: leg on shard {shard_id} already "
                    f"{leg.state.value} ({leg.abort_reason or 'aborted'})"
                )
            return leg
        shard = self.shards[shard_id]
        leg = await shard.begin(session.spec.name, instance=session.instance)
        # Tie-breakers (grant-queue FIFO, victim choice) must follow the
        # *global* begin order, not the lazy leg-creation order, or two
        # equal-priority sessions could be served in a different order
        # than the unsharded manager would serve them.  ``seq`` is used
        # purely as a deterministic tie-break, and this leg's job is in
        # no queue yet, so the override is safe.
        leg.job.seq = session.id
        pin = getattr(shard, "pin_leg_seq", None)
        if pin is not None:
            # Remote shard: the override above touched only the local
            # mirror job; the proxy forwards it to the host (same-stream
            # FIFO lands it before the leg's first lock request).
            pin(leg, session.id)
        session.legs[shard_id] = leg
        self._job_sessions[leg.job] = session
        return leg

    # ------------------------------------------------------------------
    # Shard churn notifications (the event-driven core)
    # ------------------------------------------------------------------
    def _on_shard_churn(
        self, shard_id: int, kind: str, job: Job, other: Optional[Job]
    ) -> None:
        """One shard's synchronous churn callback.

        * ``"constraint"`` — the shard recorded ``job ≺ other`` (an
          LC3/LC4 read passed a write lock): mirror the edge on the
          session-level graph, the incremental replacement for rebuilding
          the merged registries at every gate/guard evaluation.
        * ``"abort"`` — a leg died shard-side (deadlock victim, 2PL-HP
          displacement, OCC broadcast): cascade to its global session
          *now*, synchronously, exactly as the unsharded manager flips
          such sessions' states inside the operation.  This replaces the
          polling cascade sweep.
        * ``"wait"`` — a wait edge was created or re-pointed: a cross-
          shard cycle can only close here, so schedule one coalesced
          deadlock pass.
        """
        if kind == "constraint":
            reader = self._job_sessions.get(job)
            writer = self._job_sessions.get(other)
            if reader is None or writer is None or reader is writer:
                return
            succs = self._gsucc.setdefault(reader, set())
            if writer in succs:
                return
            succs.add(writer)
            self._gpred.setdefault(writer, set()).add(reader)
            if self._gpred_cache:
                self._gpred_cache.clear()
        elif kind == "abort":
            session = self._job_sessions.get(job)
            if session is not None and session.state.live:
                self._cascade_session(session)
        elif kind == "wait":
            self._schedule_deadlock_check()

    def _schedule_deadlock_check(self) -> None:
        """Coalesce deadlock detection to one pass per event-loop tick.

        Every new wait edge schedules a pass; concurrent edges within
        one tick share it.  A 1-shard deployment skips entirely: no
        coordinator wait ever parks there and cross-shard cycles cannot
        exist, so the shard's own detector is complete.
        """
        if (
            self._deadlock_check_scheduled
            or self._closed
            or len(self.shards) == 1
        ):
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self._check_global_deadlock()
            return
        self._deadlock_check_scheduled = True
        loop.call_soon(self._run_deadlock_check)

    def _run_deadlock_check(self) -> None:
        self._deadlock_check_scheduled = False
        if not self._closed:
            self._check_global_deadlock()

    def _drop_session_constraints(self, session: GlobalSession) -> None:
        """Remove a finished session's node from the constraint graph."""
        succs = self._gsucc.pop(session, None)
        preds = self._gpred.pop(session, None)
        if succs:
            for succ in succs:
                remaining = self._gpred.get(succ)
                if remaining is not None:
                    remaining.discard(session)
                    if not remaining:
                        self._gpred.pop(succ, None)
        if preds:
            for pred in preds:
                remaining = self._gsucc.get(pred)
                if remaining is not None:
                    remaining.discard(session)
                    if not remaining:
                        self._gsucc.pop(pred, None)
        if succs or preds:
            self._gpred_cache.clear()
        else:
            self._gpred_cache.pop(session, None)

    def _on_session_terminal(self, session: GlobalSession) -> None:
        """Shared terminal bookkeeping: drop the constraint node, wake
        exactly the gate/guard waiters whose predecessor sets shrink."""
        self._drop_session_constraints(session)
        waiters = self._wake_index.pop(session, None)
        if waiters:
            for waiter in tuple(waiters):
                wait = self._coord_waits.get(waiter)
                if wait is not None and not wait.future.done():
                    wait.future.set_result(None)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    async def _forward(self, session: GlobalSession, coro) -> Any:
        """Await a shard operation, mapping failures and deadlines.

        The operation's first step runs *eagerly*, on the caller's
        stack: the overwhelmingly common shard op (an unblocked grant, a
        buffered write, an uncontended leg commit) finishes without ever
        suspending, so it never touches the event loop at all.  Without
        this, every forwarded op costs at least one loop tick — under an
        open-system arrival schedule that forced interleaving lets
        hundreds of later transactions start before earlier ones finish,
        and the resulting constraint pile-up is what collapsed
        multi-shard throughput.  Only an op that actually parks
        (lock wait, shard-side gate) is handed to a task.

        Shard churn that the old polling watchdog existed to observe now
        arrives as synchronous notifications (leg aborts cascade from
        the shard's ``"abort"`` event before the operation even
        resolves), so an operation without a deadline simply awaits its
        task.  A deadline bounds the wait; cancellation (client
        disconnect) tears the global session down, mirroring the
        unsharded manager.
        """
        task: Optional["asyncio.Future"] = None
        try:
            try:
                first = coro.send(None)
            except StopIteration as stop:
                return stop.value
            task = asyncio.ensure_future(self._settle(coro, first))
            if session.deadline is None:
                return await asyncio.shield(task)
            while True:
                remaining = session.deadline - self.now()
                if remaining <= 0:
                    await self._reap(task)
                    if session.state.live:
                        self.stats.deadline_aborts += 1
                        self._abort_global(session, "deadline", forced=True)
                    raise DeadlineExceeded(
                        f"{session.name}: deadline passed during the operation"
                    )
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(task), remaining
                    )
                except asyncio.TimeoutError:
                    continue
        except asyncio.CancelledError:
            if task is not None:
                await self._reap(task)
            if session.state.live:
                self._abort_global(session, "cancelled", forced=True)
            raise
        except ServiceError as exc:
            self._on_leg_failure(session, exc)
            raise

    @staticmethod
    async def _settle(coro, yielded) -> Any:
        """Finish a leg coroutine whose eager first step suspended.

        Mirrors the task step/wakeup protocol: wait for the future the
        coroutine yielded, then resume it with ``send`` (or ``throw`` on
        failure) until it returns.  Cancellation cancels the inner
        future and is thrown into the coroutine so its cleanup handlers
        (waiter un-parking, gate teardown) run exactly as they would
        under a cancelled task.
        """
        while True:
            exc: Optional[BaseException] = None
            if yielded is None:
                await asyncio.sleep(0)
            else:
                yielded._asyncio_future_blocking = False
                waiter = asyncio.get_running_loop().create_future()

                def _wake(_f, waiter=waiter):
                    if not waiter.done():
                        waiter.set_result(None)

                yielded.add_done_callback(_wake)
                try:
                    await waiter
                except asyncio.CancelledError as cancel:
                    yielded.remove_done_callback(_wake)
                    yielded.cancel()
                    exc = cancel
                else:
                    try:
                        yielded.result()
                    except BaseException as inner:  # noqa: BLE001
                        exc = inner
            try:
                if exc is not None:
                    yielded = coro.throw(exc)
                else:
                    yielded = coro.send(None)
            except StopIteration as stop:
                return stop.value

    @staticmethod
    async def _reap(task: "asyncio.Future") -> None:
        """Cancel a forwarded task and silence its outcome."""
        task.cancel()
        try:
            await task
        except BaseException:  # noqa: BLE001 - outcome deliberately dropped
            pass

    def _on_leg_failure(self, session: GlobalSession, exc: ServiceError) -> None:
        """Map a shard-side failure onto the global session.

        A leg abort (deadlock victim, OCC validation victim, shard
        shutdown) kills the whole transaction: the sibling legs are torn
        down so no shard keeps locks for a dead session.  Client-level
        errors (session-state, bad item) leave the session alive, same
        as on the unsharded manager.
        """
        if not session.state.live:
            return
        if isinstance(exc, (TransactionAborted, DeadlineExceeded)):
            dead = next(
                (leg for leg in session.legs.values()
                 if leg.state is SessionState.ABORTED),
                None,
            )
            reason = dead.abort_reason if dead is not None else "shard abort"
            self.sharding_stats.cascade_aborts += 1
            self._abort_global(
                session, f"shard:{reason}", forced=True,
                exc=TransactionAborted(f"{session.name}: {reason}"),
            )

    # ------------------------------------------------------------------
    # The global gate and guard
    # ------------------------------------------------------------------
    def _merged_preds(self, session: GlobalSession) -> Set[GlobalSession]:
        """Live sessions serialized before this one, on the merged graph.

        Transitive closure over the incrementally maintained session-
        level graph (``_gpred``), which mirrors every shard's constraint
        records via churn notifications — equivalent to the old rebuild
        over the shard registries because a session-level edge exists
        exactly while its shard-side edge does (both drop at the global
        terminal).  Memoized; any graph edit dirties the cache
        wholesale.  Callers must not mutate the returned set.
        """
        self.sharding_stats.constraint_merges += 1
        cached = self._gpred_cache.get(session)
        if cached is not None:
            return cached
        seen: Set[GlobalSession] = set()
        stack: List[GlobalSession] = [session]
        while stack:
            for pred in self._gpred.get(stack.pop(), ()):
                if pred is not session and pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        self._gpred_cache[session] = seen
        return seen

    def _remote_guard_blockers(
        self, session: GlobalSession, shard_id: int, item: str
    ) -> Tuple[GlobalSession, ...]:
        """Predecessors that write ``item`` and are invisible locally.

        The owning shard's order guard already holds a read back for
        every predecessor in *its* transitive closure; the coordinator
        only has to cover the remainder visible on the merged graph.  On
        a 1-shard deployment the remainder is empty by construction —
        the guarantee behind decision-equivalence.
        """
        merged = self._merged_preds(session)
        if not merged:
            return ()
        local: Set[GlobalSession] = set()
        leg = session.legs.get(shard_id)
        if leg is not None and leg.state.live:
            shard = self.shards[shard_id]
            for pred_job in shard._transitive_preds(leg.job):
                pred = self._job_sessions.get(pred_job)
                if pred is not None:
                    local.add(pred)
        blockers = [
            pred for pred in merged
            if pred.state.live
            and item in pred.spec.write_set
            and pred not in local
        ]
        return tuple(sorted(blockers, key=lambda s: s.id))

    def _gate_blockers(
        self, session: GlobalSession
    ) -> Tuple[GlobalSession, ...]:
        """Live merged predecessors that must finish before this commit."""
        return tuple(sorted(
            (pred for pred in self._merged_preds(session)
             if pred.state.live),
            key=lambda s: s.id,
        ))

    async def _await_remote(
        self,
        session: GlobalSession,
        kind: str,
        blockers_fn: Callable[[], Tuple[GlobalSession, ...]],
    ) -> None:
        """Park until ``blockers_fn`` drains (event-driven wake-ups).

        The wait indexes itself on each blocker, so only a blocker's
        terminal transition wakes it — predecessors arriving *while*
        parked can only grow the set and never require a wake, and the
        re-evaluation after each wake picks them up.  Registers the wait
        for the cross-shard deadlock detector (one coalesced pass per
        park), enforces liveness/deadline on every wake, and falls back
        to a rare failsafe re-check against lost notifications.  Returns
        synchronously once the blocker set is empty — callers rely on
        there being no trailing ``await``.
        """
        blockers = blockers_fn()
        if not blockers:
            return
        if kind == "commit gate":
            self.sharding_stats.gate_waits += 1
            park_hist = self.sharding_stats.gate_wait
        else:
            self.sharding_stats.guard_waits += 1
            park_hist = self.sharding_stats.guard_wait
        started = self.now()
        previous_state = session.state
        session.state = SessionState.WAITING
        loop = asyncio.get_running_loop()
        try:
            while True:
                blockers = blockers_fn()
                if not blockers:
                    return
                future: "asyncio.Future[None]" = loop.create_future()
                self._coord_waits[session] = _CoordWait(kind, blockers, future)
                for blocker in blockers:
                    self._wake_index.setdefault(blocker, set()).add(session)
                self._schedule_deadlock_check()
                try:
                    if session.state.live:
                        timeout = self._failsafe_interval
                        if session.deadline is not None:
                            timeout = min(
                                timeout,
                                max(1e-4, session.deadline - self.now()),
                            )
                        try:
                            await asyncio.wait_for(
                                asyncio.shield(future), timeout
                            )
                        except asyncio.TimeoutError:
                            self._sweep()  # failsafe, not the wake path
                        except asyncio.CancelledError:
                            if session.state.live:
                                self._abort_global(
                                    session, "cancelled", forced=True
                                )
                            raise
                finally:
                    self._coord_waits.pop(session, None)
                    for blocker in blockers:
                        waiters = self._wake_index.get(blocker)
                        if waiters is not None:
                            waiters.discard(session)
                            if not waiters:
                                self._wake_index.pop(blocker, None)
                if not session.state.live:
                    raise TransactionAborted(
                        f"{session.name}: "
                        f"{session.abort_reason or 'aborted'} "
                        f"(while parked at the {kind})"
                    )
                if (
                    session.deadline is not None
                    and self.now() > session.deadline
                ):
                    self.stats.deadline_aborts += 1
                    self._abort_global(session, "deadline", forced=True)
                    raise DeadlineExceeded(
                        f"{session.name}: deadline passed at the {kind}"
                    )
        finally:
            if session.state is SessionState.WAITING:
                session.state = previous_state
            elapsed = self.now() - started
            self.stats.record_wait(session.priority, elapsed)
            park_hist.record(elapsed)

    # ------------------------------------------------------------------
    # Terminal transitions
    # ------------------------------------------------------------------
    def _finish_global(self, session: GlobalSession, now: float) -> None:
        """Commit bookkeeping: outcome row, stats, wake-ups."""
        session.state = SessionState.COMMITTED
        self._live.pop(session, None)
        for leg in session.legs.values():
            self._job_sessions.pop(leg.job, None)
        self._outcomes.append(("commit", session.name, now))
        self.stats.record_commit(session.priority, now - session.opened_at)
        if len(session.legs) > 1:
            self.sharding_stats.cross_shard_commits += 1
        self._on_session_terminal(session)

    def _abort_global(
        self,
        session: GlobalSession,
        reason: str,
        *,
        forced: bool = True,
        exc: Optional[ServiceError] = None,
    ) -> None:
        """Tear a global session down: every live leg, then bookkeeping."""
        if not session.state.live:
            return
        session.state = SessionState.ABORTED
        session.abort_reason = reason
        self._live.pop(session, None)
        failure = exc or TransactionAborted(f"{session.name}: {reason}")
        for shard_id, leg in session.legs.items():
            if leg.state.live:
                self.shards[shard_id].force_abort(leg, reason, exc=failure)
            self._job_sessions.pop(leg.job, None)
        self._outcomes.append(("abort", session.name, self.now()))
        self.stats.record_abort(session.priority, forced=forced)
        self._on_session_terminal(session)
        # The victim itself may be parked at a gate/guard: fire its own
        # future so the park observes the abort without a failsafe tick.
        own = self._coord_waits.get(session)
        if own is not None and not own.future.done():
            own.future.set_result(None)

    # ------------------------------------------------------------------
    # Sweep: cascades and cross-shard deadlock detection
    # ------------------------------------------------------------------
    def _cascade_session(self, session: GlobalSession) -> None:
        """Kill ``session`` globally if any of its legs was *aborted*
        shard-side.

        Only ABORTED counts as dead here: during a commit there is an
        instant where a leg is already COMMITTED while the global
        session is still live — that is the commit path's own business,
        not a cascade.
        """
        if not session.state.live:
            return
        dead = next(
            (leg for leg in session.legs.values()
             if leg.state is SessionState.ABORTED),
            None,
        )
        if dead is not None:
            self.sharding_stats.cascade_aborts += 1
            self._abort_global(
                session,
                f"shard:{dead.abort_reason or 'abort'}",
                forced=True,
            )

    def _cascade_dead(self) -> None:
        """Cascade every live session that lost a leg shard-side.

        A shard may abort a leg with no coordinator frame on the stack —
        a 2PL-HP victim displaced by a higher-priority writer, an OCC
        broadcast abort at a neighbour's commit, a shard deadlock
        victim.  The global session must follow, so sibling legs release
        their locks and subsequent client operations see the abort
        rather than a half-dead transaction.
        """
        for session in list(self._live):
            self._cascade_session(session)

    def _sweep(self) -> None:
        """Failsafe re-check body (rarely run; see ``sweep_interval_s``).

        Both steps are redundant under the notification design — leg
        aborts cascade synchronously from shard ``"abort"`` events and
        cycles are checked when wait edges appear — but a lost wake-up
        would otherwise park a waiter forever, so parked waiters re-run
        this on their (long) failsafe period:

        1. Cascade: kill the global session of any leg aborted
           shard-side, so sibling legs release their locks.
        2. Cross-shard deadlock detection (see module docstring).
        """
        self._cascade_dead()
        self._check_global_deadlock()

    def _check_global_deadlock(self) -> None:
        """Find and resolve wait cycles spanning shards or the coordinator.

        Builds a session-level wait graph from every shard's wait-for
        edges plus the coordinator's parked gate/guard waits, each edge
        tagged with its sources.  A cycle whose edges are all
        attributable to one single shard is left to that shard's own
        detector (identical rules to the unsharded manager); any other
        cycle exists only because of partitioning, so it is resolved by
        aborting the lowest-base-priority member — the same policy the
        unsharded manager applies to service-level cycles.
        """
        edges: Dict[GlobalSession, Dict[GlobalSession, Set[Any]]] = {}
        for index, shard in enumerate(self.shards):
            for waiter_job in shard.waits.waiters():
                waiter = self._job_sessions.get(waiter_job)
                if waiter is None or not waiter.state.live:
                    continue
                for blocker_job in shard.waits.blockers_of(waiter_job):
                    blocker = self._job_sessions.get(blocker_job)
                    if (
                        blocker is None or blocker is waiter
                        or not blocker.state.live
                    ):
                        continue
                    edges.setdefault(waiter, {}).setdefault(
                        blocker, set()
                    ).add(index)
        for waiter, wait in self._coord_waits.items():
            if not waiter.state.live:
                continue
            for blocker in wait.blockers:
                if blocker.state.live and blocker is not waiter:
                    edges.setdefault(waiter, {}).setdefault(
                        blocker, set()
                    ).add("coordinator")
        cycle = self._find_cycle(edges)
        if cycle is None:
            return
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        for index in range(len(self.shards)):
            if all(index in edges[a][b] for a, b in pairs):
                return  # purely shard-local: that shard's own business
        self.sharding_stats.cross_shard_deadlocks += 1
        names = " -> ".join(s.name for s in cycle)
        victim = min(cycle, key=lambda s: (s.priority, -s.id))
        self._abort_global(
            victim, "deadlock", forced=True,
            exc=TransactionAborted(
                f"{victim.name} chosen as cross-shard deadlock victim "
                f"({names})"
            ),
        )

    @staticmethod
    def _find_cycle(
        edges: Dict[GlobalSession, Dict[GlobalSession, Set[Any]]]
    ) -> Optional[List[GlobalSession]]:
        """One cycle in the session wait graph, or ``None`` (iterative DFS)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[GlobalSession, int] = {}
        for root in sorted(edges, key=lambda s: s.id):
            if color.get(root, WHITE) is not WHITE:
                continue
            path: List[GlobalSession] = []
            stack: List[Tuple[GlobalSession, bool]] = [(root, False)]
            while stack:
                node, done = stack.pop()
                if done:
                    color[node] = BLACK
                    path.pop()
                    continue
                state = color.get(node, WHITE)
                if state is BLACK:
                    continue
                if state is GRAY:
                    continue
                color[node] = GRAY
                path.append(node)
                stack.append((node, True))
                for target in sorted(
                    edges.get(node, ()), key=lambda s: s.id
                ):
                    target_state = color.get(target, WHITE)
                    if target_state is GRAY:
                        start = path.index(target)
                        return path[start:]
                    if target_state is WHITE:
                        stack.append((target, False))
        return None
