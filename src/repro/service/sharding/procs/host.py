"""The shard host: one ``LockManager`` per OS process, events on the wire.

``repro shard-host`` runs a single shard behind the NDJSON wire.  It is
the plain :class:`~repro.service.server.LockServer` plus the v2 push
stream: a connection that sends ``subscribe`` receives every churn and
decision notification as an event frame, emitted *synchronously* while
the triggering request is dispatched and queued through the same
per-connection batch buffer as responses.  On one TCP stream this means
every frame precedes the response of the operation that caused it — the
delivery-order guarantee :class:`RemoteShardProxy` mirrors are built on.

Lifecycle: the supervisor spawns the host with ``--port 0``, the host
prints one JSON ready line (``{"ready": true, "port": ..., "pid": ...}``)
on stdout and serves until (a) SIGTERM/SIGINT, or (b) **stdin EOF** —
the supervisor holds the write end of the host's stdin, so the pipe
closing means the parent is gone (even via SIGKILL, which no handler can
observe) and the host exits rather than leak as an orphan.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
from typing import Callable, Dict, Optional

from repro.engine.job import Job
from repro.service import wire
from repro.service.manager import LockManager, ServiceConfig
from repro.service.server import LockServer
from repro.trace.recorder import LockEvent
from repro.workloads.io import load_taskset


class ShardHostServer(LockServer):
    """A :class:`LockServer` over one shard that pushes event frames.

    ``manager`` must be a plain :class:`LockManager` (the shard-op
    family — ``prepare``/``force_abort``/``wait_graph``/... — targets a
    single shard, and the wire layer rejects it otherwise).  Frames go
    only to connections that opted in with ``subscribe``; a plain v2
    client on the same host sees the classic request/response protocol.
    """

    def __init__(
        self,
        manager: LockManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(manager, host, port)
        #: Push callbacks of subscribed connections, keyed by identity.
        self._subscribers: Dict[int, Callable[[dict], None]] = {}
        manager.churn_listeners.append(self._on_churn)
        manager.decision_listeners.append(self._on_decision)

    # -- event fan-out --------------------------------------------------
    def _push(self, frame: dict) -> None:
        for respond in list(self._subscribers.values()):
            respond(frame)

    def _on_churn(self, kind: str, job: Job, other: Optional[Job]) -> None:
        if not self._subscribers:
            return
        blockers = reason = None
        if kind == "wait":
            blockers = (b.name for b in self.manager.waits.blockers_of(job))
        elif kind == "abort":
            session = self.manager._by_job.get(job)
            reason = session.abort_reason if session is not None else "abort"
        self._push(wire.churn_frame(
            kind, job.name,
            other.name if other is not None else None,
            blockers=blockers, reason=reason,
        ))

    def _on_decision(self, event: LockEvent) -> None:
        if self._subscribers:
            self._push(wire.decision_frame(event))

    # -- connection hooks -----------------------------------------------
    async def _handle_request(self, request, respond, owned):
        if request.get("op") == "subscribe":
            self._subscribers[id(respond)] = respond
            return wire.ok_response(
                request.get("id"),
                {"subscribed": True, "events": ["churn", "decision"]},
            )
        return await super()._handle_request(request, respond, owned)

    def _connection_closed(self, respond) -> None:
        self._subscribers.pop(id(respond), None)


def build_arg_parser() -> argparse.ArgumentParser:
    """CLI surface of ``repro shard-host`` (normally supervisor-spawned)."""
    parser = argparse.ArgumentParser(
        prog="repro shard-host",
        description="Run one lock-manager shard behind the NDJSON wire.",
    )
    add_host_args(parser)
    return parser


def add_host_args(parser: argparse.ArgumentParser) -> None:
    """Install the shard-host arguments (shared with the repro CLI)."""
    parser.add_argument("--catalog", required=True,
                        help="taskset JSON file (the shared catalog)")
    parser.add_argument("--protocol", default="pcp-da")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 binds an ephemeral port (reported on stdout)")
    parser.add_argument("--shard-index", type=int, default=0,
                        help="this shard's index in the deployment")
    parser.add_argument("--t0", type=float, default=None,
                        help="shared CLOCK_MONOTONIC epoch (supervisor's "
                             "time.monotonic() at deployment start)")
    parser.add_argument("--deadlock-action", default="abort_lowest",
                        choices=["abort_lowest", "raise"])
    parser.add_argument("--no-kernel", action="store_true")
    parser.add_argument("--no-record-sysceil", action="store_true")
    parser.add_argument("--honor-early-release", action="store_true")
    parser.add_argument("--no-stdin-watch", action="store_true",
                        help="do not exit on stdin EOF (manual runs)")


async def _watch_stdin(stop: asyncio.Event) -> None:
    """Exit signal from the parent-death pipe: stdin EOF sets ``stop``.

    The supervisor keeps the write end open for the host's lifetime and
    never writes; EOF therefore means the parent exited — including the
    SIGKILL case no signal handler could see.
    """
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    try:
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin.buffer
        )
    except (OSError, ValueError):
        return  # stdin not pollable (e.g. /dev/null): rely on signals
    while True:
        chunk = await reader.read(4096)
        if not chunk:
            break
    stop.set()


async def run_shard_host(args: argparse.Namespace) -> int:
    """Serve one shard until told to stop; returns the exit code."""
    taskset = load_taskset(args.catalog)
    config = ServiceConfig(
        deadlock_action=args.deadlock_action,
        record_sysceil=not args.no_record_sysceil,
        honor_early_release=args.honor_early_release,
        kernel=not args.no_kernel,
    )
    manager = LockManager(taskset, args.protocol, config)
    if args.t0 is not None:
        # All hosts and the coordinator share one service clock:
        # CLOCK_MONOTONIC is system-wide on Linux, so timestamps in
        # history/trace rows are comparable across processes.
        manager._t0 = args.t0
    server = ShardHostServer(manager, args.host, args.port)
    await server.start()
    print(json.dumps({
        "ready": True,
        "port": server.port,
        "pid": os.getpid(),
        "shard": args.shard_index,
        "protocol": manager.protocol.name,
        "version": wire.PROTOCOL_VERSION,
    }), flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, stop.set)
    watchdog = None
    if not args.no_stdin_watch:
        watchdog = asyncio.ensure_future(_watch_stdin(stop))
    serving = asyncio.ensure_future(server.serve_forever())
    try:
        await stop.wait()
    finally:
        serving.cancel()
        if watchdog is not None:
            watchdog.cancel()
        await asyncio.gather(serving, watchdog or asyncio.sleep(0),
                             return_exceptions=True)
        await server.close()
    return 0


def main(argv: Optional[list] = None) -> int:
    """Entry point for ``repro shard-host``."""
    args = build_arg_parser().parse_args(argv)
    try:
        return asyncio.run(run_shard_host(args))
    except KeyboardInterrupt:
        return 0
