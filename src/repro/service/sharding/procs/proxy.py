"""The coordinator's stand-in for a shard living in another process.

A :class:`RemoteShardProxy` implements exactly the surface
:class:`~repro.service.sharding.coordinator.ShardedLockManager` consumes
from a shard — ``begin``/``read``/``write``/``commit``, the commit-fence
pair ``prepare_commit``/``unprepare_commit``, ``force_abort``, the
constraint/wait introspection (``_transitive_preds``, ``waits``) and the
churn/decision listener hookup — so the coordinator code runs unchanged
whether a shard is an in-process :class:`LockManager` or a
``repro shard-host`` on the far side of a socket.

Two mechanisms make that possible:

* **Mirrors.**  The proxy keeps a local mirror :class:`Session` (with a
  real engine :class:`Job` inside) for every leg it opened, plus
  name-keyed mirrors of the host's constraint edges and wait-for edges.
  Synchronous coordinator reads — the gate's predecessor closure, the
  deadlock detector's wait graph — are answered from the mirrors with no
  round-trip.
* **The push stream.**  After ``hello`` + ``subscribe`` the host streams
  every churn/decision notification as a v2 event frame.  Frames are
  emitted synchronously during dispatch and ride the same batched
  per-connection buffer as responses, so on this one TCP stream every
  frame precedes the response of the operation that caused it: by the
  time an operation's response resolves, the mirrors already reflect
  everything that operation changed.  The mirrors are therefore not
  "eventually consistent" in any way the coordinator can observe —
  they are exact at every response boundary.

Writes travel two ways: operations whose result the coordinator needs
(``begin``, ``read``, ``prepare``) are awaited calls; bookkeeping the
coordinator treats as synchronous on an in-process shard
(``set_seq``, ``unprepare``, ``force_abort``) is *posted* fire-and-forget
— the mirror flips immediately, the frame confirming it is ignored, and
same-stream FIFO guarantees the host applies it before any later call.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.engine.job import Job
from repro.exceptions import ServiceError
from repro.model.spec import TaskSet
from repro.service import wire
from repro.service.manager import Session, SessionState, catalog_document
from repro.service.stats import ServiceStats
from repro.trace.recorder import LockEvent


class _RemoteProtocol:
    """Protocol identity of the remote shard (name only).

    The coordinator reads ``shard.protocol.name`` for documents and
    reports; decision *logic* runs host-side, so the name is all a proxy
    needs to carry.
    """

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"_RemoteProtocol({self.name!r})"


class _WaitMirror:
    """Read-only ``WaitForGraph`` facade over the proxy's wait edges.

    The coordinator's cross-shard deadlock detector consumes only
    ``waiters()`` and ``blockers_of()``; both are answered from the
    name-keyed edge mirror maintained by ``wait``/``unwait`` frames.
    """

    def __init__(self, proxy: "RemoteShardProxy"):
        self._proxy = proxy

    def waiters(self) -> List[Job]:
        jobs = self._proxy._jobs
        return [
            jobs[name] for name in self._proxy._wait_edges if name in jobs
        ]

    def blockers_of(self, job: Job) -> List[Job]:
        jobs = self._proxy._jobs
        return [
            jobs[name]
            for name in self._proxy._wait_edges.get(job.name, ())
            if name in jobs
        ]


class RemoteShardProxy:
    """One shard-host connection, speaking the ``LockManager`` surface."""

    #: Flips the coordinator's introspection to the async fetch path.
    is_remote = True

    def __init__(
        self,
        catalog: TaskSet,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        label: str = "shard",
    ) -> None:
        self._catalog = catalog
        self._reader = reader
        self._writer = writer
        self.label = label
        self._ids = itertools.count(1)
        #: Correlation id -> future of an awaited call.
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        #: Correlation ids of posted (fire-and-forget) operations.
        self._discard: Set[int] = set()
        self._closed = False
        self._pump_task: Optional[asyncio.Task] = None

        # -- mirrors -----------------------------------------------------
        #: instance name -> mirror job of a live leg.
        self._jobs: Dict[str, Job] = {}
        #: instance name -> mirror session of a live leg.
        self._legs: Dict[str, Session] = {}
        #: Constraint mirror: _pred[w] = {r: r ≺ w}, by instance name.
        self._pred: Dict[str, Set[str]] = {}
        self._succ: Dict[str, Set[str]] = {}
        #: waiter name -> blocker names (current wait-for edges).
        self._wait_edges: Dict[str, Tuple[str, ...]] = {}

        # -- LockManager-surface attributes ------------------------------
        self.waits = _WaitMirror(self)
        self.churn_listeners: List[Callable[..., None]] = []
        self.decision_listeners: List[Callable[[LockEvent], None]] = []
        #: Mirror legs never carry history or local stats; the
        #: coordinator uses the async fetch path for both when any shard
        #: is remote, so these exist only to satisfy the surface.
        self.history: Tuple[Any, ...] = ()
        self.stats = ServiceStats()
        self.protocol = _RemoteProtocol("unknown")
        self._t0 = 0.0  # overwritten by the coordinator/supervisor

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        catalog: TaskSet,
        host: str,
        port: int,
        *,
        label: str = "shard",
    ) -> "RemoteShardProxy":
        """Open a TCP connection to a shard host and negotiate v2."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=wire.STREAM_LIMIT
        )
        return await cls.from_streams(catalog, reader, writer, label=label)

    @classmethod
    async def from_streams(
        cls,
        catalog: TaskSet,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        label: str = "shard",
    ) -> "RemoteShardProxy":
        """Build a proxy over existing streams (tests use in-memory pairs)."""
        proxy = cls(catalog, reader, writer, label=label)
        proxy._pump_task = asyncio.ensure_future(proxy._pump())
        hello = await proxy._call(
            "hello",
            version=wire.PROTOCOL_VERSION,
            features=["events", "shard-ops"],
        )
        granted = set(hello.get("features", ()))
        missing = {"events", "shard-ops"} - granted
        if missing:
            await proxy.shutdown()
            raise ServiceError(
                f"{label}: host lacks required features {sorted(missing)} "
                "(not a shard host?)"
            )
        proxy.protocol = _RemoteProtocol(hello["protocol"])
        await proxy._call("subscribe")
        return proxy

    async def _pump(self) -> None:
        """Apply event frames and route responses, in stream order."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                document = wire.decode(line)
                if wire.is_event(document):
                    self._apply_frame(document)
                    continue
                request_id = document.get("id")
                if request_id in self._discard:
                    self._discard.discard(request_id)
                    continue
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(document)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServiceError(f"{self.label}: shard connection lost")
                    )
            self._pending.clear()

    async def shutdown(self) -> None:
        """Close the connection; pending calls fail, mirrors are kept."""
        if self._closed:
            return
        self._closed = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def mark_lost(self, reason: str) -> None:
        """The host process died: flip every live mirror leg terminally.

        Called by the coordinator's ``on_shard_lost`` *before* it aborts
        the touched global sessions, so their dead-shard legs are
        already non-live and ``force_abort`` never posts to the corpse.
        """
        for name, leg in list(self._legs.items()):
            if leg.state.live:
                leg.state = SessionState.ABORTED
                leg.abort_reason = f"shard host lost: {reason}"
            self._forget(name)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    async def _call(self, op: str, **params: Any) -> Dict[str, Any]:
        """One awaited request; raises the mapped service error."""
        if self._closed:
            raise ServiceError(f"{self.label}: shard connection lost")
        request_id = next(self._ids)
        document = {"id": request_id, "op": op, **params}
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        try:
            self._writer.write(wire.encode(document))
            await self._writer.drain()
        except (ConnectionError, OSError, RuntimeError) as exc:
            self._pending.pop(request_id, None)
            raise ServiceError(
                f"{self.label}: shard connection lost: {exc}"
            ) from exc
        response = await future
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        kind = error.get("kind", "service")
        message = error.get("message", "unknown shard error")
        raise wire.ERROR_TYPES.get(kind, ServiceError)(message)

    def _post(self, op: str, **params: Any) -> None:
        """Fire-and-forget request: the response frame is discarded.

        Used for operations the coordinator treats as synchronous on an
        in-process shard.  The local mirror flips before this returns;
        same-stream FIFO means the host applies the operation before
        anything this coordinator sends later.  A dead connection is
        tolerated silently — the supervisor's crash handling owns that.
        """
        if self._closed:
            return
        request_id = next(self._ids)
        self._discard.add(request_id)
        try:
            self._writer.write(wire.encode({
                "id": request_id, "op": op, **params
            }))
        except (ConnectionError, OSError, RuntimeError):
            self._discard.discard(request_id)

    # ------------------------------------------------------------------
    # Event frames -> mirrors
    # ------------------------------------------------------------------
    def _apply_frame(self, frame: Dict[str, Any]) -> None:
        if frame.get("event") == "decision":
            event = wire.decision_from_frame(frame)
            for listener in self.decision_listeners:
                listener(event)
            return
        if frame.get("event") != "churn":
            return  # unknown event type: forward-compatible skip
        kind = frame.get("kind")
        name = frame.get("job")
        if kind == "constraint":
            other = frame.get("other")
            if other is None:
                return
            self._pred.setdefault(other, set()).add(name)
            self._succ.setdefault(name, set()).add(other)
            self._notify(kind, self._jobs.get(name), self._jobs.get(other))
        elif kind == "wait":
            self._wait_edges[name] = tuple(frame.get("blockers", ()))
            self._notify(kind, self._jobs.get(name), None)
        elif kind == "unwait":
            self._wait_edges.pop(name, None)
            self._notify(kind, self._jobs.get(name), None)
        elif kind == "abort":
            leg = self._legs.get(name)
            if leg is not None and leg.state.live:
                leg.state = SessionState.ABORTED
                leg.abort_reason = frame.get("reason") or "shard abort"
            job = self._jobs.get(name)
            self._forget(name)
            # Notify *after* the mirror flip: the coordinator's cascade
            # reads the leg state synchronously inside this callback.
            self._notify(kind, job, None)
        elif kind == "finish":
            leg = self._legs.get(name)
            if leg is not None and leg.state.live:
                leg.state = SessionState.COMMITTED
            job = self._jobs.get(name)
            self._forget(name)
            self._notify(kind, job, None)

    def _notify(
        self, kind: str, job: Optional[Job], other: Optional[Job]
    ) -> None:
        """Fan a churn frame out to listeners, mirror-jobs attached.

        Frames about legs this proxy no longer mirrors (e.g. the host's
        abort confirmation after a local ``force_abort`` already forgot
        the leg) carry no job object and are dropped: the coordinator
        already observed that terminal.
        """
        if job is None:
            return
        for listener in self.churn_listeners:
            listener(kind, job, other)

    def _forget(self, name: str) -> None:
        """Drop a terminal leg's mirrors (constraint node, wait edge)."""
        self._jobs.pop(name, None)
        self._legs.pop(name, None)
        self._wait_edges.pop(name, None)
        succs = self._succ.pop(name, None)
        if succs:
            for succ in succs:
                remaining = self._pred.get(succ)
                if remaining is not None:
                    remaining.discard(name)
                    if not remaining:
                        self._pred.pop(succ, None)
        preds = self._pred.pop(name, None)
        if preds:
            for pred in preds:
                remaining = self._succ.get(pred)
                if remaining is not None:
                    remaining.discard(name)
                    if not remaining:
                        self._succ.pop(pred, None)

    # ------------------------------------------------------------------
    # The LockManager surface the coordinator consumes
    # ------------------------------------------------------------------
    async def begin(
        self,
        transaction: str,
        *,
        deadline_s: Optional[float] = None,
        instance: Optional[int] = None,
    ) -> Session:
        """Open a leg on the host; returns its local mirror session.

        The mirror embeds a real engine :class:`Job` so every
        coordinator structure keyed or ordered by jobs (constraint
        graph, wait graph, ``_job_sessions``) works identically to the
        in-process case.  The mirror's arrival time and seq are
        placeholders — the coordinator pins ``seq`` to the global
        session id immediately via :meth:`pin_leg_seq`.
        """
        params: Dict[str, Any] = {"transaction": transaction}
        if deadline_s is not None:
            params["deadline_s"] = deadline_s
        if instance is not None:
            params["instance"] = instance
        result = await self._call("begin", **params)
        name = result["name"]
        if instance is None:
            instance = int(name.rpartition("#")[2])
        job = Job(self._catalog[transaction], instance, 0.0)
        leg = Session(result["session"], job, 0.0, None)
        self._jobs[name] = job
        self._legs[name] = leg
        return leg

    def pin_leg_seq(self, leg: Session, seq: int) -> None:
        """Forward the coordinator's tie-break seq override to the host."""
        self._post("set_seq", session=leg.id, seq=seq)

    async def read(self, leg: Session, item: str) -> Any:
        """Read ``item`` through the host's protocol; may park there."""
        result = await self._call("read", session=leg.id, item=item)
        leg.op_count += 1
        return result["value"]

    async def write(self, leg: Session, item: str, value: Any) -> None:
        """Acquire the write lock host-side and buffer the value."""
        await self._call("write", session=leg.id, item=item, value=value)
        leg.op_count += 1

    async def commit(self, leg: Session) -> Dict[str, Any]:
        """Install the leg host-side; the finish frame precedes the ack."""
        result = await self._call("commit", session=leg.id)
        if leg.state.live:  # frame raced a connection hiccup: flip anyway
            leg.state = SessionState.COMMITTED
            self._forget(leg.name)
        return result

    async def abort(self, leg: Session, reason: str = "client") -> None:
        """Client-initiated abort; the abort frame flips the mirror."""
        await self._call("abort", session=leg.id, reason=reason)

    async def prepare_commit(self, leg: Session) -> Tuple[str, ...]:
        """Fence the leg for install (awaited: the ack is the fence point).

        By the time the ack resolves, every constraint frame recorded
        before the fence landed has been applied to the mirror — the
        property the coordinator's post-prepare gate re-check is built
        on.
        """
        result = await self._call("prepare", session=leg.id)
        leg.committing = True
        return tuple(result.get("gate", ()))

    def unprepare_commit(self, leg: Session) -> None:
        """Drop the fence (gate back-off); posted fire-and-forget."""
        leg.committing = False
        self._post("unprepare", session=leg.id)

    def force_abort(
        self, leg: Session, reason: str, *, exc: Optional[BaseException] = None
    ) -> None:
        """Coordinator-driven abort: mirror flips now, host follows.

        Matches the in-process contract of being synchronous and
        idempotent.  The host's own abort frame for this leg arrives
        later and is dropped (the mirror is already forgotten).
        """
        if not leg.state.live:
            return
        leg.state = SessionState.ABORTED
        leg.abort_reason = reason
        name = leg.name
        self._forget(name)
        self._post("force_abort", session=leg.id, reason=reason)

    def _transitive_preds(self, job: Job) -> Set[Job]:
        """Closure over the mirrored constraint graph, live jobs only."""
        closure: Set[str] = set()
        frontier = [job.name]
        while frontier:
            name = frontier.pop()
            for pred in self._pred.get(name, ()):
                if pred not in closure:
                    closure.add(pred)
                    frontier.append(pred)
        return {
            self._jobs[name] for name in closure if name in self._jobs
        }

    @property
    def _waiters(self) -> Dict[str, Tuple[str, ...]]:
        """Parked-waiter gauge (len() only); mirrors the wait edges."""
        return self._wait_edges

    def system_ceiling(self) -> Optional[int]:
        """Unknown without a round-trip; the async stats path carries it."""
        return None

    def catalog_document(self) -> List[Dict[str, Any]]:
        """Answered locally: the catalog is static and shared."""
        return catalog_document(self._catalog)

    # ------------------------------------------------------------------
    # Async introspection (the coordinator's remote fetch path)
    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the host's version document."""
        return await self._call("ping")

    async def fetch_stats_document(self) -> Dict[str, Any]:
        """The shard's full stats document, fetched over the wire."""
        return await self._call("stats")

    async def fetch_history_events(self) -> List[Dict[str, Any]]:
        """The shard's history rows (one dict per data event)."""
        return (await self._call("history"))["events"]

    async def fetch_wait_graph(self) -> Dict[str, List[str]]:
        """The host's authoritative wait-for edges (diagnostics)."""
        return (await self._call("wait_graph"))["edges"]
