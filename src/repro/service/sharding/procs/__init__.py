"""Multi-process shard deployments: hosts, proxies, and the supervisor.

One shard per OS process (``repro shard-host``), mirrored into the
coordinator's address space by :class:`RemoteShardProxy`, spawned and
reaped by :class:`ShardSupervisor`.  See docs/SHARDING.md for the
topology and crash semantics.
"""

from repro.service.sharding.procs.proxy import RemoteShardProxy
from repro.service.sharding.procs.supervisor import (
    ShardSupervisor,
    start_proc_deployment,
)

__all__ = [
    "RemoteShardProxy",
    "ShardSupervisor",
    "start_proc_deployment",
]
