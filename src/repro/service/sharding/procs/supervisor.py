"""The shard supervisor: spawn, watch, drain, and *always* reap.

A :class:`ShardSupervisor` turns ``--shard-procs N`` into N
``repro shard-host`` child processes plus one
:class:`~repro.service.sharding.procs.proxy.RemoteShardProxy` per child,
ready to inject into a
:class:`~repro.service.sharding.coordinator.ShardedLockManager`.

Process hygiene is the non-negotiable part — a lock service that leaks
orphans on a crashed parent is worse than no lock service.  Four layers:

1. **stdin pipe.**  Each child inherits a pipe as stdin whose write end
   the supervisor holds and never writes.  The host exits on stdin EOF,
   which fires on *any* parent death — including SIGKILL, which no
   handler, atexit, or finally block in the parent can observe.
2. **Graceful stop.**  :meth:`stop` closes proxies, closes the stdin
   pipes, sends SIGTERM, waits a bounded grace period, then SIGKILLs
   stragglers.
3. **atexit backstop.**  A synchronous reaper registered at spawn time
   kills any child still alive when the parent interpreter exits down a
   path that skipped :meth:`stop` (unhandled exception, ``sys.exit`` in
   a signal handler).
4. **Crash monitors.**  A task per child awaits its exit; an unexpected
   death aborts every in-flight transaction touching the dead shard
   via ``coordinator.on_shard_lost`` and then either fails the
   deployment fast (default) or restarts the shard empty and swaps the
   new proxy in (``on_crash="restart"``).

The supervisor also owns the deployment's shared service clock: it
passes its own ``time.monotonic()`` epoch to every host (``--t0``) and
to the coordinator, so timestamps in merged histories are comparable
across processes.
"""

from __future__ import annotations

import asyncio
import atexit
import contextlib
import json
import os
import signal
import sys
import tempfile
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ServiceError
from repro.model.spec import TaskSet
from repro.service.manager import ServiceConfig
from repro.service.sharding.coordinator import ShardedLockManager
from repro.service.sharding.procs.proxy import RemoteShardProxy
from repro.workloads.io import dump_taskset

#: Seconds a child gets between SIGTERM and SIGKILL at shutdown.
GRACE_S = 5.0
#: Seconds to wait for a spawned host's ready line.
READY_TIMEOUT_S = 30.0


class ShardHostHandle:
    """One spawned shard host: its process and its proxy."""

    def __init__(self, shard_id: int, process: Any, proxy: Any,
                 port: int = 0):
        self.shard_id = shard_id
        self.process = process
        self.proxy = proxy
        self.port = port


#: A spawner: shard index -> (process-like, proxy, port).  Injectable so
#: the supervisor's crash/restart/stop logic is testable without
#: sockets or subprocesses; the process-like needs ``wait()``,
#: ``terminate()``, ``kill()``, ``returncode``, ``pid`` and a ``stdin``
#: with ``close()`` (or ``None``).
Spawner = Callable[[int], Awaitable[Tuple[Any, Any, int]]]


class ShardSupervisor:
    """Own N shard-host processes for the lifetime of a deployment."""

    def __init__(
        self,
        catalog: TaskSet,
        protocol: str = "pcp-da",
        *,
        shards: int = 2,
        host: str = "127.0.0.1",
        config: Optional[ServiceConfig] = None,
        on_crash: str = "fail",
        spawn: Optional[Spawner] = None,
    ) -> None:
        if on_crash not in ("fail", "restart"):
            raise ValueError(
                f"on_crash must be 'fail' or 'restart', not {on_crash!r}"
            )
        self.catalog = catalog
        self.protocol = protocol
        self.shard_count = shards
        self.host = host
        self.config = config or ServiceConfig()
        self.on_crash = on_crash
        self._spawn = spawn or self._spawn_subprocess
        #: Shared service clock epoch for every host and the coordinator.
        self.t0 = time.monotonic()
        self.handles: List[Optional[ShardHostHandle]] = [None] * shards
        self._monitors: List[asyncio.Task] = []
        self._coordinator: Optional[ShardedLockManager] = None
        self._closing = False
        self._started = False
        #: Set once a shard died under ``on_crash="fail"``.
        self.failed: Optional[str] = None
        #: Fires on any unexpected child death (tests/serve loops wait on it).
        self.crashed = asyncio.Event()
        self._catalog_path: Optional[str] = None
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def proxies(self) -> List[Any]:
        """The shard surfaces to inject into the coordinator, in order."""
        return [handle.proxy for handle in self.handles if handle is not None]

    def attach(self, coordinator: ShardedLockManager) -> None:
        """Wire crash handling to ``coordinator`` (on_shard_lost target)."""
        self._coordinator = coordinator

    async def start(self) -> None:
        """Spawn every shard host and start its crash monitor."""
        if self._started:
            raise ServiceError("supervisor already started")
        self._started = True
        atexit.register(self._atexit_reap)
        self._atexit_registered = True
        try:
            for index in range(self.shard_count):
                self.handles[index] = await self._launch(index)
        except BaseException:
            await self.stop()
            raise

    async def _launch(self, index: int) -> ShardHostHandle:
        process, proxy, port = await self._spawn(index)
        handle = ShardHostHandle(index, process, proxy, port)
        self._monitors.append(
            asyncio.ensure_future(self._monitor(handle))
        )
        return handle

    async def stop(self) -> None:
        """Drain and reap every child (idempotent, bounded)."""
        if self._closing:
            return
        self._closing = True
        for task in self._monitors:
            task.cancel()
        if self._monitors:
            await asyncio.gather(*self._monitors, return_exceptions=True)
        self._monitors.clear()
        for handle in self.handles:
            if handle is None:
                continue
            try:
                await handle.proxy.shutdown()
            except Exception:
                pass
        # Closing stdin is the polite exit signal (the host's
        # parent-death watchdog); SIGTERM is the firm one.
        for handle in self.handles:
            if handle is None or handle.process is None:
                continue
            process = handle.process
            stdin = getattr(process, "stdin", None)
            if stdin is not None:
                try:
                    stdin.close()
                except (OSError, RuntimeError):
                    pass
            if process.returncode is None:
                try:
                    process.terminate()
                except (ProcessLookupError, OSError):
                    pass
        for handle in self.handles:
            if handle is None or handle.process is None:
                continue
            process = handle.process
            if process.returncode is None:
                try:
                    await asyncio.wait_for(process.wait(), GRACE_S)
                except asyncio.TimeoutError:
                    try:
                        process.kill()
                    except (ProcessLookupError, OSError):
                        pass
                    await process.wait()
        if self._atexit_registered:
            atexit.unregister(self._atexit_reap)
            self._atexit_registered = False
        if self._catalog_path is not None:
            try:
                os.unlink(self._catalog_path)
            except OSError:
                pass
            self._catalog_path = None

    def _atexit_reap(self) -> None:
        """Synchronous backstop: no child survives this interpreter.

        Runs at interpreter exit on paths that never awaited
        :meth:`stop`.  Pure signals and polling — the event loop is gone
        by now.
        """
        pids = [
            handle.process.pid
            for handle in self.handles
            if handle is not None and handle.process is not None
            and getattr(handle.process, "pid", None)
            and handle.process.returncode is None
        ]
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except (ProcessLookupError, OSError):
                pass
        deadline = time.monotonic() + GRACE_S
        live = set(pids)
        while live and time.monotonic() < deadline:
            for pid in list(live):
                try:
                    os.kill(pid, 0)
                except (ProcessLookupError, OSError):
                    live.discard(pid)
            if live:
                time.sleep(0.05)
        for pid in live:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
        if self._catalog_path is not None:
            try:
                os.unlink(self._catalog_path)
            except OSError:
                pass
            self._catalog_path = None

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    async def _monitor(self, handle: ShardHostHandle) -> None:
        returncode = await handle.process.wait()
        if self._closing:
            return
        reason = f"shard host exited with code {returncode}"
        await self._on_child_death(handle, reason)

    async def _on_child_death(
        self, handle: ShardHostHandle, reason: str
    ) -> None:
        try:
            await handle.proxy.shutdown()
        except Exception:
            pass
        if self._coordinator is not None:
            self._coordinator.on_shard_lost(handle.shard_id, reason)
        if self.on_crash == "restart":
            try:
                replacement = await self._launch(handle.shard_id)
            except Exception as exc:
                self.failed = f"{reason}; restart failed: {exc}"
                self.crashed.set()
                return
            self.handles[handle.shard_id] = replacement
            if self._coordinator is not None:
                self._coordinator.replace_shard(
                    handle.shard_id, replacement.proxy
                )
                replacement.proxy._t0 = self.t0
            self.crashed.set()
            return
        self.failed = reason
        self.crashed.set()

    # ------------------------------------------------------------------
    # The real spawner
    # ------------------------------------------------------------------
    def _catalog_file(self) -> str:
        if self._catalog_path is None:
            fd, path = tempfile.mkstemp(
                prefix="repro-catalog-", suffix=".json"
            )
            os.close(fd)
            dump_taskset(self.catalog, path)
            self._catalog_path = path
        return self._catalog_path

    async def _spawn_subprocess(self, index: int) -> Tuple[Any, Any, int]:
        argv = [
            sys.executable, "-m", "repro", "shard-host",
            "--catalog", self._catalog_file(),
            "--protocol", self.protocol,
            "--host", self.host,
            "--port", "0",
            "--shard-index", str(index),
            "--t0", repr(self.t0),
            "--deadlock-action", self.config.deadlock_action,
        ]
        if not self.config.kernel:
            argv.append("--no-kernel")
        if not self.config.record_sysceil:
            argv.append("--no-record-sysceil")
        if self.config.honor_early_release:
            argv.append("--honor-early-release")
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=None,
            # Own process group: a Ctrl-C aimed at the parent's terminal
            # must not SIGINT the hosts mid-drain (the supervisor owns
            # their shutdown order).
            start_new_session=True,
        )
        try:
            ready = await asyncio.wait_for(
                process.stdout.readline(), READY_TIMEOUT_S
            )
            info = json.loads(ready.decode("utf-8") or "{}")
            if not info.get("ready"):
                raise ServiceError(
                    f"shard host {index} failed to start: {ready!r}"
                )
            port = int(info["port"])
            proxy = await RemoteShardProxy.connect(
                self.catalog, self.host, port, label=f"shard{index}"
            )
        except BaseException:
            with contextlib.suppress(ProcessLookupError, OSError):
                process.terminate()
            raise
        return process, proxy, port


async def start_proc_deployment(
    catalog: TaskSet,
    protocol: str = "pcp-da",
    *,
    shards: int = 2,
    config: Optional[ServiceConfig] = None,
    partitioner: str = "hash",
    host: str = "127.0.0.1",
    on_crash: str = "fail",
    spawn: Optional[Spawner] = None,
) -> Tuple[ShardSupervisor, ShardedLockManager]:
    """Spawn an N-process deployment and its coordinator, fully wired.

    The returned coordinator is a drop-in
    :class:`~repro.service.sharding.coordinator.ShardedLockManager` —
    serve it, drive it with the loadgen, hand it to the stress harness.
    The caller owns teardown: ``await coordinator.shutdown()`` then
    ``await supervisor.stop()``.
    """
    supervisor = ShardSupervisor(
        catalog, protocol, shards=shards, host=host,
        config=config, on_crash=on_crash, spawn=spawn,
    )
    await supervisor.start()
    try:
        coordinator = ShardedLockManager(
            catalog, protocol, config,
            shards=shards, partitioner=partitioner,
            shard_managers=supervisor.proxies,
        )
    except BaseException:
        await supervisor.stop()
        raise
    # One clock for hosts, proxies, and coordinator: the supervisor's
    # epoch was already handed to every host via --t0.
    coordinator._t0 = supervisor.t0
    for proxy in supervisor.proxies:
        proxy._t0 = supervisor.t0
    supervisor.attach(coordinator)
    return supervisor, coordinator
