"""Sharded lock-manager service: partitioned PCP-DA with a global gate.

The paper's dynamic adjustment of serialization order is what makes
PCP-DA *partitionable*: reader≺writer constraints are recorded at grant
time on whichever shard owns the item, and only need to be reconciled
when a writer tries to commit.  This package splits the item space across
N independent :class:`~repro.service.manager.LockManager` instances (one
asyncio "shard" each, DPCP-p-style local ceilings and inheritance) and
adds a :class:`~repro.service.sharding.coordinator.ShardedLockManager`
that

* routes ``read``/``write`` operations to the owning shard via a
  pluggable :class:`~repro.service.sharding.partitioner.Partitioner`
  (hash or range, on the item id);
* tracks each session's **shard-span** — sessions whose declared access
  set lives on one shard are *local* and take a fast path (their commit
  is delegated wholesale to the home shard), sessions spanning several
  shards are *global* and pay for coordination;
* runs the **commit gate globally**: the per-shard constraint registries
  are aggregated into one merged constraint graph, a committing writer
  parks until every recorded predecessor on every touched shard has
  finished, and the **order guard** additionally holds back reads of
  items that a live transitive predecessor (computed on the merged
  graph) will write;
* installs a cross-shard commit atomically on the event loop (no
  ``await`` between the final gate check and the last shard's install),
  so the client-side serializability replay
  (:func:`repro.db.serializability.check_serializable`) passes unchanged
  on a multi-shard deployment.

See ``docs/SHARDING.md`` for the design write-up, the request-lifecycle
diagram of a cross-shard commit, and the documented limitations
(per-shard priority inheritance; cross-shard cycles are resolved by
victim abort rather than prevented by a global ceiling).
"""

from repro.service.sharding.coordinator import GlobalSession, ShardedLockManager
from repro.service.sharding.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)

__all__ = [
    "GlobalSession",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "ShardedLockManager",
    "make_partitioner",
]
