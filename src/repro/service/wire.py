"""The service wire protocol: one schema for both transports.

Requests and responses are JSON documents; over TCP they travel as
newline-delimited JSON (NDJSON, one document per line, UTF-8).  The
in-process transport used by the test suite calls
:func:`dispatch_request` directly with the same documents, so every byte
of behaviour exercised in-process is the behaviour a remote client sees —
minus the socket.

Request::

    {"id": 7, "op": "read", "session": 3, "item": "x"}

Response::

    {"id": 7, "ok": true, "result": {"value": 42}}
    {"id": 7, "ok": false,
     "error": {"kind": "aborted", "message": "T1#4: deadlock"}}

``id`` is an opaque client-chosen correlation token echoed back verbatim;
clients may pipeline many requests on one connection and match responses
by ``id`` (the server replies in completion order, not arrival order).
Error ``kind`` strings are the stable ``kind`` attributes of the
:class:`~repro.exceptions.ServiceError` hierarchy, which lets the client
library re-raise the matching exception class (see ``ERROR_TYPES``).

The full operation table lives in docs/SERVICE.md.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Type

from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    ReproError,
    ServiceError,
    SessionStateError,
    TransactionAborted,
)
from repro.service.manager import LockManager

#: Bumped on incompatible schema changes; shipped in every ``hello``/
#: ``ping`` response so clients can refuse to talk to the wrong era.
PROTOCOL_VERSION = "repro-service/1"

#: asyncio stream limit for one NDJSON line, both directions.  The default
#: 64 KiB is far too small for ``history`` responses (one row per data
#: event of the whole run); 64 MiB covers multi-minute soak runs.
STREAM_LIMIT = 64 * 1024 * 1024

#: Error ``kind`` → exception class, for client-side re-raising.
ERROR_TYPES: Dict[str, Type[ServiceError]] = {
    cls.kind: cls
    for cls in (
        ServiceError,
        AdmissionError,
        SessionStateError,
        TransactionAborted,
        DeadlineExceeded,
    )
}


def encode(document: Dict[str, Any]) -> bytes:
    """Serialize one wire document to an NDJSON line."""
    return (json.dumps(document, separators=(",", ":")) + "\n").encode("utf-8")


def encode_batch(documents: Iterable[Dict[str, Any]]) -> bytes:
    """Serialize many wire documents to one NDJSON byte block.

    The server's per-tick response batching: every response completing
    within one event-loop tick is coalesced into a single write+drain,
    so pipelined clients pay one syscall per tick instead of one per
    message.
    """
    return b"".join(encode(document) for document in documents)


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one NDJSON line into a wire document."""
    document = json.loads(line.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError("wire document must be a JSON object")
    return document


def error_response(request_id: Any, kind: str, message: str) -> Dict[str, Any]:
    """A failure document echoing the request's correlation id."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success document echoing the request's correlation id."""
    return {"id": request_id, "ok": True, "result": result}


def exception_to_error(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """Map an exception onto a wire error document.

    Service errors keep their stable ``kind``; other library errors (bad
    transaction name, malformed spec) surface as ``bad-request``; anything
    else is an ``internal`` error — the message is included because this
    is a reproduction harness, not a hardened production server.
    """
    if isinstance(exc, ServiceError):
        return error_response(request_id, exc.kind, str(exc))
    if isinstance(exc, (ReproError, KeyError, ValueError, TypeError)):
        return error_response(request_id, "bad-request", str(exc))
    return error_response(request_id, "internal", f"{type(exc).__name__}: {exc}")


async def dispatch_request(
    manager: "LockManager", request: Dict[str, Any]
) -> Dict[str, Any]:
    """Execute one wire request against a manager; never raises.

    This is the single entry point shared by the TCP server and the
    in-process transport — the differential guarantee between them is
    that there is only one code path.  ``manager`` is any object with
    the :class:`LockManager` service surface — in particular a
    :class:`~repro.service.sharding.coordinator.ShardedLockManager`
    works unchanged (sharding adds the ``topology`` op and per-shard
    stats fields, nothing else on the wire).
    """
    request_id = request.get("id")
    manager.stats.requests += 1
    try:
        op = request["op"]
        result = await _execute(manager, op, request)
    except BaseException as exc:  # noqa: BLE001 - mapped onto the wire
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return exception_to_error(request_id, exc)
    return ok_response(request_id, result)


async def _execute(
    manager: "LockManager", op: str, request: Dict[str, Any]
) -> Dict[str, Any]:
    if op == "ping":
        return {"pong": True, "version": PROTOCOL_VERSION,
                "protocol": manager.protocol.name,
                "shards": getattr(manager, "shard_count", 1)}
    if op == "catalog":
        return {
            "protocol": manager.protocol.name,
            "version": PROTOCOL_VERSION,
            "transactions": manager.catalog_document(),
        }
    if op == "begin":
        session = await manager.begin(
            request["transaction"], deadline_s=request.get("deadline_s")
        )
        return {
            "session": session.id,
            "name": session.name,
            "priority": session.priority,
        }
    if op == "read":
        session = manager.session(request["session"])
        value = await manager.read(session, request["item"])
        return {"value": value}
    if op == "write":
        session = manager.session(request["session"])
        await manager.write(session, request["item"], request["value"])
        return {"buffered": True}
    if op == "commit":
        session = manager.session(request["session"])
        return await manager.commit(session)
    if op == "abort":
        session = manager.session(request["session"])
        await manager.abort(session, request.get("reason", "client"))
        return {"aborted": True}
    if op == "stats":
        return manager.stats_document()
    if op == "history":
        return {"events": manager.history_events()}
    if op == "topology":
        if hasattr(manager, "topology_document"):
            return manager.topology_document()
        # Unsharded manager: one implicit shard owning the whole catalog.
        return {
            "shards": 1,
            "partitioner": "none",
            "scheme": "unsharded (single lock manager)",
            "assignment": {"0": sorted(manager.catalog.items)},
        }
    raise ValueError(f"unknown operation {op!r}")
