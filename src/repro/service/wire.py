"""The service wire protocol: one schema for both transports.

Requests and responses are JSON documents; over TCP they travel as
newline-delimited JSON (NDJSON, one document per line, UTF-8).  The
in-process transport used by the test suite calls
:func:`dispatch_request` directly with the same documents, so every byte
of behaviour exercised in-process is the behaviour a remote client sees —
minus the socket.

Request::

    {"id": 7, "op": "read", "session": 3, "item": "x"}

Response::

    {"id": 7, "ok": true, "result": {"value": 42}}
    {"id": 7, "ok": false,
     "error": {"kind": "aborted", "message": "T1#4: deadlock"}}

``id`` is an opaque client-chosen correlation token echoed back verbatim;
clients may pipeline many requests on one connection and match responses
by ``id`` (the server replies in completion order, not arrival order).
Error ``kind`` strings are the stable ``kind`` attributes of the
:class:`~repro.exceptions.ServiceError` hierarchy, which lets the client
library re-raise the matching exception class (see ``ERROR_TYPES``).

Version 2 adds server-pushed **event frames** — documents with an
``event`` key and *no* ``id`` — which a shard host emits to subscribed
connections so ``churn_listeners`` / ``decision_listeners``
notifications stream to a remote coordinator::

    {"event": "churn", "kind": "constraint", "job": "T1#4", "other": "T2#0"}
    {"event": "decision", "job": "T1#4", "item": "x", "mode": "read",
     "outcome": "granted", "rule": "LC3", "time": 0.17, "blockers": []}

Frames are emitted synchronously while the triggering request is being
dispatched and travel through the same per-connection batch buffer as
responses, so on one connection every frame precedes the response of the
operation that caused it — the ordering the proxy's mirrors rely on.
Clients that never send ``subscribe`` never receive a frame; clients of
a different protocol era get a clear ``version`` error from ``hello``.

The full operation table lives in docs/SERVICE.md.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Iterable, Optional, Type

from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    ProtocolVersionError,
    ReproError,
    ServiceError,
    SessionStateError,
    TransactionAborted,
)
from repro.model.spec import LockMode
from repro.service.manager import LockManager
from repro.trace.recorder import LockEvent, LockOutcome

#: Bumped on incompatible schema changes; shipped in every ``hello``/
#: ``ping`` response so clients can refuse to talk to the wrong era.
#: v2: event frames, ``hello`` negotiation, and the shard-host operation
#: family (``subscribe`` / ``prepare`` / ``unprepare`` / ``force_abort``
#: / ``wait_graph`` / ``set_seq``).
PROTOCOL_VERSION = "repro-service/2"

#: Optional capabilities a ``hello`` may negotiate.  ``events`` is the
#: server-push frame stream; ``shard-ops`` is the coordinator-facing
#: operation family a shard host exposes.
FEATURES = frozenset({"events", "shard-ops"})

#: asyncio stream limit for one NDJSON line, both directions.  The default
#: 64 KiB is far too small for ``history`` responses (one row per data
#: event of the whole run); 64 MiB covers multi-minute soak runs.
STREAM_LIMIT = 64 * 1024 * 1024

#: Error ``kind`` → exception class, for client-side re-raising.
ERROR_TYPES: Dict[str, Type[ServiceError]] = {
    cls.kind: cls
    for cls in (
        ServiceError,
        AdmissionError,
        SessionStateError,
        TransactionAborted,
        DeadlineExceeded,
        ProtocolVersionError,
    )
}


def encode(document: Dict[str, Any]) -> bytes:
    """Serialize one wire document to an NDJSON line."""
    return (json.dumps(document, separators=(",", ":")) + "\n").encode("utf-8")


def encode_batch(documents: Iterable[Dict[str, Any]]) -> bytes:
    """Serialize many wire documents to one NDJSON byte block.

    The server's per-tick response batching: every response completing
    within one event-loop tick is coalesced into a single write+drain,
    so pipelined clients pay one syscall per tick instead of one per
    message.
    """
    return b"".join(encode(document) for document in documents)


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one NDJSON line into a wire document."""
    document = json.loads(line.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError("wire document must be a JSON object")
    return document


def error_response(request_id: Any, kind: str, message: str) -> Dict[str, Any]:
    """A failure document echoing the request's correlation id."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success document echoing the request's correlation id."""
    return {"id": request_id, "ok": True, "result": result}


def exception_to_error(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """Map an exception onto a wire error document.

    Service errors keep their stable ``kind``; other library errors (bad
    transaction name, malformed spec) surface as ``bad-request``; anything
    else is an ``internal`` error — the message is included because this
    is a reproduction harness, not a hardened production server.
    """
    if isinstance(exc, ServiceError):
        return error_response(request_id, exc.kind, str(exc))
    if isinstance(exc, (ReproError, KeyError, ValueError, TypeError)):
        return error_response(request_id, "bad-request", str(exc))
    return error_response(request_id, "internal", f"{type(exc).__name__}: {exc}")


async def dispatch_request(
    manager: "LockManager", request: Dict[str, Any]
) -> Dict[str, Any]:
    """Execute one wire request against a manager; never raises.

    This is the single entry point shared by the TCP server and the
    in-process transport — the differential guarantee between them is
    that there is only one code path.  ``manager`` is any object with
    the :class:`LockManager` service surface — in particular a
    :class:`~repro.service.sharding.coordinator.ShardedLockManager`
    works unchanged (sharding adds the ``topology`` op and per-shard
    stats fields, nothing else on the wire).
    """
    request_id = request.get("id")
    manager.stats.requests += 1
    try:
        op = request["op"]
        result = await _execute(manager, op, request)
    except BaseException as exc:  # noqa: BLE001 - mapped onto the wire
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return exception_to_error(request_id, exc)
    return ok_response(request_id, result)


async def _maybe_await(value: Any) -> Any:
    """Resolve a possibly-async introspection result.

    A plain :class:`LockManager` answers ``stats_document`` /
    ``history_events`` synchronously; a coordinator over remote shards
    must fetch the shard documents over the wire and returns a
    coroutine.  The wire layer accepts either so both deployments serve
    the same operation table.
    """
    if asyncio.iscoroutine(value):
        return await value
    return value


def _shard_surface(manager: "LockManager", op: str) -> None:
    if not hasattr(manager, "prepare_commit"):
        raise ValueError(
            f"{op}: this server is not a shard host "
            "(the operation targets a single LockManager shard)"
        )


async def _execute(
    manager: "LockManager", op: str, request: Dict[str, Any]
) -> Dict[str, Any]:
    if op == "ping":
        return {"pong": True, "version": PROTOCOL_VERSION,
                "protocol": manager.protocol.name,
                "shards": getattr(manager, "shard_count", 1)}
    if op == "hello":
        return _hello(manager, request)
    if op == "catalog":
        return {
            "protocol": manager.protocol.name,
            "version": PROTOCOL_VERSION,
            "transactions": manager.catalog_document(),
        }
    if op == "begin":
        kwargs: Dict[str, Any] = {"deadline_s": request.get("deadline_s")}
        if request.get("instance") is not None:
            kwargs["instance"] = request["instance"]
        session = await manager.begin(request["transaction"], **kwargs)
        if request.get("seq") is not None:
            # Coordinator tie-break pin: the global session id replaces
            # the shard-local arrival sequence (see docs/SHARDING.md).
            session.job.seq = request["seq"]
        return {
            "session": session.id,
            "name": session.name,
            "priority": session.priority,
        }
    if op == "read":
        session = manager.session(request["session"])
        value = await manager.read(session, request["item"])
        return {"value": value}
    if op == "write":
        session = manager.session(request["session"])
        await manager.write(session, request["item"], request["value"])
        return {"buffered": True}
    if op == "commit":
        session = manager.session(request["session"])
        return await manager.commit(session)
    if op == "abort":
        session = manager.session(request["session"])
        await manager.abort(session, request.get("reason", "client"))
        return {"aborted": True}
    if op == "set_seq":
        _shard_surface(manager, op)
        session = manager.session(request["session"])
        session.job.seq = request["seq"]
        return {"seq": request["seq"]}
    if op == "prepare":
        _shard_surface(manager, op)
        session = manager.session(request["session"])
        gate = manager.prepare_commit(session)
        return {"prepared": True, "gate": list(gate)}
    if op == "unprepare":
        _shard_surface(manager, op)
        session = manager.session(request["session"])
        manager.unprepare_commit(session)
        return {"prepared": False}
    if op == "force_abort":
        _shard_surface(manager, op)
        session = manager.session(request["session"])
        manager.force_abort(session, request.get("reason", "coordinator"))
        return {"aborted": True}
    if op == "wait_graph":
        _shard_surface(manager, op)
        edges = {
            waiter.name: sorted(b.name for b in manager.waits.blockers_of(waiter))
            for waiter in manager.waits.waiters()
        }
        return {"edges": edges}
    if op == "stats":
        return await _maybe_await(manager.stats_document())
    if op == "history":
        return {"events": await _maybe_await(manager.history_events())}
    if op == "topology":
        if hasattr(manager, "topology_document"):
            return manager.topology_document()
        # Unsharded manager: one implicit shard owning the whole catalog.
        return {
            "shards": 1,
            "partitioner": "none",
            "scheme": "unsharded (single lock manager)",
            "assignment": {"0": sorted(manager.catalog.items)},
        }
    raise ValueError(f"unknown operation {op!r}")


def _hello(manager: "LockManager", request: Dict[str, Any]) -> Dict[str, Any]:
    """Version/feature negotiation.

    Major versions (the part after the ``/``) must match exactly; the
    mismatch error names both sides so a ``repro-service/1`` client gets
    an actionable message instead of silently mis-parsing event frames.
    Features are granted as the intersection of what the client asked
    for and what this server implements.
    """
    client_version = str(request.get("version", "") or "")
    client_era = client_version.partition("/")[2]
    server_era = PROTOCOL_VERSION.partition("/")[2]
    if client_era != server_era:
        raise ProtocolVersionError(
            f"incompatible wire protocol: client speaks "
            f"{client_version or 'an unknown version'!r}, server speaks "
            f"{PROTOCOL_VERSION!r} (event-frame servers require matching "
            "versions; upgrade the older side)"
        )
    requested = request.get("features") or ()
    return {
        "version": PROTOCOL_VERSION,
        "protocol": manager.protocol.name,
        "features": sorted(FEATURES.intersection(requested)),
    }


# ----------------------------------------------------------------------
# Event frames (server push, v2)
# ----------------------------------------------------------------------

#: Churn kinds a shard host streams; mirrors ``LockManager`` churn
#: notifications plus ``unwait`` (a waiter left the wait-for graph
#: without terminating), which remote mirrors need but in-process
#: listeners can derive from re-decides.
CHURN_KINDS = ("constraint", "wait", "unwait", "abort", "finish")


def is_event(document: Dict[str, Any]) -> bool:
    """True for a server-pushed frame (no correlation id, ``event`` key)."""
    return "event" in document and "id" not in document


def churn_frame(
    kind: str,
    job: str,
    other: Optional[str] = None,
    *,
    blockers: Optional[Iterable[str]] = None,
    reason: Optional[str] = None,
) -> Dict[str, Any]:
    """Encode one churn notification as a push frame.

    ``other`` carries the successor job of a ``constraint`` edge;
    ``blockers`` the current blocker set of a ``wait``; ``reason`` the
    abort reason of an ``abort``.  Absent fields are omitted from the
    frame rather than sent as nulls.
    """
    if kind not in CHURN_KINDS:
        raise ValueError(f"unknown churn kind {kind!r}")
    frame: Dict[str, Any] = {"event": "churn", "kind": kind, "job": job}
    if other is not None:
        frame["other"] = other
    if blockers is not None:
        frame["blockers"] = sorted(blockers)
    if reason is not None:
        frame["reason"] = reason
    return frame


def decision_frame(event: LockEvent) -> Dict[str, Any]:
    """Encode one protocol decision as a push frame."""
    return {
        "event": "decision",
        "time": event.time,
        "job": event.job,
        "item": event.item,
        "mode": event.mode.value,
        "outcome": event.outcome.value,
        "rule": event.rule,
        "blockers": list(event.blockers),
    }


def decision_from_frame(frame: Dict[str, Any]) -> LockEvent:
    """Decode a decision frame back into the in-process event object."""
    return LockEvent(
        time=frame["time"],
        job=frame["job"],
        item=frame["item"],
        mode=LockMode(frame["mode"]),
        outcome=LockOutcome(frame["outcome"]),
        rule=frame["rule"],
        blockers=tuple(frame.get("blockers", ())),
    )
