"""The asyncio lock-manager runtime: sessions, grant queues, commit.

This is the transport-agnostic heart of the service.  One
:class:`LockManager` owns exactly the objects a :class:`Simulator` owns —
a :class:`~repro.engine.lock_table.LockTable`, a
:class:`~repro.engine.inheritance.WaitForGraph`, a
:class:`~repro.db.database.Database`, a committed
:class:`~repro.db.history.History`, a
:class:`~repro.trace.recorder.TraceRecorder` — and drives them from client
requests arriving on the event loop instead of from a virtual-time
calendar.  Admission decisions are made by the *same* protocol objects the
simulator uses (``protocol.decide``), so the service's grant/deny
behaviour is the simulator's by construction; the differential battery in
``tests/test_service_differential.py`` pins that claim.

Concurrency model (docs/SERVICE.md has the full write-up):

* every state mutation happens synchronously between ``await`` points on
  one event loop, so decide→grant pairs are atomic and the lock table is
  never observed mid-update;
* a denied request parks in the **grant queue** — an ordered table of
  waiters — and its blockers inherit the requester's priority through the
  shared wait-for graph, exactly as in the engine;
* every lock release re-services the grant queue in (running priority,
  earliest deadline, FIFO) order, re-evaluating against the protocol's
  locking conditions exactly the waiters the release can affect (an
  item→waiters index plus each denial's blame set select them; every
  other denial is invariant under the churn); "wake" and "grant" are one
  atomic step here because there is no CPU to schedule, unlike the
  simulator's wake-then-retry dance;
* commits install deferred writes from the session workspace into the
  shared database under a monotonic service clock, so the recorded
  history replays through :func:`repro.db.serializability.check_serializable`
  unchanged.

Deadlines are *firm*: an expired session is aborted at its next operation
boundary, or mid-wait via the grant-queue timeout, mirroring the
simulator's ``on_miss="abort"`` policy.

Serialization-order enforcement (the concurrency delta vs the simulator):

PCP-DA's LC3/LC4 let a reader pass an item's *write* lock — the paper's
"dynamic adjustment": the reader observes the committed version and is
therefore serialized *before* the still-running writer.  On a single CPU
the priority scheduler enforces that order for free (the higher-priority
reader runs to completion before the writer regains the CPU); with truly
concurrent clients nothing does, and the writer could commit mid-flight
and leak its installs to the reader — a cycle the serializability oracle
duly reports.  The manager therefore makes the adjusted order explicit:

* a granted read on an item with live write holders records a
  ``reader ≺ writer`` constraint for each holder (the constraint graph
  stays acyclic because the order guard below refuses reads that would
  close a cycle);
* **commit gate** — a session with live ``≺``-predecessors parks its
  commit until they finish, so its installs can never be observed by a
  transaction serialized before it;
* **order guard** — a read of an item inside a live predecessor's write
  set is held back (this is the Table-1 footnote condition
  ``DataRead ∩ WriteSet = ∅`` carried forward in time: the footnote
  checks past reads at grant, the guard prevents future ones).

Gate and guard waits are service-level: they join the shared wait-for
graph (so blockers inherit priority and cycles are visible), and a cycle
that involves one is resolved by aborting its lowest-priority member —
the one place the live service may abort under a protocol the paper
proves abort-free, and the honest price of dropping the single-CPU
assumption.  Pure lock cycles under a ``can_deadlock=False`` protocol
remain :class:`InvariantViolation`s, exactly as in the simulator.
"""

from __future__ import annotations

import asyncio
import enum
import heapq
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.db.database import Database
from repro.db.history import History
from repro.engine.inheritance import WaitForGraph
from repro.engine.interfaces import (
    AbortAndGrant,
    ConcurrencyControlProtocol,
    Deny,
    Grant,
    InstallPolicy,
)
from repro.engine.job import Job
from repro.engine.kernel import build_kernel
from repro.engine.lock_table import LockTable
from repro.engine.simulator import SimulationResult
from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    InvariantViolation,
    ServiceError,
    SessionStateError,
    SpecificationError,
    TransactionAborted,
)
from repro.model.spec import LockMode, TaskSet
from repro.model.validation import validate_taskset
from repro.protocols import make_protocol
from repro.service.eventloop import loop_implementation
from repro.service.stats import ServiceStats
from repro.trace.recorder import (
    LockEvent,
    LockOutcome,
    SchedEventKind,
    TraceRecorder,
)


def catalog_document(catalog: TaskSet) -> List[Dict[str, Any]]:
    """JSON-friendly description of a catalog's transaction types.

    Shared by :meth:`LockManager.catalog_document` and the remote shard
    proxy, which answers the same query from its local catalog copy
    without a round-trip (the catalog is static and identical on every
    host by construction).
    """
    return [
        {
            "name": spec.name,
            "priority": spec.priority,
            "operations": [
                {
                    "kind": op.kind.value,
                    "item": op.item,
                    "duration": op.duration,
                }
                for op in spec.operations
            ],
            "reads": sorted(spec.read_set),
            "writes": sorted(spec.write_set),
        }
        for spec in catalog
    ]


class SessionState(enum.Enum):
    """Lifecycle of a service session (one transaction instance)."""

    ACTIVE = "active"        # may issue operations
    WAITING = "waiting"      # parked in the grant queue
    COMMITTED = "committed"  # terminal: writes installed
    ABORTED = "aborted"      # terminal: workspace discarded

    @property
    def live(self) -> bool:
        return self in (SessionState.ACTIVE, SessionState.WAITING)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`LockManager`.

    Attributes:
        max_sessions: admission-control cap on concurrently live sessions;
            ``begin`` raises :class:`AdmissionError` beyond it (``None`` =
            unbounded).
        default_deadline_s: relative deadline applied to sessions that do
            not specify one (``None`` = no deadline).
        deadlock_action: ``"abort_lowest"`` (default) aborts the
            lowest-base-priority session in a detected wait cycle —
            relevant only for protocols declaring ``can_deadlock``;
            ``"raise"`` surfaces the cycle as an error to the requester.
            For deadlock-free protocols (PCP-DA and family) a cycle is
            *always* reported as an :class:`InvariantViolation`: the paper
            proves it cannot happen, so it must not be silently resolved.
        record_sysceil: sample the protocol's global system ceiling into
            the trace after every lock churn (cheap with the incremental
            ceiling index; disable for maximum throughput).
        honor_early_release: apply the protocol's ``after_operation``
            early-unlock hook (CCP).  Off by default: releasing read locks
            before commit is only safe under the single-CPU scheduling
            the simulator provides, so the service holds every lock to
            commit unless explicitly asked to reproduce simulator
            behaviour.
        kernel: serve admissions from the array kernel
            (:mod:`repro.engine.kernel`) when the protocol compiles to a
            decision table; the object path remains the reference.  The
            grant/deny behaviour is identical by construction (the
            simulator's golden corpus and the service differential battery
            both pin it), so this is purely a throughput switch.
    """

    max_sessions: Optional[int] = None
    default_deadline_s: Optional[float] = None
    deadlock_action: str = "abort_lowest"
    record_sysceil: bool = True
    honor_early_release: bool = False
    kernel: bool = True

    def __post_init__(self) -> None:
        if self.deadlock_action not in ("abort_lowest", "raise"):
            raise SpecificationError(
                f"unknown deadlock_action {self.deadlock_action!r}"
            )
        if self.max_sessions is not None and self.max_sessions < 1:
            raise SpecificationError("max_sessions must be >= 1")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise SpecificationError("default_deadline_s must be positive")


class Session:
    """One live transaction: a :class:`Job` plus service bookkeeping.

    The embedded job is a *real* engine job — the protocols read its
    ``running_priority`` / ``data_read`` / ``spec`` exactly as they would
    inside the simulator, and its block intervals accumulate the same
    blocking statistics the paper's figures are built from.
    """

    __slots__ = ("id", "job", "state", "deadline", "opened_at", "op_count",
                 "abort_reason", "committing")

    def __init__(self, session_id: int, job: Job, opened_at: float,
                 deadline: Optional[float]):
        self.id = session_id
        self.job = job
        self.state = SessionState.ACTIVE
        #: Absolute deadline on the service clock, or None.
        self.deadline = deadline
        self.opened_at = opened_at
        #: Completed data operations (drives the CCP early-unlock hook).
        self.op_count = 0
        self.abort_reason = ""
        #: Commit fence flag (see :meth:`LockManager.prepare_commit`).
        self.committing = False

    @property
    def name(self) -> str:
        """The underlying job's instance name (``"T2#7"``)."""
        return self.job.name

    @property
    def priority(self) -> int:
        """The job's base priority (wire ``begin`` reports this; the
        sharded coordinator exposes the same attribute on its sessions)."""
        return self.job.base_priority


@dataclass
class _Waiter:
    """Grant-queue entry for one parked lock request."""

    session: Session
    item: str
    mode: LockMode
    future: "asyncio.Future[str]"
    parked_at: float
    #: Latest denial reason; "order guard ..." marks a service-level wait.
    reason: str = ""
    #: Blame set of the latest denial — the jobs whose lock churn could
    #: flip this decision.  Drives the partial re-decide in
    #: :meth:`LockManager._service_grant_queue`.
    blockers: Tuple[Job, ...] = ()
    #: The requester's running priority when last decided; a later change
    #: can flip LC2/LC3, so any delta re-queues the waiter.
    decided_priority: int = 0


class LockManager:
    """Serve lock requests from concurrent clients under one protocol.

    Args:
        catalog: the registered transaction types (a :class:`TaskSet` with
            total-order priorities).  Ceilings are static information, so
            the protocol family needs the catalog up front — a session is
            an *instance* of a catalog transaction, exactly like a job is
            an instance of a spec in the simulator.
        protocol: a protocol name (``"pcp-da"``) or a pre-built instance.
        config: see :class:`ServiceConfig`.
    """

    def __init__(
        self,
        catalog: TaskSet,
        protocol: Union[str, ConcurrencyControlProtocol] = "pcp-da",
        config: Optional[ServiceConfig] = None,
    ) -> None:
        validate_taskset(catalog, require_priorities=True)
        self.catalog = catalog
        self.config = config or ServiceConfig()
        if isinstance(protocol, str):
            protocol = make_protocol(protocol)
        self.protocol = protocol
        self.table = LockTable()
        self.waits = WaitForGraph()
        self.db = Database(sorted(catalog.items))
        self.history = History()
        self.trace = TraceRecorder()
        #: Callbacks fired synchronously on every recorded lock decision
        #: (grants, denials, abort-grants) with the :class:`LockEvent`.
        #: The parity harness (:mod:`repro.verify.parity`) uses this to
        #: capture a decision sequence in global order — including across
        #: the shards of a coordinator, where per-shard traces interleave.
        self.decision_listeners: List[Callable[[LockEvent], None]] = []
        #: Callbacks fired synchronously on lock churn, for embedders that
        #: maintain derived state (the shard coordinator).  Signature is
        #: ``listener(kind, job, other)`` with kinds:
        #:
        #: * ``"constraint"`` — an LC3/LC4 read recorded ``job ≺ other``;
        #: * ``"finish"`` / ``"abort"`` — ``job`` reached a terminal state
        #:   (``"abort"`` fires after the teardown is complete);
        #: * ``"wait"`` — ``job`` parked on (or re-pointed) a wait edge;
        #: * ``"unwait"`` — ``job`` left the wait-for graph without
        #:   terminating (grant, gate exit).  In-process consumers can
        #:   ignore it; remote wait-graph mirrors need it.
        self.churn_listeners: List[
            Callable[[str, Job, Optional[Job]], None]
        ] = []
        self.stats = ServiceStats()
        self.protocol.bind(catalog, self.table)
        self.protocol.bind_runtime(self.waits)
        #: Array kernel serving decide/system_ceiling when the protocol
        #: compiles to a table; ``None`` keeps the object path.
        self.kernel = (
            build_kernel(self.protocol, self.table, self.waits)
            if self.config.kernel
            else None
        )
        if self.kernel is not None:
            self._decide = self.kernel.decide
            self._sysceil = self.kernel.system_ceiling
        else:
            self._decide = self.protocol.decide
            self._sysceil = self.protocol.system_ceiling
        # Skip priority_floor calls for protocols using the inert default
        # (recompute_priorities then resets to base without N floor calls).
        self._floor = (
            None
            if type(self.protocol).priority_floor
            is ConcurrencyControlProtocol.priority_floor
            else self.protocol.priority_floor
        )

        self._sessions: Dict[int, Session] = {}
        self._by_job: Dict[Job, Session] = {}
        self._live: Dict[Session, None] = {}   # insertion-ordered set
        self._waiters: Dict[Session, _Waiter] = {}
        #: item -> sessions parked on it (partial re-decide index).
        self._item_waiters: Dict[str, Set[Session]] = {}
        #: Lock churn since the last grant-queue drain: items whose locks
        #: were released and the jobs that released them.  Terminal
        #: transitions and early unlocks feed these; the drain re-decides
        #: only the waiters they can affect.
        self._churn_items: Set[str] = set()
        self._churn_jobs: Set[Job] = set()
        # Serialization-order constraints among LIVE jobs (see module
        # docstring): _pred[w] = {s: s ≺ w}, _succ[s] = {w: s ≺ w}.
        self._pred: Dict[Job, Set[Job]] = {}
        self._succ: Dict[Job, Set[Job]] = {}
        #: Memoized transitive closures over ``_pred``, dirtied wholesale
        #: on any constraint-graph edit (see :meth:`_transitive_preds`).
        self._preds_cache: Dict[Job, Set[Job]] = {}
        #: Sessions parked at the commit gate, with their wake-up futures.
        self._gate_futures: Dict[Session, "asyncio.Future[None]"] = {}
        #: Commit-fenced sessions (see :meth:`prepare_commit`): while a
        #: job is in here, reads may not pass its write locks.
        self._committing: Dict[Job, Session] = {}
        self._next_session_id = 0
        self._instances: Dict[str, int] = {}
        self._t0 = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the manager started (the service clock)."""
        return time.monotonic() - self._t0

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    async def begin(
        self,
        transaction: str,
        *,
        deadline_s: Optional[float] = None,
        instance: Optional[int] = None,
    ) -> Session:
        """Open a session executing one instance of ``transaction``.

        ``instance`` pins the instance number instead of drawing from the
        manager's own counter — the shard coordinator uses this so every
        leg of one global transaction carries the same name on every
        shard (the counter is bumped past the pin, so mixed use stays
        collision-free).

        Raises:
            AdmissionError: the ``max_sessions`` backpressure cap is hit.
            SpecificationError: unknown transaction name.
            ServiceError: the manager is shut down.
        """
        self._ensure_open()
        spec = self.catalog[transaction]
        limit = self.config.max_sessions
        if limit is not None and len(self._live) >= limit:
            self.stats.sessions_rejected += 1
            raise AdmissionError(
                f"session limit reached ({limit} live sessions); retry later"
            )
        now = self.now()
        if instance is None:
            instance = self._instances.get(transaction, 0)
            self._instances[transaction] = instance + 1
        else:
            self._instances[transaction] = max(
                self._instances.get(transaction, 0), instance + 1
            )
        job = Job(spec, instance, now)
        session = Session(self._next_session_id, job, now, None)
        self._next_session_id += 1
        relative = (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        if relative is not None:
            session.deadline = now + relative
        self._sessions[session.id] = session
        self._by_job[job] = session
        self._live[session] = None
        self.stats.sessions_started += 1
        self.trace.sched(now, SchedEventKind.ARRIVAL, job.name)
        return session

    def session(self, session_id: int) -> Session:
        """Look up a session by id (for the wire layer)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionStateError(f"unknown session {session_id}") from None

    async def read(self, session: Session, item: str) -> Any:
        """Read ``item``, acquiring the read lock first if needed.

        Returns the observed value: the session's own buffered write when
        one exists, otherwise the committed version bound on first read
        (re-reads return the same version — locks are held to commit).
        """
        self._pre_op(session, item, LockMode.READ)
        job = session.job
        if job.workspace.has_write(item):
            # Own deferred write: intra-transaction, no lock, no history.
            return job.workspace.written_value(item)
        if not (
            self.table.holds(job, item, LockMode.READ)
            or self.table.holds(job, item, LockMode.WRITE)
        ):
            await self._acquire(session, item, LockMode.READ)
        record = job.workspace.read_record(item)
        if record is not None:
            return record.value  # re-read under the held lock
        now = self.now()
        version = self.db.read_committed(item)
        job.data_read.add(item)
        job.workspace.note_read(item, version.seq, now, value=version.value)
        self.history.record_read(job.name, item, version.seq, now)
        self._after_data_op(session)
        return version.value

    async def write(self, session: Session, item: str, value: Any) -> None:
        """Buffer a deferred write of ``value`` to ``item``.

        The write-lock request goes through the protocol (LC1 for PCP-DA);
        the value stays in the session workspace until commit.
        """
        self._pre_op(session, item, LockMode.WRITE)
        job = session.job
        if not self.table.holds(job, item, LockMode.WRITE):
            await self._acquire(session, item, LockMode.WRITE)
        job.workspace.buffer_write(item, value)
        self._after_data_op(session)

    async def commit(self, session: Session) -> Dict[str, Any]:
        """Commit: install buffered writes atomically, release all locks.

        Returns a summary dict (installed items, latency, blocking time).
        """
        self._pre_op(session, None, None)
        job = session.job
        # Commit gate: transactions serialized before this one (they read
        # past its write locks) must finish first, or they could observe
        # this commit's installs and close a serialization cycle.
        while True:
            predecessors = tuple(sorted(
                self._pred.get(job, ()), key=lambda j: j.seq
            ))
            if not predecessors:
                break
            await self._gate_on(session, predecessors)
        victims = self.protocol.before_commit(job)
        if victims:
            # Validation-based protocols (OCC-BC): broadcast-abort the
            # readers this commit invalidates.  Unlike the simulator there
            # is no restart — the client owning the session retries.
            for victim in tuple(victims):
                self._abort_session(
                    self._by_job[victim], "validation",
                    exc=TransactionAborted(
                        f"{victim.name} aborted by {job.name}'s commit "
                        "(validation)"
                    ),
                )
        now = self.now()
        installed = []
        if self.protocol.install_policy is InstallPolicy.AT_COMMIT:
            for item in sorted(job.workspace.pending_writes):
                value = job.workspace.written_value(item)
                version = self.db.install(item, value, job.name, now)
                self.history.record_install(job.name, item, version.seq, now)
                installed.append(item)
        self.history.record_commit(job.name, now)
        self._finish(session, SessionState.COMMITTED, now)
        job.finish_time = now
        self.trace.sched(now, SchedEventKind.COMMIT, job.name)
        latency = now - session.opened_at
        blocking = job.total_blocking_time()
        self.stats.record_commit(job.base_priority, latency)
        self._service_grant_queue()
        return {
            "installed": installed,
            "latency_s": latency,
            "blocking_s": blocking,
        }

    def prepare_commit(self, session: Session) -> Tuple[str, ...]:
        """Fence the session for a coordinator-driven cross-shard install.

        Used by the multi-process deployment, where installing one
        global commit leg per shard takes a wire round-trip each: the
        coordinator fences every leg first, so no reader can slip past a
        write lock (recording a ``reader ≺ committer`` constraint) after
        the coordinator's last merged-gate check.  Reads denied by the
        fence park in the grant queue and are re-decided when the fence
        drops — at the leg's commit (they then read the installed
        version) or at :meth:`unprepare_commit` (the coordinator backed
        off to wait at its gate).

        Returns the names of the session's current live local
        ``≺``-predecessors, so the coordinator can re-check its merged
        gate once every leg is fenced.  Sync on purpose: the in-process
        coordinator calls it inside its atomic commit section.
        """
        if not session.state.live:
            raise TransactionAborted(
                f"{session.name}: {session.abort_reason or 'not live'}"
            )
        session.committing = True
        self._committing[session.job] = session
        return tuple(sorted(
            p.name for p in self._pred.get(session.job, ())
        ))

    def unprepare_commit(self, session: Session) -> None:
        """Drop a commit fence without committing (coordinator back-off).

        Re-services the grant queue so reads the fence parked are
        re-decided — they pass the write locks again (LC3/LC4) exactly
        as if the fence had never existed.
        """
        if self._committing.pop(session.job, None) is None:
            return
        session.committing = False
        # Fence denials blame the fenced job; dropping the fence is churn
        # on that job, which re-selects exactly those waiters.
        self._note_release_churn(session.job, ())
        self._service_grant_queue()

    async def abort(self, session: Session, reason: str = "client") -> None:
        """Abort the session: discard its workspace, release its locks."""
        if not session.state.live:
            raise SessionStateError(
                f"{session.name}: cannot abort a {session.state.value} session"
            )
        if session.state is SessionState.WAITING:
            raise SessionStateError(
                f"{session.name}: another operation is waiting for a lock"
            )
        self._abort_session(session, reason, forced=False)
        self._service_grant_queue()

    async def shutdown(self) -> None:
        """Abort every live session and refuse further requests."""
        if self._closed:
            return
        self._closed = True
        for session in list(self._live):
            self._abort_session(
                session, "shutdown",
                exc=TransactionAborted("service shutting down"),
            )
        self._service_grant_queue()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_sessions(self) -> Tuple[Session, ...]:
        """Currently live (active or waiting) sessions, oldest first."""
        return tuple(self._live)

    def system_ceiling(self) -> int:
        """The current global system ceiling (kernel-backed when active)."""
        return self._sysceil(None)

    def stats_document(self) -> Dict[str, Any]:
        """The ``stats`` command payload: counters + live-state gauges."""
        doc = self.stats.to_dict()
        doc["live_sessions"] = len(self._live)
        doc["waiting_sessions"] = len(self._waiters)
        doc["protocol"] = self.protocol.name
        doc["uptime_s"] = self.now()
        doc["system_ceiling"] = self.system_ceiling()
        doc["decision_path"] = "kernel" if self.kernel is not None else "object"
        doc["event_loop"] = loop_implementation()
        return doc

    def history_events(self) -> List[Dict[str, Any]]:
        """The observable history as JSON-friendly rows (oracle replay)."""
        return [
            {
                "kind": event.kind.value,
                "job": event.job,
                "item": event.item,
                "version_seq": event.version_seq,
                "time": event.time,
            }
            for event in self.history
        ]

    def catalog_document(self) -> List[Dict[str, Any]]:
        """The registered transaction types (the ``catalog`` command)."""
        return catalog_document(self.catalog)

    def snapshot_result(self) -> SimulationResult:
        """Package the run so far as a :class:`SimulationResult`.

        This is what lets the live path reuse the simulator's oracles
        verbatim: ``check_serializable()`` replays the history, and the
        trace metrics/exports consume the recorder exactly as they would a
        simulated run.
        """
        return SimulationResult(
            taskset=self.catalog,
            protocol_name=self.protocol.name,
            jobs=tuple(s.job for s in self._sessions.values()),
            history=self.history,
            trace=self.trace,
            database=self.db,
            end_time=self.now(),
        )

    # ------------------------------------------------------------------
    # Operation plumbing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("lock manager is shut down")

    def _trace_lock(
        self,
        time: float,
        job_name: str,
        item: str,
        mode: LockMode,
        outcome: LockOutcome,
        rule: str,
        blockers: Tuple[str, ...] = (),
    ) -> None:
        """Record one lock decision and fan it out to the listeners."""
        event = LockEvent(time, job_name, item, mode, outcome, rule, blockers)
        self.trace.lock_events.append(event)
        for listener in self.decision_listeners:
            listener(event)

    def _notify_churn(
        self, kind: str, job: Job, other: Optional[Job] = None
    ) -> None:
        """Fan one churn event out to the registered listeners."""
        for listener in self.churn_listeners:
            listener(kind, job, other)

    def _note_release_churn(self, job: Job, items) -> None:
        """Record released locks for the next grant-queue drain."""
        self._churn_jobs.add(job)
        self._churn_items.update(items)

    def _pre_op(
        self,
        session: Session,
        item: Optional[str],
        mode: Optional[LockMode],
    ) -> None:
        """Shared entry checks: session state, deadline, access sets."""
        self._ensure_open()
        if session.state is SessionState.WAITING:
            raise SessionStateError(
                f"{session.name}: a previous operation is still waiting "
                "for a lock (one in-flight operation per session)"
            )
        if not session.state.live:
            raise SessionStateError(
                f"{session.name}: session already {session.state.value}"
            )
        if session.deadline is not None and self.now() > session.deadline:
            self.stats.deadline_aborts += 1
            self._abort_session(session, "deadline", forced=True)
            self._service_grant_queue()
            raise DeadlineExceeded(
                f"{session.name}: deadline passed before the operation"
            )
        if item is None or mode is None:
            return
        spec = session.job.spec
        allowed = spec.access_set if mode is LockMode.READ else spec.write_set
        if item not in allowed:
            raise SessionStateError(
                f"{session.name}: {mode.value} of {item!r} is outside the "
                f"declared {'access' if mode is LockMode.READ else 'write'} "
                f"set of {spec.name} (ceilings are static — register the "
                "item in the catalog)"
            )

    def _after_data_op(self, session: Session) -> None:
        """Post-operation hook: CCP-style early unlocks."""
        op_index = session.op_count
        session.op_count += 1
        if not self.config.honor_early_release:
            return
        released: List[str] = []
        for item, mode in self.protocol.after_operation(session.job, op_index):
            # A free-form client may diverge from the declared program; an
            # early-unlock suggestion for a lock not actually held is
            # skipped rather than treated as corruption.
            if self.table.holds(session.job, item, mode):
                self.table.release(session.job, item, mode)
                released.append(item)
        if released:
            self._note_release_churn(session.job, released)
            self._recompute_priorities()
            self._service_grant_queue()

    # ------------------------------------------------------------------
    # Lock acquisition and the grant queue
    # ------------------------------------------------------------------
    async def _acquire(self, session: Session, item: str, mode: LockMode) -> str:
        """Acquire ``mode`` on ``item``, parking in the grant queue on deny.

        Returns the grant rule string.  Everything before the ``await`` is
        synchronous, so decide→grant is atomic with respect to other
        clients.
        """
        job = session.job
        decision = self._service_decide(job, item, mode)
        now = self.now()
        if isinstance(decision, Grant):
            self._apply_grant(session, item, mode, decision.rule, now)
            return decision.rule
        if isinstance(decision, AbortAndGrant):
            self._resolve_abort_grant(session, item, mode, decision, now)
            return decision.reason

        assert isinstance(decision, Deny)
        self.stats.record_denial(job.base_priority)
        blocker_names = tuple(sorted(b.name for b in decision.blockers))
        job.begin_block(now, item, mode, blocker_names, decision.reason)
        self._trace_lock(
            now, job.name, item, mode, LockOutcome.DENIED, decision.reason,
            blocker_names,
        )
        future: "asyncio.Future[str]" = asyncio.get_running_loop().create_future()
        waiter = _Waiter(session, item, mode, future, now,
                         reason=decision.reason,
                         blockers=decision.blockers,
                         decided_priority=job.running_priority)
        self._waiters[session] = waiter
        self._item_waiters.setdefault(item, set()).add(session)
        session.state = SessionState.WAITING
        self.waits.block(job, decision.blockers, inherit=decision.inherit)
        self._notify_churn("wait", job)
        self._recompute_priorities()
        try:
            self._check_deadlock(session)
        except BaseException:
            # The request itself is rejected (deadlock_action="raise" or an
            # invariant violation): unpark before propagating so the grant
            # queue never holds a dead entry.
            if self._pop_waiter(session) is not None:
                session.state = SessionState.ACTIVE
            raise
        self._sample_sysceil()

        timeout = None
        if session.deadline is not None:
            timeout = max(0.0, session.deadline - self.now())
        try:
            if timeout is None:
                rule = await future
            else:
                rule = await asyncio.wait_for(future, timeout)
            return rule
        except asyncio.TimeoutError:
            # Deadline expired mid-wait: leave the queue and abort firmly.
            # (_abort_session also covers the race where the grant landed
            # just before the timeout — deadline semantics win.)
            self._pop_waiter(session)
            if session.state.live:
                self.stats.deadline_aborts += 1
                self._abort_session(session, "deadline", forced=True)
                self._service_grant_queue()
            raise DeadlineExceeded(
                f"{session.name}: deadline passed waiting for "
                f"{mode.value}({item})"
            ) from None
        except asyncio.CancelledError:
            # The client's task was cancelled (connection dropped) while
            # parked: tear the session down so its queue entry and wait
            # edges do not outlive the client.
            if self._pop_waiter(session) is not None:
                self._abort_session(session, "cancelled", forced=True)
                self._service_grant_queue()
            raise

    def _order_guard(
        self, job: Job, item: str, mode: LockMode
    ) -> Optional[Deny]:
        """The service-level guard decision, or ``None`` to pass through.

        A read of an item inside a live transitive ``≺``-predecessor's
        write set must wait: granting it would let the requester observe
        state that a transaction serialized *before* it is about to
        overwrite (or would close a cycle in the constraint graph).  This
        is the Table-1 footnote condition applied forward in time.
        """
        if mode is not LockMode.READ or not self._pred:
            return None
        guard = tuple(sorted(
            (p for p in self._transitive_preds(job)
             if item in p.spec.write_set),
            key=lambda j: j.seq,
        ))
        if guard:
            return Deny(
                guard,
                "order guard: item is writable by a transaction "
                "serialized before the requester",
            )
        return None

    def _commit_fence(
        self, job: Job, item: str, mode: LockMode
    ) -> Optional[Deny]:
        """Deny reads past a fenced (committing) session's write locks.

        Between :meth:`prepare_commit` and the commit (or
        :meth:`unprepare_commit`), an LC3/LC4 read passing one of the
        fenced session's write locks would record a new ``reader ≺
        committer`` constraint that the coordinator's merged gate check
        can no longer see in time — so the read parks until the install
        completes (it then reads the new version, serialized after) or
        the fence is dropped (it then passes as usual).
        """
        if not self._committing or mode is not LockMode.READ:
            return None
        holders = tuple(sorted(
            (w for w in self.table.writers_of(item)
             if w is not job and w in self._committing),
            key=lambda j: j.seq,
        ))
        if holders:
            return Deny(
                holders,
                "commit fence: a write holder is installing across shards",
            )
        return None

    def _service_predecide(
        self, job: Job, item: str, mode: LockMode
    ) -> Optional[Deny]:
        """The service-level pre-decision (fence, then order guard), or
        ``None`` to fall through to the protocol."""
        fence = self._commit_fence(job, item, mode)
        if fence is not None:
            return fence
        return self._order_guard(job, item, mode)

    def _service_decide(
        self, job: Job, item: str, mode: LockMode
    ) -> Union[Grant, AbortAndGrant, Deny]:
        """The protocol's decision (kernel or object path), tightened by
        the commit fence and the order guard."""
        deny = self._service_predecide(job, item, mode)
        if deny is not None:
            return deny
        return self._decide(job, item, mode)

    def _transitive_preds(self, job: Job) -> Set[Job]:
        """All live jobs serialized before ``job`` (transitively).

        Memoized per job: the cache is dirtied wholesale on every
        constraint-graph edit (:meth:`_apply_grant` adds edges,
        :meth:`_drop_constraints` removes them), so the order guard's
        repeated closure walks between lock churns are O(1).  Callers
        must not mutate the returned set.
        """
        cached = self._preds_cache.get(job)
        if cached is not None:
            return cached
        seen: Set[Job] = set()
        stack = [job]
        while stack:
            for pred in self._pred.get(stack.pop(), ()):
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        self._preds_cache[job] = seen
        return seen

    def _apply_grant(
        self,
        session: Session,
        item: str,
        mode: LockMode,
        rule: str,
        now: float,
        outcome: LockOutcome = LockOutcome.GRANTED,
        blockers: Tuple[str, ...] = (),
    ) -> None:
        job = session.job
        self.table.grant(job, item, mode)
        self.protocol.on_granted(job, item, mode)
        if mode is LockMode.READ:
            # Reading past a write lock (LC3/LC4) serializes this session
            # before every current write holder — record the adjusted
            # order so commit gating can enforce it (see module docstring).
            writers = self.table.writers_of(item) - {job}
            if writers:
                self._preds_cache.clear()
                for writer in writers:
                    self._succ.setdefault(job, set()).add(writer)
                    self._pred.setdefault(writer, set()).add(job)
                    self._notify_churn("constraint", job, writer)
        self._recompute_priorities()
        job.grant_rules.append((now, item, mode, rule))
        self.stats.record_grant(job.base_priority)
        self._trace_lock(now, job.name, item, mode, outcome, rule, blockers)
        self._sample_sysceil()

    def _resolve_abort_grant(
        self,
        session: Session,
        item: str,
        mode: LockMode,
        decision: AbortAndGrant,
        now: float,
    ) -> None:
        """2PL-HP-style decision: abort the victims, then take the lock."""
        victim_names = tuple(v.name for v in decision.victims)
        for victim in decision.victims:
            self._abort_session(
                self._by_job[victim], "victim",
                exc=TransactionAborted(
                    f"{victim.name} aborted by higher-priority "
                    f"{session.name} ({decision.reason or 'conflict'})"
                ),
            )
        self.stats.abort_grants += 1
        self._apply_grant(
            session, item, mode, decision.reason, now,
            outcome=LockOutcome.ABORT_GRANTED, blockers=victim_names,
        )
        self._service_grant_queue()

    def _grant_queue_order(self, waiter: _Waiter) -> Tuple[int, float, int]:
        """Priority-and-deadline-aware queue key: highest running priority
        first, then earliest deadline, then FIFO by job release."""
        deadline = (
            waiter.session.deadline
            if waiter.session.deadline is not None
            else float("inf")
        )
        return (-waiter.session.job.running_priority, deadline,
                waiter.session.job.seq)

    def _drain_candidates(self) -> Dict[Session, _Waiter]:
        """Consume the churn sets and pick the waiters they can affect.

        A parked request is a re-decide candidate iff (a) a lock on *its
        item* was released, (b) a job *it blames* released any lock (the
        denial reports exactly the holders whose departure can flip it:
        LC1's readers, the ceiling's T*, the footnote's violators, the
        guard's writing predecessors), or (c) its own running priority
        moved since it was last decided (LC2 compares the requester's
        priority against the system ceiling).  Every other denial is
        invariant under the drained churn, so skipping it changes only
        the work done, never the decisions.
        """
        churn_items = self._churn_items
        churn_jobs = self._churn_jobs
        self._churn_items = set()
        self._churn_jobs = set()
        if not self._waiters:
            return {}
        picked: Dict[Session, _Waiter] = {}
        for item in churn_items:
            for session in self._item_waiters.get(item, ()):
                waiter = self._waiters.get(session)
                if waiter is not None:
                    picked[session] = waiter
        for session, waiter in self._waiters.items():
            if session in picked:
                continue
            if waiter.session.job.running_priority != waiter.decided_priority:
                picked[session] = waiter
                continue
            if churn_jobs:
                for blocker in waiter.blockers:
                    if blocker in churn_jobs:
                        picked[session] = waiter
                        break
        return picked

    def _service_grant_queue(self) -> None:
        """Re-decide the parked requests the latest lock churn can flip.

        Releases accumulate in ``_churn_items`` / ``_churn_jobs`` between
        drains; each pass re-evaluates only the candidates
        :meth:`_drain_candidates` selects, ordered through a heap in
        (running priority, earliest deadline, FIFO) order.  Each
        candidate is decided *at most once per drain*: a denial removes
        it from the working set (its refreshed blame re-selects it on
        the next relevant churn), and a grant resumes the pass over the
        still-undecided suffix plus whatever fresh churn the grant's
        teardown produced (an ``AbortAndGrant`` feeds its victims'
        releases back through the churn sets).  A pure grant never frees
        a lock, so re-deciding the already-denied prefix after one could
        only flip through a priority ripple — which the next drain's
        priority-delta rule catches.  This is the service counterpart of
        the simulator's wake-then-retry loop, collapsed into one atomic
        step because waiters need no CPU to proceed — minus the
        full-queue re-sort (and per-grant re-decide storm) the simulator
        never needed either.
        """
        candidates = self._drain_candidates()
        progressed = True
        while progressed and candidates:
            progressed = False
            heap = [
                (self._grant_queue_order(w), w.session.job.seq, w)
                for s, w in candidates.items()
                if self._waiters.get(s) is w and not w.future.done()
            ]
            heapq.heapify(heap)
            ordered: List[_Waiter] = []
            while heap:
                ordered.append(heapq.heappop(heap)[2])
            decisions = self._decide_queue(ordered)
            for waiter, decision in zip(ordered, decisions):
                session = waiter.session
                now = self.now()
                if isinstance(decision, Grant):
                    self._pop_waiter(session)
                    candidates.pop(session, None)
                    session.state = SessionState.ACTIVE
                    self._apply_grant(
                        session, waiter.item, waiter.mode, decision.rule, now
                    )
                    waiter.future.set_result(decision.rule)
                    progressed = True
                    break  # table changed: resume over the suffix
                if isinstance(decision, AbortAndGrant):
                    self._pop_waiter(session)
                    candidates.pop(session, None)
                    session.state = SessionState.ACTIVE
                    self._resolve_abort_grant(
                        session, waiter.item, waiter.mode, decision, now
                    )
                    waiter.future.set_result(decision.reason)
                    progressed = True
                    break
                assert isinstance(decision, Deny)
                # Decided this drain: out of the working set until churn
                # that can actually flip it re-selects it.
                candidates.pop(session, None)
            if progressed:
                # The grant (or its victims' teardown) is fresh churn:
                # fold any newly affected waiters into the working set.
                candidates.update(self._drain_candidates())
        self._recompute_priorities()
        # Blocker refreshes above can *redirect* wait edges (the denial's
        # blame set tracks the current holders), so a cycle can appear
        # here without any new request parking — sweep for it, or two
        # redirected waiters could starve each other forever.
        if self._waiters:
            self._check_deadlock(None)

    def _decide_queue(self, ordered: List[_Waiter]) -> List[
        Union[Grant, AbortAndGrant, Deny]
    ]:
        """Decisions for one grant-queue pass, stopping after the first
        non-``Deny``; every denial's blame is refreshed *before* the next
        waiter is decided (the new inheritance edges feed the next
        decision's transitive-waiter exemption).

        With the kernel active this is one :meth:`Kernel.decide_batch`
        call — the order guard rides along as a per-request pre-decision,
        and the blame refresh plugs into the batch's ``on_deny`` hook.
        """
        if self.kernel is not None:
            requests = []
            for waiter in ordered:
                job = waiter.session.job
                deny = self._service_predecide(job, waiter.item, waiter.mode)
                if deny is None:
                    requests.append((job, waiter.item, waiter.mode))
                else:
                    requests.append((job, waiter.item, waiter.mode, deny))
            # Denials are exactly the processed prefix of ``ordered`` (the
            # batch stops at the first grant), so the callback walks the
            # same list in lock-step.
            denied = iter(ordered)
            return self.kernel.decide_batch(
                requests,
                on_deny=lambda request, decision: self._refresh_blame(
                    next(denied), decision
                ),
            )
        out: List[Union[Grant, AbortAndGrant, Deny]] = []
        for waiter in ordered:
            decision = self._service_decide(
                waiter.session.job, waiter.item, waiter.mode
            )
            out.append(decision)
            if not isinstance(decision, Deny):
                break
            self._refresh_blame(waiter, decision)
        return out

    def _refresh_blame(self, waiter: _Waiter, decision: Deny) -> None:
        """Point a still-parked waiter's blame at the *current* holders
        (the open block interval keeps its original start — one wait is
        one interval)."""
        waiter.reason = decision.reason
        waiter.blockers = decision.blockers
        job = waiter.session.job
        waiter.decided_priority = job.running_priority
        self.waits.block(job, decision.blockers, inherit=decision.inherit)
        self._notify_churn("wait", job)
        if job.block_intervals and job.block_intervals[-1].end is None:
            last = job.block_intervals[-1]
            last.blockers = tuple(
                sorted(b.name for b in decision.blockers)
            )
            last.reason = decision.reason

    def _pop_waiter(self, session: Session) -> Optional[_Waiter]:
        """Remove a session's grant-queue entry and close its wait.

        Idempotent: returns ``None`` when another path already cleaned up.
        """
        waiter = self._waiters.pop(session, None)
        if waiter is None:
            return None
        parked = self._item_waiters.get(waiter.item)
        if parked is not None:
            parked.discard(session)
            if not parked:
                self._item_waiters.pop(waiter.item, None)
        job = session.job
        now = self.now()
        if job.block_intervals and job.block_intervals[-1].end is None:
            job.end_block(now)
            self.stats.record_wait(
                job.base_priority, job.block_intervals[-1].duration
            )
        self.waits.unblock(job)
        self._notify_churn("unwait", job)
        return waiter

    # ------------------------------------------------------------------
    # The commit gate (serialization-order enforcement)
    # ------------------------------------------------------------------
    async def _gate_on(
        self, session: Session, predecessors: Tuple[Job, ...]
    ) -> None:
        """Park ``session``'s commit until a ``≺``-predecessor finishes.

        The wait joins the shared wait-for graph, so predecessors inherit
        the committer's priority and cycles involving the gate are visible
        to :meth:`_check_deadlock`.  Returns after *any* predecessor ends;
        the caller's loop re-evaluates the remaining set.
        """
        job = session.job
        now = self.now()
        names = tuple(sorted(p.name for p in predecessors))
        reason = (
            "commit gate: transactions serialized before this one "
            "are still running"
        )
        future: "asyncio.Future[None]" = (
            asyncio.get_running_loop().create_future()
        )
        self._gate_futures[session] = future
        session.state = SessionState.WAITING
        job.begin_block(now, "<commit>", LockMode.WRITE, names, reason)
        self.waits.block(job, predecessors, inherit=True)
        self._notify_churn("wait", job)
        self._recompute_priorities()
        try:
            self._check_deadlock(session)
        except BaseException:
            self._close_gate(session)
            raise
        self._sample_sysceil()

        timeout = None
        if session.deadline is not None:
            timeout = max(0.0, session.deadline - self.now())
        try:
            if timeout is None:
                await future
            else:
                await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._close_gate(session)
            if session.state.live:
                self.stats.deadline_aborts += 1
                self._abort_session(session, "deadline", forced=True)
                self._service_grant_queue()
            raise DeadlineExceeded(
                f"{session.name}: deadline passed at the commit gate"
            ) from None
        except asyncio.CancelledError:
            self._close_gate(session)
            if session.state.live:
                self._abort_session(session, "cancelled", forced=True)
                self._service_grant_queue()
            raise
        else:
            self._close_gate(session)

    def _close_gate(self, session: Session) -> None:
        """Leave the commit gate (idempotent; abort paths call it too)."""
        self._gate_futures.pop(session, None)
        job = session.job
        if job.block_intervals and job.block_intervals[-1].end is None:
            job.end_block(self.now())
            self.stats.record_wait(
                job.base_priority, job.block_intervals[-1].duration
            )
        if session.state is SessionState.WAITING:
            session.state = SessionState.ACTIVE
        if session.state.live:
            self.waits.unblock(job)
            self._notify_churn("unwait", job)
            self._recompute_priorities()

    def _wake_gates(self) -> None:
        """Re-check every gated commit after a session finished."""
        for future in self._gate_futures.values():
            if not future.done():
                future.set_result(None)

    def _drop_constraints(self, job: Job) -> None:
        """Remove a finished job from the serialization-constraint graph."""
        if self._preds_cache:
            self._preds_cache.clear()
        for succ in self._succ.pop(job, ()):
            preds = self._pred.get(succ)
            if preds is not None:
                preds.discard(job)
                if not preds:
                    self._pred.pop(succ, None)
        for pred in self._pred.pop(job, ()):
            succs = self._succ.get(pred)
            if succs is not None:
                succs.discard(job)
                if not succs:
                    self._succ.pop(pred, None)

    # ------------------------------------------------------------------
    # Abort / deadlock machinery
    # ------------------------------------------------------------------
    def force_abort(
        self,
        session: Session,
        reason: str,
        *,
        exc: Optional[ServiceError] = None,
    ) -> None:
        """Service-initiated abort, then re-service the grant queue.

        The public entry the shard coordinator uses to cascade a global
        abort onto a leg (and that embedders can use for policy-level
        kills).  Idempotent: a session that already finished is left
        alone.
        """
        if not session.state.live:
            return
        self._abort_session(session, reason, forced=True, exc=exc)
        self._service_grant_queue()

    def _abort_session(
        self,
        session: Session,
        reason: str,
        *,
        forced: bool = True,
        exc: Optional[ServiceError] = None,
    ) -> None:
        """Tear one session down: locks, workspace, graph, history."""
        if not session.state.live:
            return
        waiter = self._pop_waiter(session)
        if waiter is not None and not waiter.future.done():
            waiter.future.set_exception(
                exc or TransactionAborted(f"{session.name}: {reason}")
            )
        now = self.now()
        job = session.job
        gate = self._gate_futures.pop(session, None)
        if gate is not None:
            if job.block_intervals and job.block_intervals[-1].end is None:
                job.end_block(now)
                self.stats.record_wait(
                    job.base_priority, job.block_intervals[-1].duration
                )
            if not gate.done():
                gate.set_exception(
                    exc or TransactionAborted(f"{session.name}: {reason}")
                )
        released = self.table.release_all(job)
        self.protocol.on_release_all(job)
        self.waits.forget(job)
        if self.kernel is not None:
            self.kernel.retire(job)
        job.workspace.discard()
        session.state = SessionState.ABORTED
        session.abort_reason = reason
        session.committing = False
        self._committing.pop(job, None)
        self._live.pop(session, None)
        self._drop_constraints(job)
        self._note_release_churn(job, (item for item, _ in released))
        self.history.record_abort(job.name, now)
        self.stats.record_abort(job.base_priority, forced=forced)
        self.trace.sched(now, SchedEventKind.ABORT, job.name)
        self._recompute_priorities()
        self._sample_sysceil()
        self._wake_gates()
        self._notify_churn("abort", job)

    def _finish(self, session: Session, state: SessionState, now: float) -> None:
        """Common terminal transition for commit."""
        job = session.job
        released = self.table.release_all(job)
        self.protocol.on_release_all(job)
        self.waits.forget(job)
        if self.kernel is not None:
            self.kernel.retire(job)
        session.state = state
        session.committing = False
        self._committing.pop(job, None)
        self._live.pop(session, None)
        self._drop_constraints(job)
        self._note_release_churn(job, (item for item, _ in released))
        self._recompute_priorities()
        self._sample_sysceil()
        self._wake_gates()
        self._notify_churn("finish", job)

    def _is_service_cycle(self, cycle: Tuple[Job, ...]) -> bool:
        """True when the cycle involves a service-level wait (gate/guard).

        Those waits exist only because the service drops the paper's
        single-CPU scheduling assumption; the deadlock-freedom theorem
        does not cover them, so the cycle is resolved by victim abort
        rather than reported as an invariant violation.
        """
        for job in cycle:
            session = self._by_job.get(job)
            if session is None:
                continue
            if session in self._gate_futures:
                return True
            waiter = self._waiters.get(session)
            if waiter is not None and waiter.reason.startswith(
                ("order guard", "commit fence")
            ):
                return True
        return False

    def _check_deadlock(self, requester: Optional[Session]) -> None:
        cycle = self.waits.find_cycle()
        if cycle is None:
            return
        names = tuple(j.name for j in cycle)
        resolvable = (
            self.protocol.can_deadlock
            # IPCP-style guarantees hold only under the simulator's
            # single-CPU dispatching; with concurrent clients a cycle is
            # an expected (resolvable) event, not a broken invariant.
            or getattr(self.protocol, "deadlock_free_requires_scheduler",
                       False)
            or self._is_service_cycle(cycle)
        )
        if not resolvable:
            # Paper guarantee (Theorem 2): this must be unreachable for
            # PCP-DA.  Surfacing it loudly is the whole point of running
            # the live path against the proven protocol.
            raise InvariantViolation(
                f"wait-for cycle under deadlock-free protocol "
                f"{self.protocol.name}: {' -> '.join(names)}"
            )
        self.stats.deadlocks += 1
        if self.config.deadlock_action == "raise":
            raise ServiceError(
                f"deadlock detected: {' -> '.join(names)}"
            )
        victim_job = min(cycle, key=lambda j: (j.base_priority, -j.seq))
        victim = self._by_job[victim_job]
        self._abort_session(
            victim, "deadlock",
            exc=TransactionAborted(
                f"{victim.name} chosen as deadlock victim "
                f"({' -> '.join(names)})"
            ),
        )
        self._service_grant_queue()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _recompute_priorities(self) -> None:
        active_jobs = [s.job for s in self._live]
        before = [(j, j.running_priority) for j in active_jobs]
        self.waits.recompute_priorities(active_jobs, floor=self._floor)
        now = self.now()
        for job, prev in before:
            if job.running_priority != prev:
                self.trace.priority(now, job.name, job.running_priority)

    def _sample_sysceil(self) -> None:
        if self.config.record_sysceil:
            self.trace.sysceil(self.now(), self._sysceil(None))
