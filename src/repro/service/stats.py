"""Observability for the live lock-manager service.

Three kinds of signal, all cheap enough to record on every request:

* :class:`LatencyHistogram` — log-spaced buckets over seconds; used for
  end-to-end transaction latency and for per-request lock-wait time.
  Percentiles are answered from the buckets (resolution = bucket width),
  which is the standard service-side trade-off: O(1) record, bounded
  memory, no sample retention.
* per-priority-band blocking breakdown — the paper's headline quantity is
  *blocking time by priority level*; the service keeps, per base priority,
  the total/worst lock-wait time and the deny/grant counts, so a run can
  show directly that high-priority bands wait less under PCP-DA.
* monotonic counters — sessions, grants, denials, aborts, deadlocks,
  admission rejections, deadline aborts.

Sharded deployments add a fourth: :class:`ShardingStats`, the
coordinator-side counters (span classification, cross-shard commit
ratio, constraint-merge and gate/guard wait counts).  Per-shard
:class:`ServiceStats` fold into one lock-level union via
:meth:`ServiceStats.merge`.

Everything renders to text (the ``repro loadgen`` report) and to a plain
dict (the ``stats`` wire command), and is deliberately decoupled from the
manager so tests can assert on it in isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Histogram bucket boundaries: 1 µs to ~67 s, quarter-decade-ish spacing
#: (factor 2 per bucket keeps the render compact while resolving the
#: microsecond-to-second range a local service actually spans).
_FIRST_BOUND = 1e-6
_FACTOR = 2.0
_N_BUCKETS = 28


def _bucket_bounds() -> Tuple[float, ...]:
    bounds = []
    edge = _FIRST_BOUND
    for _ in range(_N_BUCKETS):
        bounds.append(edge)
        edge *= _FACTOR
    return tuple(bounds)


class LatencyHistogram:
    """Fixed-bucket log histogram over non-negative latencies in seconds."""

    BOUNDS: Tuple[float, ...] = _bucket_bounds()

    def __init__(self) -> None:
        # counts[i] counts samples <= BOUNDS[i]; the final slot is overflow.
        self.counts: List[int] = [0] * (len(self.BOUNDS) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Record one sample (negative values clamp to zero)."""
        seconds = max(0.0, seconds)
        self.total += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds
        lo, hi = 0, len(self.BOUNDS)
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds <= self.BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded samples (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the ``p``-th percentile.

        ``p`` is in [0, 100].  Returns 0 for an empty histogram; the exact
        maximum is reported separately (:attr:`max`) because the overflow
        bucket has no upper bound.
        """
        if self.total == 0:
            return 0.0
        rank = math.ceil(self.total * min(max(p, 0.0), 100.0) / 100.0)
        rank = max(rank, 1)
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.BOUNDS[i] if i < len(self.BOUNDS) else self.max
        return self.max

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (bounds implied by the schema)."""
        return {
            "total": self.total,
            "sum_s": self.sum,
            "max_s": self.max,
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram shipped over the wire."""
        hist = cls()
        counts = list(doc["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram bucket count mismatch: got {len(counts)}, "
                f"expected {len(hist.counts)}"
            )
        hist.counts = [int(c) for c in counts]
        hist.total = int(doc["total"])
        hist.sum = float(doc["sum_s"])
        hist.max = float(doc["max_s"])
        return hist

    def render(self, title: str = "latency", width: int = 40) -> str:
        """ASCII bar chart of the non-empty buckets, plus summary line."""
        lines = [
            f"{title}: n={self.total} mean={_fmt_s(self.mean)} "
            f"p50={_fmt_s(self.percentile(50))} "
            f"p95={_fmt_s(self.percentile(95))} "
            f"p99={_fmt_s(self.percentile(99))} max={_fmt_s(self.max)}"
        ]
        if self.total == 0:
            return lines[0]
        peak = max(self.counts)
        lower = 0.0
        for i, count in enumerate(self.counts):
            upper = self.BOUNDS[i] if i < len(self.BOUNDS) else float("inf")
            if count:
                bar = "#" * max(1, round(width * count / peak))
                upper_label = _fmt_s(upper) if upper != float("inf") else "inf"
                lines.append(
                    f"  {_fmt_s(lower):>8} .. {upper_label:>8} "
                    f"{count:>7} {bar}"
                )
            lower = upper
        return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    """Human latency formatting: µs / ms / s with 3 significant-ish digits."""
    if seconds == 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


@dataclass
class PriorityBandStats:
    """Blocking-time breakdown for one base-priority level."""

    priority: int
    commits: int = 0
    grants: int = 0
    denials: int = 0
    aborts: int = 0
    blocking_total_s: float = 0.0
    blocking_max_s: float = 0.0
    wait_hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record_wait(self, seconds: float) -> None:
        """Account one completed lock wait."""
        self.blocking_total_s += seconds
        self.blocking_max_s = max(self.blocking_max_s, seconds)
        self.wait_hist.record(seconds)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form, nested inside the ``stats`` document."""
        return {
            "priority": self.priority,
            "commits": self.commits,
            "grants": self.grants,
            "denials": self.denials,
            "aborts": self.aborts,
            "blocking_total_s": self.blocking_total_s,
            "blocking_max_s": self.blocking_max_s,
            "wait_hist": self.wait_hist.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "PriorityBandStats":
        band = cls(priority=int(doc["priority"]))
        band.commits = int(doc["commits"])
        band.grants = int(doc["grants"])
        band.denials = int(doc["denials"])
        band.aborts = int(doc["aborts"])
        band.blocking_total_s = float(doc["blocking_total_s"])
        band.blocking_max_s = float(doc["blocking_max_s"])
        band.wait_hist = LatencyHistogram.from_dict(doc["wait_hist"])
        return band

    def merge(self, other: "PriorityBandStats") -> None:
        """Fold another band record for the same priority into this one."""
        self.commits += other.commits
        self.grants += other.grants
        self.denials += other.denials
        self.aborts += other.aborts
        self.blocking_total_s += other.blocking_total_s
        self.blocking_max_s = max(self.blocking_max_s, other.blocking_max_s)
        self.wait_hist.merge(other.wait_hist)


class ServiceStats:
    """All service-side counters and histograms, in one introspectable bag."""

    def __init__(self) -> None:
        self.sessions_started = 0
        self.sessions_rejected = 0  # admission control (backpressure)
        self.commits = 0
        self.client_aborts = 0
        self.forced_aborts = 0      # deadlock victims, validation, shutdown
        self.deadline_aborts = 0
        self.grants = 0
        self.denials = 0
        self.abort_grants = 0
        self.deadlocks = 0
        self.requests = 0           # wire/in-process requests dispatched
        self.commit_latency = LatencyHistogram()
        self.lock_wait = LatencyHistogram()
        self._bands: Dict[int, PriorityBandStats] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def band(self, priority: int) -> PriorityBandStats:
        """The (created-on-demand) band record for one base priority."""
        band = self._bands.get(priority)
        if band is None:
            band = self._bands[priority] = PriorityBandStats(priority)
        return band

    def record_grant(self, priority: int) -> None:
        """One lock request admitted without waiting (or after a wait)."""
        self.grants += 1
        self.band(priority).grants += 1

    def record_denial(self, priority: int) -> None:
        """One lock request that entered the grant queue."""
        self.denials += 1
        self.band(priority).denials += 1

    def record_wait(self, priority: int, seconds: float) -> None:
        """One completed wait in the grant queue (granted or aborted)."""
        self.lock_wait.record(seconds)
        self.band(priority).record_wait(seconds)

    def record_commit(self, priority: int, latency_s: float) -> None:
        """One committed session with its begin-to-commit latency."""
        self.commits += 1
        self.commit_latency.record(latency_s)
        self.band(priority).commits += 1

    def record_abort(self, priority: int, *, forced: bool) -> None:
        """One aborted session (``forced`` = service-initiated)."""
        if forced:
            self.forced_aborts += 1
        else:
            self.client_aborts += 1
        self.band(priority).aborts += 1

    def merge(self, other: "ServiceStats") -> None:
        """Fold another stats bag into this one (shard aggregation).

        Counters add, histograms merge bucket-wise, priority bands merge
        per priority.  The shard coordinator uses this to build the
        lock-level union of its shards; note that session-level scalars
        (sessions, commits, aborts) then count a cross-shard transaction
        once per touched shard — the coordinator overrides them with its
        own global counts in the stats document.
        """
        for name in (
            "sessions_started", "sessions_rejected", "commits",
            "client_aborts", "forced_aborts", "deadline_aborts", "grants",
            "denials", "abort_grants", "deadlocks", "requests",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.commit_latency.merge(other.commit_latency)
        self.lock_wait.merge(other.lock_wait)
        for priority, band in other._bands.items():
            self.band(priority).merge(band)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bands(self) -> Tuple[PriorityBandStats, ...]:
        """Band records, highest priority first."""
        return tuple(
            self._bands[p] for p in sorted(self._bands, reverse=True)
        )

    def to_dict(self) -> Dict[str, Any]:
        """The full stats snapshot as shipped by the ``stats`` command."""
        return {
            "sessions_started": self.sessions_started,
            "sessions_rejected": self.sessions_rejected,
            "commits": self.commits,
            "client_aborts": self.client_aborts,
            "forced_aborts": self.forced_aborts,
            "deadline_aborts": self.deadline_aborts,
            "grants": self.grants,
            "denials": self.denials,
            "abort_grants": self.abort_grants,
            "deadlocks": self.deadlocks,
            "requests": self.requests,
            "commit_latency": self.commit_latency.to_dict(),
            "lock_wait": self.lock_wait.to_dict(),
            "bands": [band.to_dict() for band in self.bands],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ServiceStats":
        """Rebuild a snapshot fetched over the wire (loadgen reporting)."""
        stats = cls()
        for name in (
            "sessions_started", "sessions_rejected", "commits",
            "client_aborts", "forced_aborts", "deadline_aborts", "grants",
            "denials", "abort_grants", "deadlocks", "requests",
        ):
            setattr(stats, name, int(doc[name]))
        stats.commit_latency = LatencyHistogram.from_dict(doc["commit_latency"])
        stats.lock_wait = LatencyHistogram.from_dict(doc["lock_wait"])
        for band_doc in doc["bands"]:
            band = PriorityBandStats.from_dict(band_doc)
            stats._bands[band.priority] = band
        return stats

    def render(self) -> str:
        """Multi-section text report (the ``repro loadgen`` footer)."""
        lines = [
            "service counters:",
            f"  sessions started={self.sessions_started} "
            f"rejected={self.sessions_rejected} commits={self.commits} "
            f"aborts={self.client_aborts}+{self.forced_aborts} forced "
            f"deadline_aborts={self.deadline_aborts}",
            f"  locks granted={self.grants} denied={self.denials} "
            f"abort_grants={self.abort_grants} deadlocks={self.deadlocks} "
            f"requests={self.requests}",
            "",
            self.commit_latency.render("commit latency"),
            "",
            self.lock_wait.render("lock wait"),
        ]
        if self._bands:
            lines += ["", "blocking by priority band (highest first):"]
            lines.append(
                f"  {'prio':>5} {'commits':>8} {'grants':>7} {'denies':>7} "
                f"{'waits':>6} {'wait total':>11} {'wait max':>9} {'wait p95':>9}"
            )
            for band in self.bands:
                lines.append(
                    f"  {band.priority:>5} {band.commits:>8} {band.grants:>7} "
                    f"{band.denials:>7} {band.wait_hist.total:>6} "
                    f"{_fmt_s(band.blocking_total_s):>11} "
                    f"{_fmt_s(band.blocking_max_s):>9} "
                    f"{_fmt_s(band.wait_hist.percentile(95)):>9}"
                )
        return "\n".join(lines)


@dataclass
class ShardingStats:
    """Coordinator-level counters of a sharded deployment.

    Everything lock-level lives in the per-shard :class:`ServiceStats`;
    this bag counts what only the coordinator can see: span
    classification, cross-shard commits, how often the merged constraint
    graph was computed, and the waits/aborts the global gate, guard, and
    deadlock detector caused.  Shipped under the ``coordinator`` key of
    the sharded ``stats`` document.
    """

    #: Sessions whose declared access set spans exactly one shard.
    local_sessions: int = 0
    #: Sessions whose declared access set spans two or more shards.
    cross_shard_sessions: int = 0
    #: Commits that installed on more than one shard (atomic loop path).
    cross_shard_commits: int = 0
    #: Commits parked at the global gate at least once.
    gate_waits: int = 0
    #: Reads held back by the merged-graph order guard at least once.
    guard_waits: int = 0
    #: Merged-constraint-closure computations (gate/guard evaluations).
    constraint_merges: int = 0
    #: Global sessions torn down because a shard leg died underneath them.
    cascade_aborts: int = 0
    #: Wait cycles spanning shards/coordinator, resolved by victim abort.
    cross_shard_deadlocks: int = 0
    #: Time cross-shard commits spent parked at the global commit gate —
    #: kept apart from the shards' ``lock_wait`` so coordinator overhead
    #: stays attributable (it used to be folded into the merged
    #: histogram, where gate regressions were invisible).
    gate_wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Time reads spent parked at the merged-graph order guard.
    guard_wait: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def cross_shard_ratio(self) -> float:
        """Fraction of sessions classified cross-shard (0 when none)."""
        total = self.local_sessions + self.cross_shard_sessions
        return self.cross_shard_sessions / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the ``coordinator`` stats section)."""
        return {
            "local_sessions": self.local_sessions,
            "cross_shard_sessions": self.cross_shard_sessions,
            "cross_shard_ratio": self.cross_shard_ratio,
            "cross_shard_commits": self.cross_shard_commits,
            "gate_waits": self.gate_waits,
            "guard_waits": self.guard_waits,
            "constraint_merges": self.constraint_merges,
            "cascade_aborts": self.cascade_aborts,
            "cross_shard_deadlocks": self.cross_shard_deadlocks,
            "gate_wait": self.gate_wait.to_dict(),
            "guard_wait": self.guard_wait.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ShardingStats":
        """Rebuild coordinator counters shipped over the wire."""
        stats = cls()
        for name in (
            "local_sessions", "cross_shard_sessions", "cross_shard_commits",
            "gate_waits", "guard_waits", "constraint_merges",
            "cascade_aborts", "cross_shard_deadlocks",
        ):
            setattr(stats, name, int(doc[name]))
        # Park-time histograms arrived after the counters; tolerate
        # documents from older servers that lack them.
        for name in ("gate_wait", "guard_wait"):
            if name in doc:
                setattr(stats, name, LatencyHistogram.from_dict(doc[name]))
        return stats

    def render(self) -> str:
        """One-paragraph text summary for the loadgen report footer."""
        return (
            "coordinator: sessions local={0} cross-shard={1} "
            "(ratio {2:.2f}) cross_shard_commits={3}\n"
            "  gate_waits={4} guard_waits={5} constraint_merges={6} "
            "cascade_aborts={7} cross_shard_deadlocks={8}\n"
            "  gate park: n={9} total={10} p95={11} max={12}\n"
            "  guard park: n={13} total={14} p95={15} max={16}".format(
                self.local_sessions, self.cross_shard_sessions,
                self.cross_shard_ratio, self.cross_shard_commits,
                self.gate_waits, self.guard_waits, self.constraint_merges,
                self.cascade_aborts, self.cross_shard_deadlocks,
                self.gate_wait.total, _fmt_s(self.gate_wait.sum),
                _fmt_s(self.gate_wait.percentile(95)),
                _fmt_s(self.gate_wait.max),
                self.guard_wait.total, _fmt_s(self.guard_wait.sum),
                _fmt_s(self.guard_wait.percentile(95)),
                _fmt_s(self.guard_wait.max),
            )
        )
