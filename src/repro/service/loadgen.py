"""Open/closed-loop load generation against a lock-manager service.

The generator plays the role the periodic task releases play in the
simulator: it drives many concurrent transaction instances through the
service and then *proves* the run correct by replaying the service's
observable history through the same serializability oracle the simulator
uses (:func:`repro.db.serializability.check_serializable`).

Two loop disciplines:

* **closed loop** (default): each of ``clients`` workers runs one
  transaction at a time — begin, execute the catalog program, commit —
  then optionally thinks for ``think_time_s`` before the next.  Offered
  load tracks service speed; contention scales with ``clients``.
* **open loop** (``arrival_rate_hz``): each worker fires transaction
  *starts* at exponentially distributed intervals regardless of
  completions, so in-flight transactions pile up when the service lags —
  the classic overload probe.  ``burst_factor``/``burst_period_s``/
  ``burst_duty`` overlay a square-wave arrival burst on the open loop
  (rate × factor for the first ``duty`` fraction of every period), the
  same burst model the stress harness (:mod:`repro.verify.stress`) uses
  for its overload traces.

Workers are deterministic per seed: worker ``i`` draws from
``random.Random(seed * 10007 + i)``, so a report is reproducible against
the same catalog and protocol (timings vary, decisions replayed by the
oracle do not need to match across runs).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence

from repro.db.history import History
from repro.db.serializability import check_serializable, check_serializable_fast
from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    SerializationViolation,
    ServiceError,
    SpecificationError,
    TransactionAborted,
)
from repro.service.client import ServiceClient
from repro.service.stats import (
    LatencyHistogram,
    ServiceStats,
    ShardingStats,
    _fmt_s,
)

#: Async factory producing one connected client per worker.
ClientFactory = Callable[[], Awaitable[ServiceClient]]

#: History size above which the oracle switches to the sparse
#: serialization graph (same verdict, near-linear) and skips the
#: O(n² log n) topological order — overload traces reach millions of
#: events, where the dense replay would dominate the run's wall time.
FAST_CHECK_THRESHOLD = 20_000


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run.

    Attributes:
        clients: number of concurrent workers (separate clients).
        transactions_per_client: closed-loop transaction budget per worker
            (also caps the open loop).
        duration_s: optional wall-clock cap; whichever of budget/duration
            hits first ends the worker.
        think_time_s: closed-loop pause between a worker's transactions.
        arrival_rate_hz: when set, switches to the open loop — each worker
            starts transactions at this mean rate (exponential gaps).
        burst_factor: open-loop arrival-rate multiplier during the burst
            phase (1.0, the default, disables bursts).
        burst_period_s: length of one burst cycle.
        burst_duty: fraction of each cycle spent at the bursty rate.
        deadline_s: per-session relative deadline passed to ``begin``.
        compute_scale: multiply catalog compute-op durations by this and
            sleep for the result (0 = skip compute ops, the default —
            contention then comes purely from data access order).
        mix: transaction-name → weight for the draw; default uniform over
            the catalog.
        seed: base RNG seed (worker ``i`` uses ``seed * 10007 + i``).
        abort_probability: chance a worker deliberately aborts instead of
            committing (exercises the abort path under load).
    """

    clients: int = 8
    transactions_per_client: int = 25
    duration_s: Optional[float] = None
    think_time_s: float = 0.0
    arrival_rate_hz: Optional[float] = None
    burst_factor: float = 1.0
    burst_period_s: float = 0.5
    burst_duty: float = 0.25
    deadline_s: Optional[float] = None
    compute_scale: float = 0.0
    mix: Optional[Dict[str, float]] = None
    seed: int = 0
    abort_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise SpecificationError("clients must be >= 1")
        if self.transactions_per_client < 1:
            raise SpecificationError("transactions_per_client must be >= 1")
        if self.arrival_rate_hz is not None and self.arrival_rate_hz <= 0:
            raise SpecificationError("arrival_rate_hz must be positive")
        if self.burst_factor < 1.0:
            raise SpecificationError("burst_factor must be >= 1")
        if self.burst_period_s <= 0:
            raise SpecificationError("burst_period_s must be positive")
        if not 0.0 < self.burst_duty <= 1.0:
            raise SpecificationError("burst_duty must be in (0, 1]")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise SpecificationError("abort_probability must be in [0, 1]")


@dataclass
class LoadReport:
    """Everything a load-generation run learned.

    ``serializable`` is the run's verdict from replaying the service
    history through ``check_serializable``; ``violation`` carries the
    cycle message when it fails (and the CLI exits non-zero).
    """

    config: LoadgenConfig
    protocol: str
    wall_s: float
    completed: int = 0
    client_aborts: int = 0
    forced_aborts: int = 0
    deadline_misses: int = 0
    admission_rejects: int = 0
    transport_errors: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    blocking_s: float = 0.0
    serializable: bool = True
    violation: str = ""
    serialization_order: tuple = ()
    order_omitted: bool = False
    stats: Optional[ServiceStats] = None
    stats_doc: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_tps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def render(self) -> str:
        """The ``repro loadgen`` text report."""
        lines = [
            f"loadgen: protocol={self.protocol} clients={self.config.clients} "
            f"loop={'open' if self.config.arrival_rate_hz else 'closed'} "
            f"wall={self.wall_s:.2f}s",
            f"  committed={self.completed} ({self.throughput_tps:.1f} txn/s) "
            f"client_aborts={self.client_aborts} "
            f"forced_aborts={self.forced_aborts} "
            f"deadline_misses={self.deadline_misses} "
            f"admission_rejects={self.admission_rejects} "
            f"transport_errors={self.transport_errors}",
            f"  total lock blocking (client-observed commits): "
            f"{self.blocking_s:.4f}s",
            "",
            self.latency.render("end-to-end commit latency (client-observed)"),
        ]
        if self.stats is not None:
            lines += ["", self.stats.render()]
        lines.extend(self._render_shards())
        lines.append("")
        if self.serializable and self.order_omitted:
            lines.append(
                "serializability: OK (sparse check; equivalent serial "
                "order omitted at this history size)"
            )
        elif self.serializable:
            order = " < ".join(self.serialization_order[:12])
            suffix = " ..." if len(self.serialization_order) > 12 else ""
            lines.append(
                f"serializability: OK "
                f"({len(self.serialization_order)} committed transactions"
                f"{'; order: ' + order + suffix if order else ''})"
            )
        else:
            lines.append(f"serializability: VIOLATION — {self.violation}")
        return "\n".join(lines)

    def _render_shards(self) -> List[str]:
        """Per-shard commit/grant table + the silent-misrouting detector.

        Present only when the stats document came from a sharded
        deployment.  A shard that granted zero lock requests over a run
        that committed work is suspicious — either the partitioner
        assigned it no items (intentional but worth seeing) or requests
        are being misrouted — so the report calls it out explicitly.
        """
        shards = self.stats_doc.get("shards") or []
        if not shards:
            return []
        lines = ["", "per-shard breakdown:"]
        if self.stats_doc.get("deployment") == "multiprocess":
            procs = self.stats_doc.get("shard_procs", len(shards))
            lines[-1] = (
                f"per-shard breakdown ({procs} shard host processes, "
                "one per shard):"
            )
        # Shard lock-wait is listed per shard, while coordinator
        # gate/guard park time lives in the coordinator paragraph below
        # (ShardingStats.gate_wait / guard_wait) — the two are no longer
        # folded into one histogram, so regressions stay attributable.
        lines.append(
            f"  {'shard':>5} {'items':>6} {'sessions':>9} {'grants':>7} "
            f"{'denies':>7} {'commits':>8} {'commit p95':>11} "
            f"{'lock-wait p95':>14}"
        )
        for entry in shards:
            hist = LatencyHistogram.from_dict(entry["commit_latency"])
            wait_doc = entry.get("lock_wait")
            waits = (LatencyHistogram.from_dict(wait_doc) if wait_doc
                     else LatencyHistogram())
            lines.append(
                f"  {entry['shard']:>5} {entry['items']:>6} "
                f"{entry['sessions']:>9} {entry['grants']:>7} "
                f"{entry['denials']:>7} {entry['commits']:>8} "
                f"{_fmt_s(hist.percentile(95)):>11} "
                f"{_fmt_s(waits.percentile(95)):>14}"
            )
        idle = [str(entry["shard"]) for entry in shards
                if not entry.get("grants")]
        if idle and self.completed:
            lines.append(
                f"  WARNING: shard(s) {', '.join(idle)} granted zero lock "
                "requests — possible silent misrouting (or an empty "
                "partition; check the topology)"
            )
        coordinator = self.stats_doc.get("coordinator")
        if coordinator:
            lines += ["", ShardingStats.from_dict(coordinator).render()]
        return lines


def history_from_events(events: Sequence[Dict[str, Any]]) -> History:
    """Rebuild a :class:`History` from ``history`` wire rows.

    The rows arrive in global history order, so replaying ``record_*``
    calls reproduces the exact event sequence the service recorded —
    which is what makes the client-side serializability verdict honest:
    the oracle runs on shipped data, not on server-side say-so.
    """
    history = History()
    for row in events:
        kind = row["kind"]
        if kind == "read":
            history.record_read(
                row["job"], row["item"], row["version_seq"], row["time"]
            )
        elif kind == "install":
            history.record_install(
                row["job"], row["item"], row["version_seq"], row["time"]
            )
        elif kind == "commit":
            history.record_commit(row["job"], row["time"])
        elif kind == "abort":
            history.record_abort(row["job"], row["time"])
        else:
            raise ValueError(f"unknown history event kind {kind!r}")
    return history


class _Worker:
    """One load-generation worker: a client plus its RNG and counters."""

    def __init__(self, index: int, client: ServiceClient,
                 config: LoadgenConfig, catalog: List[Dict[str, Any]],
                 report: "LoadReport", stop_at: Optional[float]):
        self.index = index
        self.client = client
        self.config = config
        self.catalog = catalog
        self.report = report
        self.stop_at = stop_at
        self.rng = random.Random(config.seed * 10007 + index)
        names = [spec["name"] for spec in catalog]
        if config.mix:
            unknown = sorted(set(config.mix) - set(names))
            if unknown:
                raise SpecificationError(
                    f"mix references unknown transactions: {unknown}"
                )
            self.names = [n for n in names if config.mix.get(n, 0) > 0]
            self.weights = [config.mix[n] for n in self.names]
        else:
            self.names = names
            self.weights = [1.0] * len(names)
        self.programs = {spec["name"]: spec["operations"] for spec in catalog}

    def _expired(self) -> bool:
        return self.stop_at is not None and time.monotonic() >= self.stop_at

    async def run(self) -> None:
        if self.config.arrival_rate_hz is not None:
            await self._open_loop()
        else:
            await self._closed_loop()

    async def _closed_loop(self) -> None:
        for _ in range(self.config.transactions_per_client):
            if self._expired():
                return
            await self._one_transaction()
            if self.config.think_time_s > 0:
                await asyncio.sleep(
                    self.rng.uniform(0, 2 * self.config.think_time_s)
                )

    def _current_rate(self, elapsed_s: float) -> float:
        """The open-loop arrival rate at ``elapsed_s`` into the run.

        A square wave: ``rate × burst_factor`` for the first
        ``burst_duty`` fraction of every ``burst_period_s`` cycle, the
        base rate otherwise.  With ``burst_factor == 1`` (the default)
        this is constant — the historical open-loop behaviour.
        """
        rate = self.config.arrival_rate_hz
        assert rate is not None
        if self.config.burst_factor <= 1.0:
            return rate
        phase = elapsed_s % self.config.burst_period_s
        if phase < self.config.burst_period_s * self.config.burst_duty:
            return rate * self.config.burst_factor
        return rate

    async def _open_loop(self) -> None:
        started = time.monotonic()
        inflight: set = set()
        for _ in range(self.config.transactions_per_client):
            if self._expired():
                break
            task = asyncio.ensure_future(self._one_transaction())
            inflight.add(task)
            task.add_done_callback(inflight.discard)
            rate = self._current_rate(time.monotonic() - started)
            await asyncio.sleep(self.rng.expovariate(rate))
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)

    async def _one_transaction(self) -> None:
        name = self.rng.choices(self.names, weights=self.weights, k=1)[0]
        started = time.monotonic()
        try:
            txn = await self.client.begin(
                name, deadline_s=self.config.deadline_s
            )
        except AdmissionError:
            self.report.admission_rejects += 1
            await asyncio.sleep(self.rng.uniform(0.001, 0.01))  # back off
            return
        except ServiceError:
            self.report.transport_errors += 1
            return
        try:
            for op in self.programs[name]:
                kind = op["kind"]
                if kind == "compute":
                    if self.config.compute_scale > 0:
                        await asyncio.sleep(
                            op["duration"] * self.config.compute_scale
                        )
                elif kind == "read":
                    await txn.read(op["item"])
                else:
                    await txn.write(op["item"], f"{txn.name}@{op['item']}")
            if self.rng.random() < self.config.abort_probability:
                await txn.abort("loadgen-chaos")
                self.report.client_aborts += 1
                return
            result = await txn.commit()
            self.report.completed += 1
            self.report.latency.record(time.monotonic() - started)
            self.report.blocking_s += float(result.get("blocking_s", 0.0))
        except DeadlineExceeded:
            self.report.deadline_misses += 1
        except TransactionAborted:
            self.report.forced_aborts += 1
        except ServiceError:
            self.report.transport_errors += 1


async def run_loadgen(
    config: LoadgenConfig, connect: ClientFactory
) -> LoadReport:
    """Drive a service with ``config.clients`` workers; return the report.

    ``connect`` is called once per worker (plus once for the control
    client that fetches the catalog up front and the stats/history at the
    end), so each worker owns its transport — over TCP that means real
    per-client connections, matching how independent clients would load a
    deployment.
    """
    control = await connect()
    try:
        catalog_doc = await control.catalog()
        protocol = catalog_doc["protocol"]
        catalog = catalog_doc["transactions"]
        if not catalog:
            raise SpecificationError("service catalog is empty")

        report = LoadReport(config=config, protocol=protocol, wall_s=0.0)
        started = time.monotonic()
        stop_at = (
            started + config.duration_s if config.duration_s is not None
            else None
        )
        clients = [await connect() for _ in range(config.clients)]
        workers = [
            _Worker(i, clients[i], config, catalog, report, stop_at)
            for i in range(config.clients)
        ]
        try:
            outcomes = await asyncio.gather(
                *(w.run() for w in workers), return_exceptions=True
            )
        finally:
            for client in clients:
                await client.close()
        report.wall_s = time.monotonic() - started
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome

        # --- the oracle: replay the service history client-side --------
        events = await control.history()
        history = history_from_events(events)
        try:
            if len(events) > FAST_CHECK_THRESHOLD:
                check_serializable_fast(history)
                report.serializable = True
                # the equivalent serial order is omitted at this scale —
                # topological_order() is quadratic in committed jobs
                report.order_omitted = True
            else:
                graph = check_serializable(history)
                report.serializable = True
                report.serialization_order = tuple(
                    graph.topological_order() or ()
                )
        except SerializationViolation as exc:
            report.serializable = False
            report.violation = str(exc)

        report.stats_doc = await control.stats()
        report.stats = ServiceStats.from_dict(report.stats_doc)
        return report
    finally:
        await control.close()
