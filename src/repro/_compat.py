"""Small version-compatibility shims.

``DATACLASS_SLOTS`` lets hot-path dataclasses opt into ``__slots__`` on
Python >= 3.10 (where :func:`dataclasses.dataclass` grew the ``slots``
keyword) while staying importable on 3.9, the floor declared in
``pyproject.toml``.  Slots remove the per-instance ``__dict__``, which
measurably shrinks and speeds the millions of events, lock entries, and
block intervals a long simulation allocates.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

DATACLASS_SLOTS: Dict[str, Any] = (
    {"slots": True} if sys.version_info >= (3, 10) else {}
)
