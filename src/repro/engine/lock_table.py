"""The lock table: who holds which lock in which mode.

The table is deliberately *policy-free*: it records grants and releases and
answers queries, while every admission decision lives in the protocol
objects.  This split keeps each protocol's rules readable against the paper
text and lets all protocols share one bookkeeping implementation.

Unusual-but-intentional capabilities (required by PCP-DA):

* multiple concurrent *write* holders on one item — the paper's Case 3
  treats blind writes as non-conflicting, so PCP-DA grants co-existing
  write locks (commit order decides the final value);
* a reader co-existing with a writer on the same item (Case 1) — the reader
  observes the committed version while the writer's value sits in its
  workspace.

Stricter protocols simply never grant such combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.exceptions import ProtocolError
from repro.model.spec import LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@dataclass
class LockEntry:
    """Holders of one data item, by mode."""

    readers: "Set[Job]" = field(default_factory=set)
    writers: "Set[Job]" = field(default_factory=set)

    @property
    def holders(self) -> "FrozenSet[Job]":
        return frozenset(self.readers | self.writers)

    @property
    def empty(self) -> bool:
        return not self.readers and not self.writers


class LockTable:
    """Mapping of item name to :class:`LockEntry`, plus per-job indexes."""

    def __init__(self) -> None:
        self._entries: Dict[str, LockEntry] = {}
        self._held_by_job: "Dict[Job, Dict[str, Set[LockMode]]]" = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def grant(self, job: "Job", item: str, mode: LockMode) -> None:
        """Record that ``job`` now holds ``item`` in ``mode``.

        Granting a mode the job already holds is an error — the engine
        checks for held locks before consulting the protocol.
        """
        entry = self._entries.setdefault(item, LockEntry())
        side = entry.readers if mode is LockMode.READ else entry.writers
        if job in side:
            raise ProtocolError(f"{job.name} already holds {mode} lock on {item!r}")
        side.add(job)
        self._held_by_job.setdefault(job, {}).setdefault(item, set()).add(mode)

    def release(self, job: "Job", item: str, mode: LockMode) -> None:
        """Release one lock (CCP's early unlock path)."""
        entry = self._entries.get(item)
        side = entry.readers if (entry and mode is LockMode.READ) else (
            entry.writers if entry else None
        )
        if entry is None or side is None or job not in side:
            raise ProtocolError(f"{job.name} does not hold {mode} lock on {item!r}")
        side.discard(job)
        modes = self._held_by_job.get(job, {}).get(item)
        if modes:
            modes.discard(mode)
            if not modes:
                del self._held_by_job[job][item]
        if entry.empty:
            del self._entries[item]

    def release_all(self, job: "Job") -> Tuple[Tuple[str, LockMode], ...]:
        """Release every lock ``job`` holds; returns what was released."""
        released: List[Tuple[str, LockMode]] = []
        for item, modes in list(self._held_by_job.get(job, {}).items()):
            for mode in list(modes):
                self.release(job, item, mode)
                released.append((item, mode))
        self._held_by_job.pop(job, None)
        return tuple(released)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def readers_of(self, item: str) -> "FrozenSet[Job]":
        """Jobs holding a read lock on ``item``."""
        entry = self._entries.get(item)
        return frozenset(entry.readers) if entry else frozenset()

    def writers_of(self, item: str) -> "FrozenSet[Job]":
        """Jobs holding a write lock on ``item``."""
        entry = self._entries.get(item)
        return frozenset(entry.writers) if entry else frozenset()

    def holders_of(self, item: str) -> "FrozenSet[Job]":
        """Jobs holding any lock on ``item``."""
        entry = self._entries.get(item)
        return entry.holders if entry else frozenset()

    def holds(self, job: "Job", item: str, mode: LockMode) -> bool:
        """Whether ``job`` holds ``item`` in exactly ``mode``."""
        return mode in self._held_by_job.get(job, {}).get(item, ())

    def holds_any(self, job: "Job", item: str) -> bool:
        """Whether ``job`` holds ``item`` in any mode."""
        return bool(self._held_by_job.get(job, {}).get(item))

    def items_held_by(self, job: "Job") -> "Dict[str, FrozenSet[LockMode]]":
        """``{item: modes}`` for every lock ``job`` currently holds."""
        return {
            item: frozenset(modes)
            for item, modes in self._held_by_job.get(job, {}).items()
        }

    def read_locked_items(self, exclude: "Job" = None) -> Tuple[str, ...]:
        """Items currently read-locked by some job other than ``exclude``."""
        out = []
        for item, entry in self._entries.items():
            readers = entry.readers - {exclude} if exclude else entry.readers
            if readers:
                out.append(item)
        return tuple(sorted(out))

    def locked_items(self, exclude: "Job" = None) -> Tuple[str, ...]:
        """Items locked (any mode) by some job other than ``exclude``."""
        out = []
        for item, entry in self._entries.items():
            holders = entry.holders - {exclude} if exclude else entry.holders
            if holders:
                out.append(item)
        return tuple(sorted(out))

    def all_entries(self) -> "Dict[str, LockEntry]":
        """Live view of the table (tests and protocol tracing only)."""
        return self._entries
