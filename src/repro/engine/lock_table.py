"""The lock table: who holds which lock in which mode.

The table is deliberately *policy-free*: it records grants and releases and
answers queries, while every admission decision lives in the protocol
objects.  This split keeps each protocol's rules readable against the paper
text and lets all protocols share one bookkeeping implementation.

Unusual-but-intentional capabilities (required by PCP-DA):

* multiple concurrent *write* holders on one item — the paper's Case 3
  treats blind writes as non-conflicting, so PCP-DA grants co-existing
  write locks (commit order decides the final value);
* a reader co-existing with a writer on the same item (Case 1) — the reader
  observes the committed version while the writer's value sits in its
  workspace.

Stricter protocols simply never grant such combinations.

For the ceiling protocols the table also hosts an optional
:class:`CeilingIndex` — an incrementally maintained max-structure over the
per-item ceiling levels, so ``Sysceil`` queries stop rescanning every held
lock on every request (see the class docstring for the invariants).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro._compat import DATACLASS_SLOTS
from repro.exceptions import ProtocolError
from repro.model.spec import LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@dataclass(**DATACLASS_SLOTS)
class LockEntry:
    """Holders of one data item, by mode."""

    readers: "Set[Job]" = field(default_factory=set)
    writers: "Set[Job]" = field(default_factory=set)

    @property
    def holders(self) -> "FrozenSet[Job]":
        return frozenset(self.readers | self.writers)

    @property
    def empty(self) -> bool:
        return not self.readers and not self.writers


class CeilingIndex:
    """Incremental max-ceiling index over the locked items of one table.

    A ceiling protocol attaches one index via
    :meth:`LockTable.attach_ceiling_index`, supplying ``level_of(item,
    entry)`` — the protocol's current ceiling of a locked item (``None``
    when the item contributes no ceiling) — and ``select``, which side of
    the entry gates the *exclusion* test at query time (``"readers"`` for
    PCP-DA's read-lock-only ceilings, ``"holders"`` otherwise).

    Maintenance contract (the "bump on grant, lazy-max-repair on release"
    scheme):

    * every grant/release recomputes the affected item's level — an O(1)
      call — and **pushes** a heap entry whenever the level changed, so the
      heap always contains an entry for every item's *current* level;
    * nothing is ever removed eagerly; outdated entries (the item's level
      changed, or the item is fully unlocked) are recognised against
      ``_current`` and discarded when they surface at the heap top during
      a query.

    Queries therefore cost O(stale + skipped + |answer|) heap operations
    instead of a full rescan of the table; with low churn the top of the
    heap is almost always the answer.  ``self_check()`` recomputes
    everything from scratch and is what the differential battery calls.
    """

    __slots__ = ("kind", "_level_of", "_select_readers", "_table", "_heap",
                 "_current")

    def __init__(
        self,
        kind: str,
        level_of: "Callable[[str, LockEntry], Optional[int]]",
        *,
        select: str = "holders",
    ) -> None:
        if select not in ("readers", "holders"):
            raise ProtocolError(f"unknown ceiling-index selector {select!r}")
        self.kind = kind
        self._level_of = level_of
        self._select_readers = select == "readers"
        self._table: "Optional[LockTable]" = None
        self._heap: List[Tuple[int, str]] = []  # (-level, item), lazy
        self._current: Dict[str, int] = {}      # item -> live level

    # ------------------------------------------------------------------
    # Maintenance (driven by LockTable)
    # ------------------------------------------------------------------
    def rebuild(self, table: "LockTable") -> None:
        """Bind to ``table`` and re-derive the index from its live entries."""
        self._table = table
        self._heap.clear()
        self._current.clear()
        for item, entry in table._entries.items():
            self.update(item, entry)

    def update(self, item: str, entry: "Optional[LockEntry]") -> None:
        """Re-evaluate one item after a grant or release on it."""
        new = None if entry is None or entry.empty else self._level_of(item, entry)
        old = self._current.get(item)
        if new == old:
            return
        if new is None:
            del self._current[item]
        else:
            self._current[item] = new
            heapq.heappush(self._heap, (-new, item))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _qualifies(self, item: str, excluded) -> bool:
        entry = self._table._entries.get(item)
        if entry is None:
            return False
        if self._select_readers:
            jobs: Iterable["Job"] = entry.readers
        elif entry.readers and entry.writers:
            jobs = entry.readers | entry.writers
        else:
            jobs = entry.readers or entry.writers
        if not excluded:
            return bool(jobs)
        for job in jobs:
            if job not in excluded:
                return True
        return False

    def scan(self, excluded=frozenset()) -> Tuple[Optional[int], List[str]]:
        """Highest level among items locked by someone outside ``excluded``,
        plus every item at that level; ``(None, [])`` when nothing
        qualifies.

        Stale heap entries met on the way down are discarded permanently;
        valid entries that are merely skipped (all their relevant holders
        are excluded) or consumed for the answer are pushed back.
        """
        heap = self._heap
        current = self._current
        restore: List[Tuple[int, str]] = []
        seen: Set[str] = set()
        level: Optional[int] = None
        items: List[str] = []
        while heap:
            neg, item = heap[0]
            if current.get(item) != -neg:
                heapq.heappop(heap)  # outdated: drop for good
                continue
            if level is not None and -neg < level:
                break  # everything below the found level is irrelevant
            heapq.heappop(heap)
            if item in seen:
                continue  # duplicate of an entry already in ``restore``
            seen.add(item)
            restore.append((neg, item))
            if self._qualifies(item, excluded):
                if level is None:
                    level = -neg
                items.append(item)
        for entry in restore:
            heapq.heappush(heap, entry)
        return level, items

    def max_level(self, excluded=frozenset()) -> Optional[int]:
        """Just the level of :meth:`scan` (``None`` when nothing qualifies)."""
        return self.scan(excluded)[0]

    # ------------------------------------------------------------------
    # Differential verification
    # ------------------------------------------------------------------
    def self_check(self) -> None:
        """Assert the incremental state equals a from-scratch re-derivation."""
        assert self._table is not None, "index used before attach"
        fresh: Dict[str, int] = {}
        for item, entry in self._table._entries.items():
            level = None if entry.empty else self._level_of(item, entry)
            if level is not None:
                fresh[item] = level
        if fresh != self._current:
            raise AssertionError(
                f"ceiling index diverged: incremental={self._current} "
                f"rescan={fresh}"
            )
        represented = {item for _, item in self._heap}
        missing = set(fresh) - represented
        if missing:
            raise AssertionError(
                f"ceiling index heap lost live items: {sorted(missing)}"
            )


class LockTable:
    """Mapping of item name to :class:`LockEntry`, plus per-job indexes."""

    __slots__ = ("_entries", "_held_by_job", "_ceiling_index", "_kernel_state")

    def __init__(self) -> None:
        self._entries: Dict[str, LockEntry] = {}
        self._held_by_job: "Dict[Job, Dict[str, Set[LockMode]]]" = {}
        self._ceiling_index: Optional[CeilingIndex] = None
        self._kernel_state = None

    # ------------------------------------------------------------------
    # Ceiling index
    # ------------------------------------------------------------------
    def attach_ceiling_index(self, index: CeilingIndex) -> CeilingIndex:
        """Install ``index`` (one per table); it is rebuilt from the live
        entries and kept current by every subsequent grant/release."""
        self._ceiling_index = index
        index.rebuild(self)
        return index

    @property
    def ceiling_index(self) -> Optional[CeilingIndex]:
        """The attached :class:`CeilingIndex`, if any."""
        return self._ceiling_index

    def attach_kernel_state(self, state) -> None:
        """Install the array kernel's lock-word mirror (one per table); it
        is rebuilt from the live entries and then notified of every
        grant/release (see :mod:`repro.engine.kernel.core`)."""
        self._kernel_state = state
        state.rebuild(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def grant(self, job: "Job", item: str, mode: LockMode) -> None:
        """Record that ``job`` now holds ``item`` in ``mode``.

        Granting a mode the job already holds is an error — the engine
        checks for held locks before consulting the protocol.
        """
        entry = self._entries.get(item)
        if entry is None:
            entry = self._entries[item] = LockEntry()
        side = entry.readers if mode is LockMode.READ else entry.writers
        if job in side:
            raise ProtocolError(f"{job.name} already holds {mode} lock on {item!r}")
        side.add(job)
        by_job = self._held_by_job.get(job)
        if by_job is None:
            by_job = self._held_by_job[job] = {}
        modes = by_job.get(item)
        if modes is None:
            modes = by_job[item] = set()
        modes.add(mode)
        if self._ceiling_index is not None:
            self._ceiling_index.update(item, entry)
        if self._kernel_state is not None:
            self._kernel_state.on_grant(job, item, mode)

    def release(self, job: "Job", item: str, mode: LockMode) -> None:
        """Release one lock (CCP's early unlock path)."""
        entry = self._entries.get(item)
        side = entry.readers if (entry and mode is LockMode.READ) else (
            entry.writers if entry else None
        )
        if entry is None or side is None or job not in side:
            raise ProtocolError(f"{job.name} does not hold {mode} lock on {item!r}")
        side.discard(job)
        modes = self._held_by_job.get(job, {}).get(item)
        if modes:
            modes.discard(mode)
            if not modes:
                del self._held_by_job[job][item]
        if entry.empty:
            del self._entries[item]
        if self._ceiling_index is not None:
            self._ceiling_index.update(item, entry)
        if self._kernel_state is not None:
            self._kernel_state.on_release(job, item, mode)

    def release_all(self, job: "Job") -> Tuple[Tuple[str, LockMode], ...]:
        """Release every lock ``job`` holds; returns what was released."""
        released: List[Tuple[str, LockMode]] = []
        for item, modes in list(self._held_by_job.get(job, {}).items()):
            for mode in list(modes):
                self.release(job, item, mode)
                released.append((item, mode))
        self._held_by_job.pop(job, None)
        return tuple(released)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def readers_of(self, item: str) -> "FrozenSet[Job]":
        """Jobs holding a read lock on ``item``."""
        entry = self._entries.get(item)
        return frozenset(entry.readers) if entry else frozenset()

    def writers_of(self, item: str) -> "FrozenSet[Job]":
        """Jobs holding a write lock on ``item``."""
        entry = self._entries.get(item)
        return frozenset(entry.writers) if entry else frozenset()

    def holders_of(self, item: str) -> "FrozenSet[Job]":
        """Jobs holding any lock on ``item``."""
        entry = self._entries.get(item)
        return entry.holders if entry else frozenset()

    def holds(self, job: "Job", item: str, mode: LockMode) -> bool:
        """Whether ``job`` holds ``item`` in exactly ``mode``."""
        return mode in self._held_by_job.get(job, {}).get(item, ())

    def holds_any(self, job: "Job", item: str) -> bool:
        """Whether ``job`` holds ``item`` in any mode."""
        return bool(self._held_by_job.get(job, {}).get(item))

    def held_modes(self, job: "Job", item: str) -> "Optional[Set[LockMode]]":
        """Modes ``job`` holds on ``item`` (``None`` when none) — one dict
        walk where a pair of ``holds()`` calls would take two (the
        dispatcher's per-pick needs-lock test lives on this)."""
        held = self._held_by_job.get(job)
        return held.get(item) if held is not None else None

    def items_held_by(self, job: "Job") -> "Dict[str, FrozenSet[LockMode]]":
        """``{item: modes}`` for every lock ``job`` currently holds."""
        return {
            item: frozenset(modes)
            for item, modes in self._held_by_job.get(job, {}).items()
        }

    def iter_items_held_by(self, job: "Job") -> "Iterable[str]":
        """Item names ``job`` holds locks on, without building new sets
        (hot path: IPCP's priority floor walks this per recomputation)."""
        held = self._held_by_job.get(job)
        return held.keys() if held else ()

    def read_locked_items(self, exclude: "Job" = None) -> Tuple[str, ...]:
        """Items currently read-locked by some job other than ``exclude``."""
        out = []
        for item, entry in self._entries.items():
            readers = entry.readers - {exclude} if exclude else entry.readers
            if readers:
                out.append(item)
        return tuple(sorted(out))

    def locked_items(self, exclude: "Job" = None) -> Tuple[str, ...]:
        """Items locked (any mode) by some job other than ``exclude``."""
        out = []
        for item, entry in self._entries.items():
            holders = entry.holders - {exclude} if exclude else entry.holders
            if holders:
                out.append(item)
        return tuple(sorted(out))

    def all_entries(self) -> "Dict[str, LockEntry]":
        """Live view of the table (tests and protocol tracing only)."""
        return self._entries
