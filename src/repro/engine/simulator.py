"""The discrete-event simulator: one CPU, priority-driven, lock-aware.

Model (paper, Section 5): a single processor with a memory-resident
database; periodic transactions with total-order priorities; the
highest-running-priority ready transaction executes; a transaction requests
the lock for an operation when the operation starts, and releases all locks
at commit (unless the protocol releases some earlier, as CCP does).

Determinism: the event calendar breaks time ties by insertion order, and
the dispatcher breaks priority ties by release order, so a given
(task set, protocol, config) triple always produces the identical trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.history import History
from repro.db.serializability import check_serializable
from repro.db.values import write_digest
from repro.engine.event_queue import EventQueue, ScheduledEvent
from repro.engine.inheritance import WaitForGraph
from repro.engine.interfaces import (
    AbortAndGrant,
    ConcurrencyControlProtocol,
    Deny,
    Grant,
    InstallPolicy,
)
from repro.engine.job import Job, JobState
from repro.engine.kernel import build_kernel
from repro.engine.lock_table import LockTable
from repro.exceptions import (
    DeadlockError,
    SimulationError,
    SpecificationError,
)
from repro.model.spec import LockMode, OpKind, TaskSet
from repro.model.validation import validate_taskset
from repro.trace.recorder import (
    LockOutcome,
    SchedEventKind,
    TraceRecorder,
)

_EPS = 1e-9


@dataclass(frozen=True)
class SimConfig:
    """Run-level configuration.

    Attributes:
        horizon: simulation end time.  Arrivals at or after the horizon are
            not released; processing stops at the horizon.  When ``None``
            and the task set is periodic with an integral hyperperiod, one
            hyperperiod is simulated; one-shot task sets run to completion.
        max_instances: cap on instances per transaction (``None`` = only
            bounded by the horizon; one-shot transactions always release
            exactly one instance).
        deadlock_action: what to do when a wait-for cycle appears —
            ``"raise"`` (default; PCP-DA and RW-PCP are proven
            deadlock-free, so a cycle is an error), ``"halt"`` (stop and
            report the cycle in the result, used to demonstrate Example 5),
            or ``"abort_lowest"`` (abort the lowest-priority job in the
            cycle and continue; for plain-2PL-style baselines).
        on_miss: deadline policy — ``"record"`` (default: the miss is
            recorded and the job runs to completion, keeping blocking
            statistics well defined) or ``"abort"`` (firm deadlines: the
            job is dropped at its deadline, its locks released and its
            workspace discarded; requires a deferred-update protocol).
        lock_overhead: CPU time consumed by each successful lock
            acquisition (added to the acquiring operation).
        context_switch_overhead: CPU time charged to the incoming job on a
            preemptive switch (the outgoing job still had work); switches
            caused by commits or blocking are not charged.
        record_sysceil: sample the global system ceiling after every event
            (the ``Max_Sysceil`` traces of Figures 4/5).
        max_events: hard cap on processed events (runaway guard).
        kernel: answer admission decisions and ceiling samples from the
            array kernel (:mod:`repro.engine.kernel`) when the protocol
            compiles to a decision table; protocols without a table (and
            ``kernel=False`` runs) use the object path.  Byte-identical
            by construction and pinned by the golden/differential
            batteries; under ``debug_invariants`` the object path decides
            and every kernel answer is cross-checked against it.
        debug_invariants: after every event batch, cross-check the
            incremental scheduler state (ready heap, blocked set, active
            index, ceiling index, kernel mirrors) against a from-scratch
            recomputation.  Slow; exists for the differential battery,
            which uses it to prove the fast path is observationally
            identical to filtering ``jobs`` per event.
    """

    horizon: Optional[float] = None
    max_instances: Optional[int] = None
    deadlock_action: str = "raise"
    on_miss: str = "record"
    lock_overhead: float = 0.0
    context_switch_overhead: float = 0.0
    record_sysceil: bool = True
    max_events: int = 1_000_000
    kernel: bool = True
    debug_invariants: bool = False

    def __post_init__(self) -> None:
        if self.deadlock_action not in ("raise", "halt", "abort_lowest"):
            raise SpecificationError(
                f"unknown deadlock_action {self.deadlock_action!r}"
            )
        if self.on_miss not in ("record", "abort"):
            raise SpecificationError(f"unknown on_miss policy {self.on_miss!r}")
        if self.lock_overhead < 0 or self.context_switch_overhead < 0:
            raise SpecificationError("overheads must be non-negative")
        if self.horizon is not None and self.horizon <= 0:
            raise SpecificationError("horizon must be positive")


@dataclass
class DeadlockInfo:
    """Details of a halted run (``deadlock_action="halt"`` only)."""

    time: float
    cycle: Tuple[str, ...]


@dataclass
class SimulationResult:
    """Everything observable about one run."""

    taskset: TaskSet
    protocol_name: str
    jobs: Tuple[Job, ...]
    history: History
    trace: TraceRecorder
    database: Database
    end_time: float
    deadlock: Optional[DeadlockInfo] = None
    aborted_restarts: int = 0

    def job(self, name: str) -> Job:
        """Look up a job by its instance name, e.g. ``"T1#0"``."""
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(name)

    def jobs_of(self, transaction: str) -> Tuple[Job, ...]:
        """All instances of the named transaction, in release order."""
        return tuple(j for j in self.jobs if j.spec.name == transaction)

    @property
    def committed_jobs(self) -> Tuple[Job, ...]:
        return tuple(j for j in self.jobs if j.state is JobState.COMMITTED)

    @property
    def missed_jobs(self) -> Tuple[Job, ...]:
        return tuple(j for j in self.jobs if j.missed_deadline)

    def check_serializable(self):
        """Assert the committed history is conflict serializable; returns SG(H)."""
        return check_serializable(self.history)


class Simulator:
    """Simulates a task set under one concurrency-control protocol."""

    def __init__(
        self,
        taskset: TaskSet,
        protocol: ConcurrencyControlProtocol,
        config: Optional[SimConfig] = None,
        database: Optional[Database] = None,
    ):
        validate_taskset(taskset, require_priorities=True)
        self.taskset = taskset
        self.protocol = protocol
        self.config = config or SimConfig()
        self.db = database or Database(sorted(taskset.items))
        self.queue = EventQueue()
        self.table = LockTable()
        self.waits = WaitForGraph()
        self.history = History()
        self.trace = TraceRecorder()
        self.jobs: List[Job] = []
        self._running: Optional[Job] = None
        self._run_start = 0.0
        self._locks_dirty = False
        #: True when every active job is known to sit at its base priority
        #: (no inheritance in effect).  Lets ``_recompute_priorities`` skip
        #: the fixpoint entirely on uncontended stretches — by far the most
        #: frequent case in the benchmark workloads.
        self._prio_clean = True
        # ---- incremental scheduler state --------------------------------
        # Maintained on state transitions instead of recomputed by
        # filtering ``self.jobs`` per event; see docs/ENGINE.md
        # ("Incremental scheduler state") for the invariants and the
        # differential battery that guards them.
        #: Active (non-terminal) jobs in release order (dict = ordered set).
        self._active: Dict[Job, None] = {}
        #: Currently BLOCKED jobs (dict = ordered set).
        self._blocked: Dict[Job, None] = {}
        #: Lazy min-heap of (dispatch_key, push seq, job) over READY jobs.
        #: An entry is live iff the job is still READY *and* the stored key
        #: equals its current dispatch key; every transition into READY and
        #: every priority change of a READY job pushes a fresh entry, so
        #: outdated ones are simply skipped at pop time.
        self._ready_heap: List[Tuple[Tuple[int, float, int], int, Job]] = []
        self._ready_pushes = 0
        #: Per-denial blocker-name tuples, memoised by blocker identity
        #: (repeat denials by the same holders are the common case).
        self._blocker_names: Dict[Tuple[Job, ...], Tuple[str, ...]] = {}
        self._halted: Optional[DeadlockInfo] = None
        self._restart_count = 0
        self._started = False
        self._finalized = False
        self._events_processed = 0
        self._end_time = 0.0
        self.protocol.bind(taskset, self.table)
        self.protocol.bind_runtime(self.waits)
        # Skip the priority-floor calls entirely for protocols using the
        # inert default (max(base, DUMMY) is a no-op); IPCP keeps its floor.
        self._floor = (
            None
            if type(self.protocol).priority_floor
            is ConcurrencyControlProtocol.priority_floor
            else self.protocol.priority_floor
        )
        # Same inert-default elision for the other per-event protocol
        # hooks: only CCP releases early, only OCC-BC aborts at commit,
        # and nothing in the library overrides the grant/release hooks —
        # ``None`` here means "don't even make the call".
        proto_type = type(self.protocol)
        base = ConcurrencyControlProtocol
        self._after_op = (
            None if proto_type.after_operation is base.after_operation
            else self.protocol.after_operation
        )
        self._before_commit = (
            None if proto_type.before_commit is base.before_commit
            else self.protocol.before_commit
        )
        self._on_granted = (
            None if proto_type.on_granted is base.on_granted
            else self.protocol.on_granted
        )
        self._on_release_all = (
            None if proto_type.on_release_all is base.on_release_all
            else self.protocol.on_release_all
        )
        # ---- array kernel ----------------------------------------------
        self.kernel = (
            build_kernel(self.protocol, self.table, self.waits)
            if self.config.kernel
            else None
        )
        if self.kernel is None:
            self._decide = self.protocol.decide
            self._sysceil = self.protocol.system_ceiling
        elif self.config.debug_invariants:
            # Reference path decides; every kernel answer is cross-checked.
            self._decide = self._decide_checked
            self._sysceil = self._sysceil_checked
        else:
            self._decide = self.kernel.decide
            self._sysceil = self.kernel.system_ceiling

        if (
            self.config.on_miss == "abort"
            and self.protocol.install_policy is not InstallPolicy.AT_COMMIT
        ):
            raise SpecificationError(
                f"{self.protocol.name}: firm deadlines (on_miss='abort') "
                "require deferred updates; dropping a transaction that "
                "installed writes in place would need undo"
            )

        self._horizon = self._effective_horizon()

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _effective_horizon(self) -> Optional[float]:
        if self.config.horizon is not None:
            return self.config.horizon
        if all(s.period is None for s in self.taskset):
            return None  # one-shot: run to completion
        hp = self.taskset.hyperperiod()
        if hp is None:
            raise SpecificationError(
                "periodic task set without an integral hyperperiod: "
                "an explicit SimConfig.horizon is required"
            )
        max_offset = max(s.offset for s in self.taskset)
        return hp + max_offset

    def _instances_allowed(self, next_instance: int) -> bool:
        if self.config.max_instances is None:
            return True
        return next_instance < self.config.max_instances

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run to completion (or the horizon) and return the result."""
        self.start()
        self.advance()
        return self.finalize()

    def start(self) -> None:
        """Seed the calendar with the initial releases.

        Part of the stepping API: ``start()`` once, then ``advance(until)``
        any number of times, then ``finalize()``.  ``run()`` is the
        one-shot composition of the three.
        """
        if self._started:
            raise SimulationError("simulation already started")
        self._started = True
        for spec in self.taskset:
            if self._horizon is None or spec.offset < self._horizon - _EPS:
                self.queue.push(spec.offset, "arrival", (spec, 0))

    def advance(self, until: Optional[float] = None) -> float:
        """Process events up to and including time ``until``.

        With ``until=None`` runs to the horizon / quiescence.  Returns the
        current simulation time.  Between calls the simulator's live state
        (``jobs``, ``table``, ``waits``, the partially-built trace) can be
        inspected — the basis for interactive debugging and for tests that
        assert on intermediate lock-table states.
        """
        if not self._started:
            raise SimulationError("advance() before start()")
        if self._finalized:
            raise SimulationError("simulation already finalized")
        # Loop-invariant lookups, hoisted: the body runs once per calendar
        # event and these attribute chains show up in profiles.
        queue = self.queue
        max_events = self.config.max_events
        horizon = self._horizon
        record_sysceil = self.config.record_sysceil
        debug_invariants = self.config.debug_invariants
        while queue:
            if self._events_processed >= max_events:
                raise SimulationError(
                    f"event cap ({max_events}) exceeded; "
                    "likely a livelock in the protocol under test"
                )
            next_time = queue.peek_time()
            if (
                horizon is not None
                and next_time is not None
                and next_time > horizon + _EPS
            ):
                break
            if until is not None and next_time is not None and next_time > until + _EPS:
                break
            event = queue.pop()
            self._events_processed += 1
            now = event.time
            if now > self._end_time:
                self._end_time = now
            self._charge_running(now)
            self._handle(event)
            # Drain every event scheduled for this same instant before
            # dispatching: a transaction arriving at time t must see the
            # state *after* completions at time t (paper: "at time 3, T3
            # completes and releases its locks; T4 resumes"), and a job
            # whose operation completed at t must not request its next
            # lock until same-time arrivals have been released.
            while self._halted is None:
                next_time = queue.peek_time()
                if next_time is None or next_time > now + _EPS:
                    break
                same_time_event = queue.pop()
                self._events_processed += 1
                self._handle(same_time_event)
            if self._halted is not None:
                break
            self._dispatch(now)
            if self._halted is not None:
                break
            if record_sysceil:
                self.trace.sysceil(now, self._sysceil(None))
            if debug_invariants:
                self._verify_incremental_state()
        return queue.now

    def finalize(self) -> SimulationResult:
        """Close the run (horizon accounting) and build the result."""
        if not self._started:
            raise SimulationError("finalize() before start()")
        if self._finalized:
            raise SimulationError("simulation already finalized")
        self._finalized = True
        end_time = self._end_time
        if self._horizon is not None:
            final = self._horizon if self.queue else min(end_time, self._horizon)
            if self._running is not None:
                self._charge_running(max(final, self.queue.now))
            end_time = max(end_time, final) if self.queue else end_time
            if self.queue:
                end_time = self._horizon
                self.trace.sched(end_time, SchedEventKind.HORIZON, "-")

        return SimulationResult(
            taskset=self.taskset,
            protocol_name=self.protocol.name,
            jobs=tuple(self.jobs),
            history=self.history,
            trace=self.trace,
            database=self.db,
            end_time=end_time,
            deadlock=self._halted,
            aborted_restarts=self._restart_count,
        )

    @property
    def events_processed(self) -> int:
        """Calendar events processed so far (perf-harness accounting)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Incremental scheduler state
    # ------------------------------------------------------------------
    def _push_ready(self, job: Job) -> None:
        """Add/refresh the heap entry for a job that is (now) READY."""
        self._ready_pushes += 1
        heapq.heappush(
            self._ready_heap, (job.dkey, self._ready_pushes, job)
        )

    def _peek_ready(self) -> Optional[Job]:
        """Highest-priority READY job; discards outdated heap entries."""
        heap = self._ready_heap
        while heap:
            key, _, job = heap[0]
            if job.state is JobState.READY and key == job.dkey:
                return job
            heapq.heappop(heap)
        return None

    def _verify_incremental_state(self) -> None:
        """Cross-check the incremental indexes against from-scratch filters.

        Only runs under ``SimConfig.debug_invariants`` — this is the
        differential battery's hook, not a production path.
        """
        expected_active = [j for j in self.jobs if j.state.active]
        if list(self._active) != expected_active:
            raise SimulationError(
                "active index diverged: "
                f"{[j.name for j in self._active]} != "
                f"{[j.name for j in expected_active]}"
            )
        expected_blocked = {j for j in self.jobs if j.state is JobState.BLOCKED}
        if set(self._blocked) != expected_blocked:
            raise SimulationError(
                "blocked index diverged: "
                f"{sorted(j.name for j in self._blocked)} != "
                f"{sorted(j.name for j in expected_blocked)}"
            )
        candidates = [
            j for j in self.jobs
            if j.state in (JobState.READY, JobState.RUNNING)
        ]
        slow = min(candidates, key=Job.dispatch_key) if candidates else None
        fast = self._peek_ready()
        running = self._running
        if (
            running is not None
            and running.state is JobState.RUNNING
            and (fast is None or running.dispatch_key() < fast.dispatch_key())
        ):
            fast = running
        if fast is not slow:
            raise SimulationError(
                "ready-heap best diverged: "
                f"{fast.name if fast else None} != "
                f"{slow.name if slow else None}"
            )
        index = self.table.ceiling_index
        if index is not None:
            index.self_check()
        if self.kernel is not None:
            self.kernel.self_check()

    # ------------------------------------------------------------------
    # Kernel cross-checking (debug_invariants only)
    # ------------------------------------------------------------------
    def _decide_checked(self, job: Job, item: str, mode: LockMode):
        """Object-path decision, with the kernel's answer asserted equal
        field-by-field (the per-request half of the differential battery;
        the object decision is the one acted on)."""
        reference = self.protocol.decide(job, item, mode)
        fast = self.kernel.decide(job, item, mode)
        mismatch = type(fast) is not type(reference)
        if not mismatch:
            if isinstance(reference, Grant):
                mismatch = fast.rule != reference.rule
            else:  # the kernel never emits AbortAndGrant
                mismatch = (
                    fast.blockers != reference.blockers
                    or fast.reason != reference.reason
                    or fast.inherit != reference.inherit
                )
        if mismatch:
            raise SimulationError(
                f"kernel decision diverged for {job.name}/{item}/{mode}: "
                f"kernel={fast!r} reference={reference!r}"
            )
        return reference

    def _sysceil_checked(self, exclude: Optional[Job]) -> int:
        reference = self.protocol.system_ceiling(exclude)
        fast = self.kernel.system_ceiling(exclude)
        if fast != reference:
            raise SimulationError(
                f"kernel system ceiling diverged: "
                f"kernel={fast} reference={reference}"
            )
        return reference

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    def _charge_running(self, now: float) -> None:
        """Charge elapsed CPU time to the running job and record the slice."""
        job = self._running
        if job is None:
            self._run_start = now
            return
        elapsed = now - self._run_start
        if elapsed > _EPS:
            job.op_remaining -= elapsed
            if job.op_remaining < -1e-6:
                raise SimulationError(
                    f"{job.name}: operation over-ran by {-job.op_remaining}"
                )
            job.op_remaining = max(job.op_remaining, 0.0)
            self.trace.segment(job.name, self._run_start, now)
        self._run_start = now

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _handle(self, event: ScheduledEvent) -> None:
        if event.kind == "arrival":
            spec, instance = event.payload
            self._handle_arrival(spec, instance, event.time)
        elif event.kind == "op_done":
            job, token = event.payload
            self._handle_op_done(job, token, event.time)
        elif event.kind == "deadline":
            self._handle_deadline(event.payload, event.time)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _handle_arrival(self, spec, instance: int, now: float) -> None:
        job = Job(spec, instance, now)
        self.jobs.append(job)
        self._active[job] = None
        self._push_ready(job)
        self.trace.sched(now, SchedEventKind.ARRIVAL, job.name)
        if self.config.on_miss == "abort" and job.absolute_deadline is not None:
            self.queue.push(job.absolute_deadline, "deadline", job)
        if spec.period is not None and self._instances_allowed(instance + 1):
            next_time = now + spec.period
            if self._horizon is None or next_time < self._horizon - _EPS:
                self.queue.push(next_time, "arrival", (spec, instance + 1))

    def _handle_deadline(self, job: Job, now: float) -> None:
        """Firm-deadline drop: discard an uncommitted job at its deadline."""
        if not job.state.active:
            return  # committed in time (or already dropped)
        if job.state is JobState.BLOCKED:
            job.end_block(now)
        if self._running is job:
            self._running = None
        self.table.release_all(job)
        if self._on_release_all is not None:
            self._on_release_all(job)
        self.waits.forget(job)
        self._recompute_priorities()
        job.workspace.discard()
        job.completion_token += 1
        job.scheduled_completion = None
        job.pending_request = None
        job.state = JobState.DROPPED
        self._active.pop(job, None)
        self._blocked.pop(job, None)
        self.history.record_abort(job.name, now)
        self.trace.sched(now, SchedEventKind.MISS, job.name)
        self._locks_dirty = True

    def _handle_op_done(self, job: Job, token: int, now: float) -> None:
        if token != job.completion_token or job.state is not JobState.RUNNING:
            return  # stale completion from before a preemption/reschedule
        if job.op_remaining > _EPS:
            return  # stale: rescheduled later
        job.scheduled_completion = None
        op = job.current_op
        assert op is not None
        op_index = job.pc

        if op.kind is OpKind.WRITE:
            self._apply_write(job, op.item, now)

        job.pc += 1
        job.op_started = False

        if self._after_op is not None:
            released_early = False
            for item, mode in self._after_op(job, op_index):
                self.table.release(job, item, mode)
                released_early = True
                self._locks_dirty = True
            if released_early:
                self._recompute_priorities()

        if job.finished_program:
            self._commit(job, now)
        else:
            nxt = job.current_op
            assert nxt is not None
            job.op_remaining = nxt.duration

    def _apply_write(self, job: Job, item: str, now: float) -> None:
        value = f"{job.name}@{now:g}"
        if self.protocol.install_policy is InstallPolicy.AT_WRITE:
            version = self.db.install(item, value, job.name, now)
            self.history.record_install(job.name, item, version.seq, now)
        else:
            job.workspace.buffer_write(item, value)

    def _commit(self, job: Job, now: float) -> None:
        if self._before_commit is not None:
            victims = self._before_commit(job)
            if victims:
                self._apply_aborts(victims, job, now)
        if self.protocol.install_policy is InstallPolicy.AT_COMMIT:
            # Deferred writes install as deterministic functions of the
            # job's committed reads (see repro.db.values) so that the
            # value-replay oracle can re-execute the history serially.
            reads = job.workspace.external_reads()
            for item in sorted(job.workspace.pending_writes):
                value = write_digest(job.name, item, reads)
                version = self.db.install(item, value, job.name, now)
                self.history.record_install(job.name, item, version.seq, now)
        self.history.record_commit(job.name, now)
        self.table.release_all(job)
        if self._on_release_all is not None:
            self._on_release_all(job)
        self.waits.forget(job)
        self._recompute_priorities()
        job.state = JobState.COMMITTED
        self._active.pop(job, None)
        job.finish_time = now
        self.trace.sched(now, SchedEventKind.COMMIT, job.name)
        deadline = job.absolute_deadline
        if deadline is not None and now > deadline + _EPS:
            self.trace.sched(now, SchedEventKind.MISS, job.name)
        if self._running is job:
            self._running = None
        self._locks_dirty = True

    # ------------------------------------------------------------------
    # Lock acquisition
    # ------------------------------------------------------------------
    def _needs_lock(self, job: Job) -> Optional[Tuple[str, LockMode]]:
        """The lock the job's current operation still needs, if any."""
        op = job.current_op
        if op is None or job.op_started:
            return None
        mode = op.lock_mode
        if mode is None:
            return None
        assert op.item is not None
        held = self.table.held_modes(job, op.item)
        if held is not None and (mode in held or LockMode.WRITE in held):
            # Already holds the mode — or reads an item it write-locked.
            return None
        return (op.item, mode)

    def _start_op(self, job: Job, now: float) -> None:
        """Perform the current operation's entry effects (read binding)."""
        op = job.current_op
        assert op is not None
        job.op_started = True
        if op.kind is not OpKind.READ:
            return
        item = op.item
        assert item is not None
        if job.workspace.has_write(item):
            # Read of the job's own deferred write: intra-transaction, no
            # dependency on any committed version and no DataRead entry.
            job.workspace.note_read(item, None, now)
            return
        if item in job.data_read:
            return  # re-read under the same lock observes the same version
        version = self.db.read_committed(item)
        job.data_read.add(item)
        job.workspace.note_read(item, version.seq, now, value=version.value)
        self.history.record_read(job.name, item, version.seq, now)

    def _apply_grant(
        self, job: Job, item: str, mode: LockMode, rule: str, now: float,
        outcome: LockOutcome = LockOutcome.GRANTED,
        blockers: Tuple[str, ...] = (),
    ) -> None:
        self.table.grant(job, item, mode)
        if self._on_granted is not None:
            self._on_granted(job, item, mode)
        # A grant can raise the holder's priority floor (IPCP-style
        # ceiling elevation), so priorities are refreshed immediately.
        self._recompute_priorities()
        job.grant_rules.append((now, item, mode, rule))
        job.op_remaining += self.config.lock_overhead
        self.trace.lock(now, job.name, item, mode, outcome, rule, blockers)
        self._start_op(job, now)

    def _apply_block(
        self, job: Job, item: str, mode: LockMode, deny: Deny, now: float
    ) -> None:
        # Repeat denials by the same set of holders dominate contended
        # runs; memoise the sorted-name tuple per blocker identity instead
        # of re-sorting fresh strings on every denial.
        blocker_names = self._blocker_names.get(deny.blockers)
        if blocker_names is None:
            blocker_names = tuple(sorted(b.name for b in deny.blockers))
            self._blocker_names[deny.blockers] = blocker_names
        job.state = JobState.BLOCKED
        self._blocked[job] = None
        job.pending_request = (item, mode)
        # A job woken by a lock release and denied again at the same
        # instant continues its existing blocking interval instead of
        # opening a new one (the wake was bookkeeping, not progress).
        last = job.block_intervals[-1] if job.block_intervals else None
        if (
            last is not None
            and last.end is not None
            and abs(last.end - now) < _EPS
            and last.item == item
            and last.mode == mode
        ):
            last.end = None
            last.blockers = blocker_names
            last.reason = deny.reason
        else:
            job.begin_block(now, item, mode, blocker_names, deny.reason)
            self.trace.lock(
                now, job.name, item, mode, LockOutcome.DENIED, deny.reason,
                blocker_names,
            )
        self.waits.block(job, deny.blockers, inherit=deny.inherit)
        self._recompute_priorities()
        self._check_deadlock(now)

    def _apply_aborts(self, victims: Sequence[Job], by: Job, now: float) -> None:
        if self.protocol.install_policy is not InstallPolicy.AT_COMMIT:
            raise SimulationError(
                f"{self.protocol.name}: aborts require deferred updates "
                "(install_policy=AT_COMMIT); update-in-place aborts would "
                "need undo, which no protocol in this library uses"
            )
        for victim in victims:
            if victim.state is JobState.BLOCKED:
                victim.end_block(now)
            self.table.release_all(victim)
            if self._on_release_all is not None:
                self._on_release_all(victim)
            self.waits.forget(victim)
            self.history.record_abort(victim.name, now)
            if self._running is victim:
                self._running = None
            victim.restart()
            # restart() resets the victim to READY at its base priority
            # before the recompute below snapshots "previous" priorities,
            # so the heap entry must be refreshed here explicitly.
            self._blocked.pop(victim, None)
            self._push_ready(victim)
            self._restart_count += 1
            self.trace.sched(now, SchedEventKind.ABORT, victim.name, by.name)
        self._recompute_priorities()
        self._locks_dirty = True

    def _check_deadlock(self, now: float) -> None:
        cycle = self.waits.find_cycle()
        if cycle is None:
            return
        names = tuple(j.name for j in cycle)
        action = self.config.deadlock_action
        if action == "raise":
            raise DeadlockError(names, now)
        if action == "halt":
            self._halted = DeadlockInfo(now, names)
            return
        # abort_lowest: restart the lowest-base-priority job in the cycle.
        victim = min(cycle, key=lambda j: (j.base_priority, -j.seq))
        requester = max(cycle, key=lambda j: j.running_priority)
        self._apply_aborts([victim], requester, now)

    def _recompute_priorities(self) -> None:
        # ``_active`` iterates in release order, exactly like the
        # filter over ``self.jobs`` it replaced — the order in which
        # priority changes are recorded is part of the trace format.
        active = self._active
        if self._floor is None and not self.waits.has_edges:
            # No floor and no wait edge: the fixpoint degenerates to
            # "everyone at base".  When the previous pass already left
            # priorities there (``_prio_clean``), there is nothing to do;
            # otherwise reset-and-record is the whole recompute.
            if self._prio_clean:
                return
            now = self.queue.now
            for job in active:
                base = job.base_priority
                if job.running_priority != base:
                    job.running_priority = base
                    job.dkey = (-base, job.arrival, job.seq)
                    self.trace.priority(now, job.name, base)
                    if job.state is JobState.READY:
                        self._push_ready(job)
            self._prio_clean = True
            return
        self._prio_clean = False
        before = [(j, j.running_priority) for j in active]
        self.waits.recompute_priorities(active, floor=self._floor)
        now = self.queue.now
        for job, prev in before:
            if job.running_priority != prev:
                self.trace.priority(now, job.name, job.running_priority)
                if job.state is JobState.READY:
                    self._push_ready(job)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _wake_blocked(self, now: float) -> None:
        """Wake every blocked job after lock churn.

        Waking does NOT grant anything: the woken job re-issues its lock
        request when it is next scheduled (`_pick_runner`).  Granting at
        wake time — i.e. letting a transaction that does not hold the CPU
        acquire locks — is subtly wrong for the ceiling protocols: a
        lower-priority waiter could take a high-ceiling lock at the very
        instant a higher-priority transaction resumes, blocking it a
        second time and violating the single-blocking theorem.  (Our
        property-based tests caught exactly that before this design.)

        A woken job that is denied again at the same instant re-blocks
        with its blocking interval continued, so blocking-time accounting
        is unaffected by the wake/re-deny round trip.
        """
        if not self._blocked:
            return
        woken = list(self._blocked)
        self._blocked.clear()
        for job in woken:
            job.end_block(now)
            job.state = JobState.READY
            job.pending_request = None
            self.waits.unblock(job)
            self._push_ready(job)
        self._recompute_priorities()

    def _pick_runner(self, now: float) -> Optional[Job]:
        """Choose the next job for the CPU, acquiring locks on the way.

        The highest-priority ready job is examined; if its next operation
        needs a lock, the request happens *now* (this is the instant the
        paper's examples say "T arrives and requests to lock x").  A denial
        blocks the job (with priority inheritance) and the next candidate
        is examined.

        Whenever locks were released inside this loop (deadlock-resolution
        aborts, early releases), blocked jobs are re-evaluated *before*
        picking the next runner — otherwise a restarted victim could
        re-acquire the contested lock ahead of the blocked winner and
        recreate the deadlock forever.
        """
        while True:
            while self._locks_dirty and self._halted is None:
                self._locks_dirty = False
                self._wake_blocked(now)
            if self._halted is not None:
                return None
            # Highest-priority candidate = best live heap entry vs. the
            # (single possible) running job; dispatch keys are unique, so
            # this agrees with the old min() over a filtered job list.
            best = self._peek_ready()
            running = self._running
            if (
                running is not None
                and running.state is JobState.RUNNING
                and (best is None or running.dkey < best.dkey)
            ):
                best = running
            if best is None:
                return None
            need = self._needs_lock(best)
            if need is None:
                if not best.op_started:
                    self._start_op(best, now)
                return best
            item, mode = need
            decision = self._decide(best, item, mode)
            if isinstance(decision, Grant):
                self._apply_grant(best, item, mode, decision.rule, now)
                return best
            if isinstance(decision, AbortAndGrant):
                self._apply_aborts(decision.victims, best, now)
                self._apply_grant(
                    best, item, mode, decision.reason, now,
                    outcome=LockOutcome.ABORT_GRANTED,
                    blockers=tuple(v.name for v in decision.victims),
                )
                return best
            assert isinstance(decision, Deny)
            if best.state is JobState.RUNNING:
                self._running = None
            self._apply_block(best, item, mode, decision, now)
            if self._halted is not None:
                return None

    def _dispatch(self, now: float) -> None:
        chosen = self._pick_runner(now)
        if self._halted is not None:
            return
        previous = self._running
        if chosen is previous:
            if chosen is not None:
                self._schedule_completion(chosen, now)
            return
        if previous is not None and previous.state is JobState.RUNNING:
            previous.state = JobState.READY
            self._push_ready(previous)
            previous.completion_token += 1
            previous.scheduled_completion = None
            previous.preemptions += 1
            self.trace.sched(
                now, SchedEventKind.PREEMPT, previous.name,
                chosen.name if chosen else None,
            )
        switched_between_jobs = previous is not None and chosen is not None
        self._running = chosen
        self._run_start = now
        if chosen is not None:
            if switched_between_jobs and self.config.context_switch_overhead > 0:
                chosen.op_remaining += self.config.context_switch_overhead
                chosen.scheduled_completion = None  # force a reschedule
            chosen.state = JobState.RUNNING
            self.trace.sched(now, SchedEventKind.DISPATCH, chosen.name)
            self._schedule_completion(chosen, now)

    def _schedule_completion(self, job: Job, now: float) -> None:
        """(Re)schedule the running job's operation-completion event.

        Idempotent: when a valid completion event is already pending at the
        right time, nothing is scheduled (otherwise popping a stale event
        would invalidate the valid one, ping-ponging forever).
        """
        target = now + job.op_remaining
        if (
            job.scheduled_completion is not None
            and abs(job.scheduled_completion - target) < _EPS
        ):
            return
        job.completion_token += 1
        job.scheduled_completion = target
        self.queue.push(target, "op_done", (job, job.completion_token))
