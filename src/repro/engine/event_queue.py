"""A deterministic event calendar.

The queue is a binary heap keyed by ``(time, kind rank, sequence)``: events
at the same simulation time pop by kind rank and then in insertion order,
which makes every run reproducible.  Cancellation is handled by *tokens* —
an operation-completion event carries the token it was scheduled under, and
the simulator bumps a job's token when the job is preempted, so stale
completions are recognised and dropped instead of being laboriously removed
from the heap.

Hot-path notes: the kind rank is resolved **once at push time** and stored
on the event (popping compares plain ``(float, int, int)`` tuples, never
touching the rank table or the event object), and :class:`ScheduledEvent`
carries ``__slots__`` — a long run allocates one event per arrival,
completion, and deadline check, so the per-instance dict is worth skipping.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.exceptions import SimulationError

#: Same-time ordering: operation completions (and the commits they trigger)
#: happen before new arrivals at the same instant, matching the paper's
#: narration ("at time 3, T3 completes its execution and releases its
#: locks" — an arrival at time 3 already sees them released).
#: Deadline checks run after completions (a commit at exactly the deadline
#: meets it) and after arrivals.
_KIND_RANK = {"op_done": 0, "arrival": 1, "deadline": 2}
_DEFAULT_RANK = 9


@dataclass(**DATACLASS_SLOTS)
class ScheduledEvent:
    """An entry in the calendar.

    Not frozen: a frozen dataclass routes every ``__init__`` field store
    through ``object.__setattr__``, and one event is allocated per
    arrival/completion/deadline on the hot path.  Treat instances as
    immutable anyway.

    Attributes:
        time: simulation time at which the event fires.
        seq: tie-breaking insertion sequence (assigned by the queue).
        kind: event discriminator string (``"arrival"``, ``"op_done"``...).
        payload: event-specific data (kept opaque to the queue).
        rank: same-time kind rank, resolved from ``kind`` at push time.
    """

    time: float
    seq: int
    kind: str
    payload: Any
    rank: int = _DEFAULT_RANK

    def sort_key(self) -> Tuple[float, int, int]:
        """Heap ordering: time, then same-time kind rank, then insertion."""
        return (self.time, self.rank, self.seq)


class EventQueue:
    """Binary-heap calendar with deterministic same-time ordering."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, ScheduledEvent]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event (starts at 0)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: str, payload: Any) -> ScheduledEvent:
        """Schedule an event; ``time`` must not precede the current time."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule {kind!r} at t={time} in the past (now={self._now})"
            )
        rank = _KIND_RANK.get(kind, _DEFAULT_RANK)
        event = ScheduledEvent(time, next(self._counter), kind, payload, rank)
        heapq.heappush(self._heap, (time, rank, event.seq, event))
        return event

    def pop(self) -> ScheduledEvent:
        """Pop the earliest event and advance the clock to it."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)[3]
        self._now = event.time
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` when the calendar is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain(self) -> Iterator[ScheduledEvent]:
        """Pop every remaining event in order (used by tests)."""
        while self._heap:
            yield self.pop()
