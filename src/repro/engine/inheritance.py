"""Priority inheritance over the wait-for graph.

The paper's mechanism: "If a transaction blocks a higher priority
transaction, its running priority will inherit that of the higher priority
transaction" — transitively, until the blocker releases the locks involved.

This module owns the wait-for graph (waiter -> blockers) and recomputes
every job's running priority as::

    running(j) = max(base(j), max{ running(w) : j blocks w })

by fixpoint iteration.  Task sets are small (the paper's analysis targets
tens of transactions), so the O(V·E) fixpoint is simpler and safer than an
incremental scheme.  The same graph feeds deadlock (cycle) detection.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.engine.job import Job


class WaitForGraph:
    """Waiter -> blockers edges, with inheritance and cycle detection."""

    def __init__(self) -> None:
        self._blocked_on: Dict[Job, Tuple[Job, ...]] = {}
        #: Waiters whose blockers do NOT inherit (2PL-HP, plain 2PL).  The
        #: edges still exist for deadlock detection.
        self._no_inherit: Set[Job] = set()
        #: Optional mirror of the edges (the array kernel's blocked
        #: bitsets); notified on every block/unblock/forget.
        self._listener = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def attach_listener(self, listener) -> None:
        """Install an edge mirror (one per graph); it is rebuilt from the
        current edges and then notified of every mutation."""
        self._listener = listener
        listener.rebuild_waits(self)

    def block(self, waiter: Job, blockers: Iterable[Job], inherit: bool = True) -> None:
        """Record that ``waiter`` waits on ``blockers`` (replacing old edges)."""
        blockers = tuple(blockers)
        assert waiter not in blockers, f"{waiter.name} cannot block on itself"
        self._blocked_on[waiter] = blockers
        if inherit:
            self._no_inherit.discard(waiter)
        else:
            self._no_inherit.add(waiter)
        if self._listener is not None:
            self._listener.on_block(waiter, blockers)

    def unblock(self, waiter: Job) -> None:
        """Remove ``waiter``'s wait edges (its request was granted)."""
        self._blocked_on.pop(waiter, None)
        self._no_inherit.discard(waiter)
        if self._listener is not None:
            self._listener.on_unblock(waiter)

    def forget(self, job: Job) -> None:
        """Remove the job entirely (commit/abort): as waiter and as blocker."""
        self._blocked_on.pop(job, None)
        self._no_inherit.discard(job)
        for waiter, blockers in list(self._blocked_on.items()):
            if job in blockers:
                remaining = tuple(b for b in blockers if b is not job)
                if remaining:
                    self._blocked_on[waiter] = remaining
                else:
                    # The waiter's retry is triggered by the caller; keep an
                    # empty edge set out of the graph.
                    del self._blocked_on[waiter]
        if self._listener is not None:
            self._listener.on_forget(job)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def blockers_of(self, waiter: Job) -> Tuple[Job, ...]:
        """The jobs ``waiter`` currently waits on (empty when not blocked)."""
        return self._blocked_on.get(waiter, ())

    def waiters(self) -> Tuple[Job, ...]:
        """Every currently blocked job."""
        return tuple(self._blocked_on)

    def is_blocked(self, job: Job) -> bool:
        """Whether ``job`` currently waits on anyone."""
        return job in self._blocked_on

    @property
    def has_edges(self) -> bool:
        """Whether any wait edge exists at all (cheap guard letting the
        engine skip whole inheritance passes on uncontended stretches)."""
        return bool(self._blocked_on)

    def waiters_on(self, blocker: Job) -> Tuple[Job, ...]:
        """Jobs directly waiting on ``blocker``."""
        return tuple(
            w for w, blockers in self._blocked_on.items() if blocker in blockers
        )

    def transitive_waiters_on(self, blocker: Job) -> "Set[Job]":
        """Every job transitively blocked waiting on ``blocker``.

        Used by PCP-DA's locking conditions: Lemma 8 / Theorem 2 require
        that locks held by a transaction *waiting on the requester* never
        deny the requester (a waiter cannot make progress until the
        requester does, so treating its read locks as active ceilings
        would manufacture exactly the wait cycle the theorem rules out).
        """
        out: Set[Job] = set()
        frontier = [blocker]
        while frontier:
            current = frontier.pop()
            for waiter, blockers in self._blocked_on.items():
                if current in blockers and waiter not in out:
                    out.add(waiter)
                    frontier.append(waiter)
        return out

    # ------------------------------------------------------------------
    # Priority inheritance
    # ------------------------------------------------------------------
    def recompute_priorities(
        self,
        jobs: Iterable[Job],
        floor: "Optional[callable]" = None,
    ) -> None:
        """Reset every job to its base priority (lifted to the protocol's
        floor, e.g. IPCP's lock ceilings), then propagate inheritance
        along wait-for edges to a fixpoint."""
        if floor is None:
            for job in jobs:
                base = job.base_priority
                if job.running_priority != base:
                    job.running_priority = base
                    job.dkey = (-base, job.arrival, job.seq)
        else:
            for job in jobs:
                lifted = max(job.base_priority, floor(job))
                if job.running_priority != lifted:
                    job.running_priority = lifted
                    job.dkey = (-lifted, job.arrival, job.seq)
        if not self._blocked_on:
            return
        changed = True
        while changed:
            changed = False
            for waiter, blockers in self._blocked_on.items():
                if waiter in self._no_inherit:
                    continue
                for blocker in blockers:
                    inherited = waiter.running_priority
                    if blocker.running_priority < inherited:
                        blocker.running_priority = inherited
                        blocker.dkey = (-inherited, blocker.arrival, blocker.seq)
                        changed = True

    # ------------------------------------------------------------------
    # Deadlock detection
    # ------------------------------------------------------------------
    def find_cycle(self) -> Optional[Tuple[Job, ...]]:
        """Return jobs forming a wait-for cycle, or ``None``.

        Deterministic: exploration follows job release order.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Job, int] = {}
        parent: Dict[Job, Optional[Job]] = {}

        def succ(job: Job) -> List[Job]:
            return sorted(self._blocked_on.get(job, ()), key=lambda j: j.seq)

        roots = sorted(self._blocked_on, key=lambda j: j.seq)
        for root in roots:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[Job, List[Job]]] = [(root, succ(root))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, nxts = stack[-1]
                advanced = False
                while nxts:
                    nxt = nxts.pop(0)
                    state = colour.get(nxt, WHITE)
                    if state == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, succ(nxt)))
                        advanced = True
                        break
                    if state == GREY:
                        cycle = [node]
                        cur = node
                        while cur is not nxt:
                            cur = parent[cur]  # type: ignore[assignment]
                            cycle.append(cur)
                        cycle.reverse()
                        return tuple(cycle)
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None
