"""Interning: dense integer ids for items, jobs, and their static attributes.

The interning pass runs once per kernel build (i.e. at ``bind()`` time):

* **items** — the task set's item names, sorted, become ids ``0..n-1``;
  their static ``Wceil``/``Aceil`` priorities become flat int lists and
  each transaction spec's write set becomes an item *bitmask*;
* **jobs** — job slots are assigned dynamically on a job's first contact
  with the kernel (jobs are created during the run, not at bind time) and
  live for the job's lifetime; per-slot arrays hold the job object, its
  spec's write mask, and a memoised bitmask of ``DataRead`` (see
  :meth:`Interner.read_mask`).

Sets of jobs are then plain Python ints used as bitsets (one bit per job
slot), which makes the kernel's exclusion tests and holder collection
single machine-word operations for realistic run sizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.model.spec import TaskSet, TransactionSpec


class Interner:
    """Bidirectional item/job ↔ id maps plus flattened static attributes."""

    __slots__ = (
        "items", "item_ids", "wceil", "aceil", "spec_write_mask",
        "jobs", "job_ids", "job_write_mask", "_read_len", "_read_mask",
        "_free_slots",
    )

    def __init__(self, taskset: "TaskSet", ceilings) -> None:
        #: Item names in id order (ids are ranks in the sorted name list).
        self.items: Tuple[str, ...] = tuple(sorted(taskset.items))
        self.item_ids: Dict[str, int] = {
            name: iid for iid, name in enumerate(self.items)
        }
        #: Static ceilings by item id (0 = DUMMY_PRIORITY = no ceiling).
        self.wceil: List[int] = [ceilings.wceil(name) for name in self.items]
        self.aceil: List[int] = [ceilings.aceil(name) for name in self.items]
        #: Item bitmask of each spec's write set, by spec name.
        self.spec_write_mask: Dict[str, int] = {
            spec.name: self._mask_of(spec.write_set) for spec in taskset
        }
        # ---- job slots (assigned on first contact) ----------------------
        self.jobs: List["Job"] = []
        self.job_ids: Dict["Job", int] = {}
        self.job_write_mask: List[int] = []
        # DataRead bitmask memo: valid while len(job.data_read) is
        # unchanged.  Safe because a job's DataRead content is a
        # deterministic function of its length — it grows along the spec's
        # program order and restart() clears it back to length 0.
        self._read_len: List[int] = []
        self._read_mask: List[int] = []
        # Slots of retired jobs, reusable by the next first contact.  The
        # service churns through sessions (each a fresh Job), so without
        # recycling slot indices — and with them the magnitude of every
        # bitset word — would grow without bound.
        self._free_slots: List[int] = []

    def _mask_of(self, names) -> int:
        mask = 0
        ids = self.item_ids
        for name in names:
            mask |= 1 << ids[name]
        return mask

    # ------------------------------------------------------------------
    # Ids → names → ids
    # ------------------------------------------------------------------
    def item_id(self, name: str) -> int:
        """The dense id of item ``name``."""
        return self.item_ids[name]

    def item_name(self, iid: int) -> str:
        """The item name behind id ``iid``."""
        return self.items[iid]

    def intern_job(self, job: "Job") -> int:
        """The job's slot id, assigning a fresh slot on first contact."""
        jid = self.job_ids.get(job)
        if jid is None:
            if self._free_slots:
                jid = self._free_slots.pop()
                self.job_ids[job] = jid
                self.jobs[jid] = job
                self.job_write_mask[jid] = self.spec_write_mask[job.spec.name]
                self._read_len[jid] = -1
                self._read_mask[jid] = 0
            else:
                jid = len(self.jobs)
                self.job_ids[job] = jid
                self.jobs.append(job)
                self.job_write_mask.append(self.spec_write_mask[job.spec.name])
                self._read_len.append(-1)
                self._read_mask.append(0)
        return jid

    def release_job(self, job: "Job") -> None:
        """Return ``job``'s slot to the free pool (caller guarantees no
        live bitset references its bit any more)."""
        jid = self.job_ids.pop(job, None)
        if jid is None:
            return
        self.jobs[jid] = None
        self.job_write_mask[jid] = 0
        self._read_len[jid] = -1
        self._read_mask[jid] = 0
        self._free_slots.append(jid)

    def job_of(self, jid: int) -> "Job":
        """The job occupying slot ``jid``."""
        return self.jobs[jid]

    # ------------------------------------------------------------------
    # Dynamic per-job masks
    # ------------------------------------------------------------------
    def read_mask(self, jid: int) -> int:
        """Bitmask of ``DataRead(job)``, memoised by current length."""
        data_read = self.jobs[jid].data_read
        n = len(data_read)
        if self._read_len[jid] != n:
            self._read_len[jid] = n
            self._read_mask[jid] = self._mask_of(data_read)
        return self._read_mask[jid]

    def jobs_from_word(self, word: int) -> List["Job"]:
        """The job objects whose slot bits are set in ``word``."""
        jobs = self.jobs
        out: List["Job"] = []
        while word:
            bit = word & -word
            out.append(jobs[bit.bit_length() - 1])
            word ^= bit
        return out
