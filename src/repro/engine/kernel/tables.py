"""Per-protocol transition tables for the array kernel.

A :class:`ProtocolTable` is the *compiled* form of a ceiling protocol's
admission rules: every quantity the kernel's integer inner loop needs —
which family of decision logic applies, where per-item ceiling levels come
from, which side of a lock entry gates the exclusion test, which ablation
flags are on, and the exact rule/reason strings the object path emits — is
frozen here at ``compile_table()`` time.  The kernel itself then contains
no protocol-specific branching beyond one dispatch on ``family``.

Tables are produced by each protocol's ``compile_table()`` hook (see
:mod:`repro.protocols.base`); protocols that return ``None`` (plain 2PL,
2PL-HP, PIP-2PL, OCC-BC, RW-PCP-A) keep the object path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

# ---------------------------------------------------------------------------
# Decision families — which admission logic the kernel runs.
# ---------------------------------------------------------------------------
#: PCP-DA: LC1 writes, LC2/LC3/LC4 + Table-1 footnote reads, waiter-exempt
#: ceilings (Lemma 8 / Theorem 2).
FAMILY_PCPDA = 0
#: Weak PCP-DA (Example 5): LC1 writes, naive conditions (1)/(2) reads.
FAMILY_WEAK_PCPDA = 1
#: RW-PCP / CCP / original PCP: grant iff P > Sysceil, blame the holders.
FAMILY_SYSCEIL = 2
#: IPCP: grant iff the item is free (ceiling elevation happens via the
#: priority floor, not the admission test).
FAMILY_IPCP = 3

# ---------------------------------------------------------------------------
# Level sources — how a locked item's current ceiling level is derived.
# All levels are plain ints; 0 (= DUMMY_PRIORITY) means "no ceiling".
# ---------------------------------------------------------------------------
#: ``Wceil(x)`` while read-locked, nothing while only write-locked (PCP-DA).
LEVEL_READ_WCEIL = 0
#: ``Aceil(x)`` while write-locked, ``Wceil(x)`` while only read-locked
#: (RW-PCP's runtime r/w ceiling).
LEVEL_RW = 1
#: ``Aceil(x)`` while locked in any mode (original PCP, IPCP).
LEVEL_ACEIL = 2


@dataclass(frozen=True)
class ProtocolTable:
    """One protocol's compiled decision table.

    Attributes:
        protocol: registry name (diagnostics only).
        family: one of the ``FAMILY_*`` opcodes.
        level_source: one of the ``LEVEL_*`` opcodes.
        select_readers: whether only read holders gate the ceiling
            exclusion test (PCP-DA semantics) or all holders do.
        waiter_exempt: exempt transitive waiters on the requester from the
            ceiling computations (PCP-DA's Lemma 8 machinery).
        enable_lc3 / enable_lc4 / enable_table1: PCP-DA ablation flags.
        write_grant_rule / write_conflict_reason: the LC1 write path
            strings (families with a shared-read write path).
        read_grant_rules: grant-rule strings in precedence order —
            ("LC2","LC3","LC4") for PCP-DA, the naive conditions for weak
            PCP-DA, and the single rule for the sysceil/IPCP families.
        conflict_reason: denial text when the requested item itself is
            held by another transaction (Table-1 text for PCP-DA).
        ceiling_reason: denial text for pure ceiling blocking.
        ceilings: the protocol's bound static ceiling table (supplies the
            Wceil/Aceil integers the interning pass flattens).
    """

    protocol: str
    family: int
    level_source: int
    select_readers: bool
    ceilings: object
    waiter_exempt: bool = False
    enable_lc3: bool = True
    enable_lc4: bool = True
    enable_table1: bool = True
    write_grant_rule: str = "LC1"
    write_conflict_reason: str = (
        "conflict blocking: write-lock denied, item is read-locked"
    )
    read_grant_rules: Tuple[str, ...] = ()
    conflict_reason: str = ""
    ceiling_reason: str = ""


#: Denial text of the Table-1 footnote condition (must match
#: repro.core.locking_conditions verbatim for byte-identical traces).
TABLE1_REASON = (
    "conflict blocking: DataRead(holder) ∩ WriteSet(requester) ≠ ∅ "
    "(Table 1 * condition)"
)
#: Denial text when LC2/LC3/LC4 all fail.
PCPDA_CEILING_REASON = "ceiling blocking: LC2/LC3/LC4 all false"
#: Denial text of the weakened protocol's conditions (1)/(2).
WEAK_CEILING_REASON = "ceiling blocking: conditions (1) and (2) false"
