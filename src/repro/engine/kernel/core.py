"""The array kernel: table-driven integer admission decisions.

One :class:`Kernel` instance serves one run (or one live lock-manager
shard).  It mirrors the run's :class:`~repro.engine.lock_table.LockTable`
and :class:`~repro.engine.inheritance.WaitForGraph` into flat integer
state —

* per-item **lock-mode words**: one int bitset of reader slots and one of
  writer slots per item id;
* per-item **ceiling levels** plus a lazy max-heap of ``(-level, item)``,
  maintained with the same bump-on-grant / lazy-repair scheme as
  :class:`~repro.engine.lock_table.CeilingIndex` but over interned ints;
* **blocked bitsets**: one word of currently blocked job slots and a
  per-slot word of its blockers, from which transitive waiter sets (the
  PCP-DA exemption) are closed with a few machine-word operations —

and answers every admission decision from the bound
:class:`~repro.engine.kernel.tables.ProtocolTable` without touching
``Job``/``frozenset`` machinery until a ``Deny`` must name its blockers.

The mirrors are fed by the lock table's and wait graph's notification
hooks, so object state and array state can never drift silently;
``self_check()`` re-derives everything from the object structures and is
wired into the differential battery via ``SimConfig.debug_invariants``.

Decisions are **byte-identical** to the object path by construction: the
rule/reason strings come from the compiled table, ``Deny`` blocker tuples
are sorted by job release sequence exactly like the protocol objects sort
them, and the golden-trace corpus plus the Hypothesis differential tests
pin the equivalence.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.engine.interfaces import Deny, Grant
from repro.engine.kernel.interning import Interner
from repro.engine.kernel.tables import (
    FAMILY_IPCP,
    FAMILY_PCPDA,
    FAMILY_SYSCEIL,
    FAMILY_WEAK_PCPDA,
    LEVEL_ACEIL,
    LEVEL_READ_WCEIL,
    LEVEL_RW,
    PCPDA_CEILING_REASON,
    ProtocolTable,
    TABLE1_REASON,
    WEAK_CEILING_REASON,
)
from repro.model.spec import DUMMY_PRIORITY, LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.inheritance import WaitForGraph
    from repro.engine.job import Job
    from repro.engine.lock_table import LockTable


def _seq_of(job: "Job") -> int:
    return job.seq


class Kernel:
    """Array-state admission engine for one (protocol, table, graph) run."""

    __slots__ = (
        "table_spec", "interner", "_lock_table", "_wait_graph",
        "_reader_word", "_writer_word", "_cur_level", "_heap",
        "_blocked_word", "_blockers_word",
        "_family", "_level_source", "_select_readers", "_waiter_exempt",
        "_wceil", "_aceil",
        "_grant_write", "_read_grants", "_decide_read",
    )

    def __init__(
        self,
        table_spec: ProtocolTable,
        taskset,
        lock_table: "LockTable",
        wait_graph: "Optional[WaitForGraph]" = None,
    ) -> None:
        self.table_spec = table_spec
        self.interner = Interner(taskset, table_spec.ceilings)
        n = len(self.interner.items)
        self._lock_table = lock_table
        self._wait_graph = wait_graph
        # ---- lock-mode words + ceiling levels ---------------------------
        self._reader_word: List[int] = [0] * n
        self._writer_word: List[int] = [0] * n
        self._cur_level: List[int] = [0] * n
        self._heap: List[Tuple[int, int]] = []
        # ---- blocked bitsets -------------------------------------------
        self._blocked_word = 0
        self._blockers_word: List[int] = []
        # ---- compiled table unpacked into slots ------------------------
        self._family = table_spec.family
        self._level_source = table_spec.level_source
        self._select_readers = table_spec.select_readers
        self._waiter_exempt = table_spec.waiter_exempt
        self._wceil = self.interner.wceil
        self._aceil = self.interner.aceil
        self._grant_write = Grant(table_spec.write_grant_rule)
        self._read_grants = tuple(
            Grant(rule) for rule in table_spec.read_grant_rules
        )
        self._decide_read = {
            FAMILY_PCPDA: self._decide_read_pcpda,
            FAMILY_WEAK_PCPDA: self._decide_read_weak,
            FAMILY_SYSCEIL: self._decide_sysceil,
            FAMILY_IPCP: self._decide_ipcp,
        }[self._family]
        lock_table.attach_kernel_state(self)
        if wait_graph is not None:
            wait_graph.attach_listener(self)

    # ==================================================================
    # Mirror maintenance — driven by LockTable / WaitForGraph hooks
    # ==================================================================
    def rebuild(self, lock_table: "LockTable") -> None:
        """Re-derive the lock words and levels from the table's entries."""
        self._lock_table = lock_table
        n = len(self.interner.items)
        self._reader_word = [0] * n
        self._writer_word = [0] * n
        self._cur_level = [0] * n
        self._heap = []
        intern = self.interner
        for item, entry in lock_table.all_entries().items():
            iid = intern.item_ids[item]
            for job in entry.readers:
                self._reader_word[iid] |= 1 << intern.intern_job(job)
            for job in entry.writers:
                self._writer_word[iid] |= 1 << intern.intern_job(job)
            self._refresh_level(iid)

    def rebuild_waits(self, wait_graph: "WaitForGraph") -> None:
        """Re-derive the blocked bitsets from the graph's edges."""
        self._wait_graph = wait_graph
        self._blocked_word = 0
        for jid in range(len(self._blockers_word)):
            self._blockers_word[jid] = 0
        for waiter, blockers in wait_graph._blocked_on.items():
            self.on_block(waiter, blockers)

    def _jid(self, job: "Job") -> int:
        jid = self.interner.job_ids.get(job)
        if jid is not None:
            return jid  # known job: skip the intern + grow path
        jid = self.interner.intern_job(job)
        blockers = self._blockers_word
        while len(blockers) <= jid:
            blockers.append(0)
        return jid

    def on_grant(self, job: "Job", item: str, mode: LockMode) -> None:
        """Lock-table hook: set the holder bit and refresh the level."""
        iid = self.interner.item_ids[item]
        bit = 1 << self._jid(job)
        if mode is LockMode.READ:
            self._reader_word[iid] |= bit
        else:
            self._writer_word[iid] |= bit
        self._refresh_level(iid)

    def on_release(self, job: "Job", item: str, mode: LockMode) -> None:
        """Lock-table hook: clear the holder bit and refresh the level."""
        iid = self.interner.item_ids[item]
        bit = 1 << self._jid(job)
        if mode is LockMode.READ:
            self._reader_word[iid] &= ~bit
        else:
            self._writer_word[iid] &= ~bit
        self._refresh_level(iid)

    def _refresh_level(self, iid: int) -> None:
        readers = self._reader_word[iid]
        writers = self._writer_word[iid]
        source = self._level_source
        if source == LEVEL_READ_WCEIL:
            new = self._wceil[iid] if readers else 0
        elif source == LEVEL_RW:
            new = (
                (self._aceil[iid] if writers else self._wceil[iid])
                if (readers or writers)
                else 0
            )
        else:  # LEVEL_ACEIL
            new = self._aceil[iid] if (readers or writers) else 0
        if new != self._cur_level[iid]:
            self._cur_level[iid] = new
            if new:
                heapq.heappush(self._heap, (-new, iid))

    # ---- wait-graph listener -----------------------------------------
    def on_block(self, waiter: "Job", blockers: Iterable["Job"]) -> None:
        """Wait-graph hook: record ``waiter``'s blockers as a bitset."""
        jid = self._jid(waiter)
        word = 0
        for blocker in blockers:
            word |= 1 << self._jid(blocker)
        self._blockers_word[jid] = word
        self._blocked_word |= 1 << jid

    def on_unblock(self, waiter: "Job") -> None:
        """Wait-graph hook: drop ``waiter`` from the blocked bitset."""
        jid = self.interner.job_ids.get(waiter)
        if jid is None:
            return
        bit = 1 << jid
        if self._blocked_word & bit:
            self._blocked_word &= ~bit
            self._blockers_word[jid] = 0

    def on_forget(self, job: "Job") -> None:
        """Wait-graph hook: erase ``job`` as both waiter and blocker."""
        jid = self.interner.job_ids.get(job)
        if jid is None:
            return
        self.on_unblock(job)
        bit = 1 << jid
        blocked = self._blocked_word
        blockers = self._blockers_word
        word = blocked
        while word:
            low = word & -word
            word ^= low
            waiter = low.bit_length() - 1
            if blockers[waiter] & bit:
                remaining = blockers[waiter] & ~bit
                blockers[waiter] = remaining
                if not remaining:
                    # Mirror of WaitForGraph.forget: a waiter whose last
                    # blocker vanished leaves the graph entirely.
                    self._blocked_word &= ~low

    def retire(self, job: "Job") -> None:
        """Recycle a finished job's slot (service sessions churn jobs).

        Callers must have released the job's locks and forgotten its wait
        edges first; the slot is kept (not recycled) if any holder bit is
        still live, so a misuse degrades to the old grow-only behaviour
        instead of corrupting another job's bitsets.
        """
        jid = self.interner.job_ids.get(job)
        if jid is None:
            return
        self.on_forget(job)
        bit = 1 << jid
        for iid in range(len(self._reader_word)):
            if (self._reader_word[iid] | self._writer_word[iid]) & bit:
                return
        self._blockers_word[jid] = 0
        self.interner.release_job(job)

    # ==================================================================
    # Ceiling queries
    # ==================================================================
    def _transitive_waiters_word(self, jid: int) -> int:
        """Bitset of slots transitively blocked waiting on ``jid``."""
        blocked = self._blocked_word
        if not blocked:
            return 0
        blockers = self._blockers_word
        targets = 1 << jid
        changed = True
        while changed:
            changed = False
            word = blocked
            while word:
                low = word & -word
                word ^= low
                if not (targets & low) and blockers[low.bit_length() - 1] & targets:
                    targets |= low
                    changed = True
        return targets & ~(1 << jid)

    def _scan(self, excluded_word: int) -> Tuple[int, int]:
        """Highest current level among items with a relevant holder outside
        ``excluded_word``, plus the bit-union of those holders over every
        item at that level.  ``(0, 0)`` when nothing qualifies.

        The integer re-expression of :meth:`CeilingIndex.scan` plus the
        per-item holder collection that used to follow it: stale heap
        entries are dropped permanently, valid ones restored.
        """
        heap = self._heap
        current = self._cur_level
        readers = self._reader_word
        writers = self._writer_word
        select_readers = self._select_readers
        restore: List[Tuple[int, int]] = []
        seen = set()
        level = 0
        holders = 0
        while heap:
            neg, iid = heap[0]
            if current[iid] != -neg:
                heapq.heappop(heap)  # outdated: drop for good
                continue
            if level and -neg < level:
                break
            heapq.heappop(heap)
            if iid in seen:
                continue
            seen.add(iid)
            restore.append((neg, iid))
            word = readers[iid] if select_readers else readers[iid] | writers[iid]
            word &= ~excluded_word
            if word:
                if not level:
                    level = -neg
                holders |= word
        for entry in restore:
            heapq.heappush(heap, entry)
        return level, holders

    def system_ceiling(self, exclude: "Optional[Job]" = None) -> int:
        """Current system ceiling (global when ``exclude`` is ``None``).

        The global query is amortised O(1): with no exclusions the first
        *current* heap entry qualifies by construction (a non-zero level
        implies a relevant holder), so only stale entries are popped.
        """
        if exclude is None:
            heap = self._heap
            current = self._cur_level
            while heap:
                neg, iid = heap[0]
                if current[iid] == -neg:
                    return -neg
                heapq.heappop(heap)
            return DUMMY_PRIORITY
        jid = self.interner.job_ids.get(exclude)
        if jid is None:
            return self.system_ceiling(None)
        level, _ = self._scan(1 << jid)
        return level

    # ==================================================================
    # Decisions
    # ==================================================================
    def decide(self, job: "Job", item: str, mode: LockMode):
        """Admission decision; mirrors ``protocol.decide`` byte-for-byte."""
        iid = self.interner.item_ids[item]
        if mode is LockMode.WRITE and self._family != FAMILY_SYSCEIL \
                and self._family != FAMILY_IPCP:
            # Shared-read families (PCP-DA, weak PCP-DA): LC1.
            me = 1 << self._jid(job)
            others = self._reader_word[iid] & ~me
            if not others:
                return self._grant_write
            return Deny(
                self._sorted_jobs(others),
                self.table_spec.write_conflict_reason,
            )
        return self._decide_read(job, iid)

    def decide_batch(self, requests: Sequence, on_deny=None):
        """Decide ``requests`` (``(job, item, mode)`` or ``(job, item,
        mode, pre_decision)`` tuples) in order, stopping after the first
        non-``Deny`` decision; returns the decisions made.

        ``on_deny(request, decision)`` runs after each denial *before* the
        next request is decided, so callers can refresh wait-graph blame
        between decisions exactly like the one-at-a-time loop did (a
        denial's inheritance edges can change the next requester's
        transitive-waiter exemption).
        """
        out = []
        for request in requests:
            pre = request[3] if len(request) > 3 else None
            decision = (
                pre
                if pre is not None
                else self.decide(request[0], request[1], request[2])
            )
            out.append(decision)
            if not isinstance(decision, Deny):
                break
            if on_deny is not None:
                on_deny(request, decision)
        return out

    def _sorted_jobs(self, word: int) -> Tuple["Job", ...]:
        jobs = self.interner.jobs_from_word(word)
        jobs.sort(key=_seq_of)
        return tuple(jobs)

    # ---- family: PCP-DA ----------------------------------------------
    def _decide_read_pcpda(self, job: "Job", iid: int):
        intern = self.interner
        jid = self._jid(job)
        me = 1 << jid
        excluded = me
        if self._waiter_exempt and self._blocked_word:
            excluded |= self._transitive_waiters_word(jid)
        sysceil, tstar = self._scan(excluded)
        spec = self.table_spec
        priority = job.running_priority

        # Table-1 footnote against the item's current write holders.
        violators = 0
        write_mask = intern.job_write_mask[jid]
        if spec.enable_table1:
            word = self._writer_word[iid] & ~me
            while word:
                low = word & -word
                word ^= low
                if intern.read_mask(low.bit_length() - 1) & write_mask:
                    violators |= low

        lc2 = priority > sysceil
        if lc2 and not violators:
            return self._read_grants[0]  # LC2
        lc3 = lc4 = False
        if tstar:
            union_writes = 0
            word = tstar
            while word:
                low = word & -word
                word ^= low
                union_writes |= intern.job_write_mask[low.bit_length() - 1]
            item_outside = not (union_writes >> iid) & 1
            hpw = self._wceil[iid]
            if spec.enable_lc3 and priority > hpw and item_outside:
                lc3 = True
            elif (
                spec.enable_lc4
                and priority == hpw
                and item_outside
                and not self._reader_word[iid] & ~excluded
            ):
                lc4 = True
                word = tstar
                while word:
                    low = word & -word
                    word ^= low
                    if intern.read_mask(low.bit_length() - 1) & write_mask:
                        lc4 = False
                        break
        if not violators and (lc2 or lc3 or lc4):
            return self._read_grants[0 if lc2 else (1 if lc3 else 2)]
        if violators:
            return Deny(self._sorted_jobs(violators), TABLE1_REASON)
        return Deny(self._sorted_jobs(tstar), PCPDA_CEILING_REASON)

    # ---- family: weak PCP-DA -----------------------------------------
    def _decide_read_weak(self, job: "Job", iid: int):
        me = 1 << self._jid(job)
        sysceil, holders = self._scan(me)
        priority = job.running_priority
        if priority > sysceil:
            return self._read_grants[0]  # cond(1) P>Sysceil
        if priority >= self._wceil[iid]:
            return self._read_grants[1]  # cond(2) P>=HPW
        return Deny(self._sorted_jobs(holders), WEAK_CEILING_REASON)

    # ---- family: RW-PCP / CCP / original PCP -------------------------
    def _decide_sysceil(self, job: "Job", iid: int):
        me = 1 << self._jid(job)
        sysceil, holders = self._scan(me)
        if job.running_priority > sysceil:
            return self._read_grants[0]  # P>Sysceil
        spec = self.table_spec
        locked = (self._reader_word[iid] | self._writer_word[iid]) & ~me
        reason = spec.conflict_reason if locked else spec.ceiling_reason
        return Deny(self._sorted_jobs(holders), reason)

    # ---- family: IPCP ------------------------------------------------
    def _decide_ipcp(self, job: "Job", iid: int):
        me = 1 << self._jid(job)
        holders = (self._reader_word[iid] | self._writer_word[iid]) & ~me
        if not holders:
            return self._read_grants[0]  # ceiling-elevated
        return Deny(self._sorted_jobs(holders), self.table_spec.conflict_reason)

    # ==================================================================
    # Differential verification
    # ==================================================================
    def self_check(self) -> None:
        """Assert the array mirrors equal a from-scratch re-derivation
        of the lock table and wait graph (differential-battery hook)."""
        intern = self.interner
        n = len(intern.items)
        readers = [0] * n
        writers = [0] * n
        for item, entry in self._lock_table.all_entries().items():
            iid = intern.item_ids[item]
            for job in entry.readers:
                readers[iid] |= 1 << intern.job_ids[job]
            for job in entry.writers:
                writers[iid] |= 1 << intern.job_ids[job]
        if readers != self._reader_word or writers != self._writer_word:
            raise AssertionError("kernel lock words diverged from the table")
        represented = {iid for _, iid in self._heap}
        for iid in range(n):
            rw, ww = self._reader_word[iid], self._writer_word[iid]
            source = self._level_source
            if source == LEVEL_READ_WCEIL:
                expect = self._wceil[iid] if rw else 0
            elif source == LEVEL_RW:
                expect = (self._aceil[iid] if ww else self._wceil[iid]) \
                    if (rw or ww) else 0
            else:
                expect = self._aceil[iid] if (rw or ww) else 0
            if expect != self._cur_level[iid]:
                raise AssertionError(
                    f"kernel ceiling level diverged for {intern.items[iid]}: "
                    f"incremental={self._cur_level[iid]} rescan={expect}"
                )
            if expect and iid not in represented:
                raise AssertionError(
                    f"kernel ceiling heap lost live item {intern.items[iid]}"
                )
        if self._wait_graph is not None:
            blocked = 0
            expect_blockers = [0] * len(self._blockers_word)
            for waiter, blockers in self._wait_graph._blocked_on.items():
                jid = intern.job_ids[waiter]
                blocked |= 1 << jid
                word = 0
                for blocker in blockers:
                    word |= 1 << intern.job_ids[blocker]
                expect_blockers[jid] = word
            if blocked != self._blocked_word \
                    or expect_blockers != self._blockers_word:
                raise AssertionError(
                    "kernel blocked bitsets diverged from the wait graph"
                )
