"""Array kernel: the table-driven integer fast path for lock admission.

See :mod:`repro.engine.kernel.core` for the engine,
:mod:`repro.engine.kernel.tables` for the compiled per-protocol tables,
:mod:`repro.engine.kernel.interning` for the id maps, and
docs/ENGINE.md ("Array kernel") for the design and fallback matrix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.engine.kernel.core import Kernel
from repro.engine.kernel.interning import Interner
from repro.engine.kernel.tables import ProtocolTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.inheritance import WaitForGraph
    from repro.engine.interfaces import ConcurrencyControlProtocol
    from repro.engine.lock_table import LockTable

__all__ = ["Kernel", "Interner", "ProtocolTable", "build_kernel"]


def build_kernel(
    protocol: "ConcurrencyControlProtocol",
    lock_table: "LockTable",
    wait_graph: "Optional[WaitForGraph]" = None,
) -> Optional[Kernel]:
    """Compile ``protocol`` into a :class:`Kernel` bound to the run's lock
    table and wait graph, or ``None`` when the protocol keeps the object
    path (its ``compile_table()`` returns ``None``).

    Must be called after ``protocol.bind(...)`` — compilation flattens the
    bound task set's items and ceilings into the interned arrays.
    """
    table_spec = protocol.compile_table()
    if table_spec is None:
        return None
    return Kernel(table_spec, protocol.taskset, lock_table, wait_graph)
