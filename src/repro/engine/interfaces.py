"""The contract between the simulator and a concurrency-control protocol.

A protocol answers exactly one question — *may this job take this lock right
now?* — through :meth:`ConcurrencyControlProtocol.decide`, returning one of
three decisions:

* :class:`Grant` — take the lock; carries the rule that fired (e.g. "LC2"),
  which the trace records so tests can pin the paper's examples rule-by-rule.
* :class:`Deny` — block; carries the jobs responsible, which then inherit
  the requester's priority (the paper's priority-inheritance mechanism).
* :class:`AbortAndGrant` — abort the listed victims and then take the lock
  (only abort-based baselines such as 2PL-HP ever return this; PCP-DA never
  restarts a transaction).

Protocols also declare an :class:`InstallPolicy`: PCP-DA and other
workspace-model protocols install writes at commit; RW-PCP / CCP follow the
paper's update-in-place assumption and install at write-operation time.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Optional, Tuple

from repro.model.spec import DUMMY_PRIORITY, LockMode, TaskSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.engine.lock_table import LockTable


class InstallPolicy(enum.Enum):
    """When a transaction's writes become visible in the database."""

    #: Deferred updates: buffered in the private workspace, installed
    #: atomically at commit (update-in-workspace model; PCP-DA).
    AT_COMMIT = "at_commit"
    #: Immediate updates: installed when the write operation completes
    #: (update-in-place model; RW-PCP, CCP, original PCP).
    AT_WRITE = "at_write"


@dataclass(frozen=True)
class Grant:
    """Permission to take the lock.

    Attributes:
        rule: name of the locking condition that admitted the request
            ("LC1".."LC4" for PCP-DA; protocol-specific strings otherwise).
    """

    rule: str = ""


@dataclass(frozen=True)
class Deny:
    """The request must wait.

    Attributes:
        blockers: jobs responsible for the denial; they inherit the
            requester's running priority while it waits.
        reason: human-readable cause, recorded in the trace
            (e.g. "ceiling blocking", "conflict blocking").
    """

    blockers: "Tuple[Job, ...]"
    reason: str = ""
    #: Whether the blockers inherit the waiter's priority.  True for every
    #: protocol in the paper's family; 2PL-HP and plain 2PL set False.
    inherit: bool = True


@dataclass(frozen=True)
class AbortAndGrant:
    """Abort the victims, then grant the requester (2PL-HP style)."""

    victims: "Tuple[Job, ...]"
    reason: str = ""


Decision = object  # union of Grant | Deny | AbortAndGrant (py>=3.9 friendly)


class ConcurrencyControlProtocol(abc.ABC):
    """Base class every protocol implements.

    Lifecycle: the simulator calls :meth:`bind` once before the run, then
    :meth:`decide` for each lock request of a *running* job,
    :meth:`on_granted` after recording a grant in the lock table,
    :meth:`after_operation` when an operation completes (CCP's early-unlock
    hook), and :meth:`on_release_all` when a job commits or aborts.

    Class attributes:
        name: registry key (``"pcp-da"``, ``"rw-pcp"``, ...).
        install_policy: when writes are installed.
        can_deadlock: whether the protocol admits wait-for cycles.  The
            simulator *always* runs cycle detection; for protocols declaring
            ``can_deadlock = False`` a detected cycle is reported as an
            invariant violation rather than resolved.
        deadlock_free_requires_scheduler: the deadlock-freedom guarantee
            holds only under single-CPU priority scheduling (IPCP: while a
            transaction holds a lock it runs boosted to the ceiling, so a
            competitor is never *dispatched* — nothing about the locking
            conditions themselves prevents a cycle).  The ceiling-admission
            protocols (PCP family) keep their guarantee under true
            concurrency, because LC2-style checks compare against ceilings
            that cover every future competitor.  The live service
            (:mod:`repro.service`) resolves cycles of scheduler-dependent
            protocols by victim abort instead of raising an invariant
            violation; the simulator ignores this flag (it *is* the
            scheduler).
    """

    name: ClassVar[str] = ""
    install_policy: ClassVar[InstallPolicy] = InstallPolicy.AT_COMMIT
    can_deadlock: ClassVar[bool] = False
    deadlock_free_requires_scheduler: ClassVar[bool] = False

    def __init__(self) -> None:
        self._taskset: Optional[TaskSet] = None
        self._table: Optional["LockTable"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, taskset: TaskSet, table: "LockTable") -> None:
        """Attach the protocol to a run's task set and lock table.

        Subclasses extending this must call ``super().bind(...)``.
        """
        self._taskset = taskset
        self._table = table

    def bind_runtime(self, wait_graph) -> None:
        """Attach the live wait-for graph (called by the simulator).

        Ceiling protocols consult it to exempt transactions that are
        transitively blocked on a requester from that requester's lock
        test (the paper's Lemma 8 / Theorem 2 machinery).
        """
        self._wait_graph = wait_graph

    def waiters_on(self, job: "Job"):
        """Jobs transitively blocked waiting on ``job`` (empty set when no
        wait graph is attached, e.g. in protocol-level unit tests)."""
        graph = getattr(self, "_wait_graph", None)
        if graph is None:
            return set()
        return graph.transitive_waiters_on(job)

    @property
    def taskset(self) -> TaskSet:
        assert self._taskset is not None, "protocol used before bind()"
        return self._taskset

    @property
    def table(self) -> "LockTable":
        assert self._table is not None, "protocol used before bind()"
        return self._table

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def decide(self, job: "Job", item: str, mode: LockMode) -> Decision:
        """Admission decision for ``job`` requesting ``mode`` on ``item``.

        Called only when the job does not already hold the requested mode;
        lock upgrades (read held, write requested) do reach this method.
        """

    def on_granted(self, job: "Job", item: str, mode: LockMode) -> None:
        """Hook after a grant was recorded in the lock table."""

    def compile_table(self):
        """Compiled decision table for the array kernel, or ``None``.

        Called after :meth:`bind`.  A protocol returning a
        :class:`repro.engine.kernel.tables.ProtocolTable` has its
        ``decide`` / ``system_ceiling`` answered by the integer kernel
        (byte-identically); returning ``None`` — the default — keeps the
        object path.  Subclasses whose ``decide`` diverges from an
        inherited implementation must override this back to ``None``.
        """
        return None

    def after_operation(self, job: "Job", op_index: int) -> Tuple[Tuple[str, LockMode], ...]:
        """Locks to release early after the job finished operation ``op_index``.

        The default (2PL) releases nothing before commit.  CCP overrides
        this to implement its early-unlock rule.
        """
        return ()

    def priority_floor(self, job: "Job") -> int:
        """Protocol-imposed lower bound on the job's running priority.

        The engine computes ``running = max(base, floor, inherited)``.
        The default floor is the dummy priority (no effect); the immediate
        priority ceiling protocol raises it to the ceilings of the locks
        the job holds.
        """
        return DUMMY_PRIORITY

    def before_commit(self, job: "Job") -> "Tuple[Job, ...]":
        """Jobs to abort when ``job`` commits (validation-based protocols).

        Called at the start of commit processing, before the job's writes
        are installed.  OCC with broadcast commit returns the active
        transactions whose reads the committing writes invalidate; locking
        protocols return nothing (the default).
        """
        return ()

    def on_release_all(self, job: "Job") -> None:
        """Hook after all of ``job``'s locks were released (commit/abort)."""

    # ------------------------------------------------------------------
    # Introspection (tracing, figures)
    # ------------------------------------------------------------------
    def system_ceiling(self, exclude: "Optional[Job]" = None) -> int:
        """Current system priority ceiling, from ``exclude``'s point of view.

        The global ceiling (``exclude=None``) is what the paper plots as
        the ``Max_Sysceil`` dotted line in Figures 4 and 5.  Protocols with
        no ceiling concept return :data:`DUMMY_PRIORITY`.
        """
        return DUMMY_PRIORITY

    def describe(self) -> str:
        """One-line description used in reports."""
        return self.name or type(self).__name__
