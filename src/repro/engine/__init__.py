"""Discrete-event simulation engine for a single-processor hard RTDBS.

This package is the substrate the paper's evaluation runs on: a
deterministic discrete-event simulator of a single CPU with preemptive
fixed-priority scheduling, priority inheritance, a lock manager, and
private per-transaction workspaces (the update-in-workspace model of
Section 4).  Concurrency-control protocols plug in through
:class:`~repro.engine.interfaces.ConcurrencyControlProtocol`.

Public names:

* :class:`~repro.engine.simulator.Simulator` and
  :class:`~repro.engine.simulator.SimulationResult`
* :class:`~repro.engine.simulator.SimConfig`
* :class:`~repro.engine.job.Job` / :class:`~repro.engine.job.JobState`
* :class:`~repro.engine.lock_table.LockTable`
* the protocol decision types
  :class:`~repro.engine.interfaces.Grant`,
  :class:`~repro.engine.interfaces.Deny`,
  :class:`~repro.engine.interfaces.AbortAndGrant`
"""

from repro.engine.interfaces import (
    AbortAndGrant,
    ConcurrencyControlProtocol,
    Deny,
    Grant,
    InstallPolicy,
)
from repro.engine.job import Job, JobState
from repro.engine.lock_table import LockTable
from repro.engine.simulator import SimConfig, SimulationResult, Simulator

__all__ = [
    "AbortAndGrant",
    "ConcurrencyControlProtocol",
    "Deny",
    "Grant",
    "InstallPolicy",
    "Job",
    "JobState",
    "LockTable",
    "SimConfig",
    "SimulationResult",
    "Simulator",
]
