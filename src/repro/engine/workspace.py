"""Private transaction workspaces (the update-in-workspace model).

Section 4 of the paper: "before a transaction commits, it reads and updates
data items only in its private workspace, and then data items are written
into the database only upon successful commit."

A :class:`Workspace` buffers a job's writes and remembers which installed
version each of its reads observed — the latter is what lets the
serializability checker bind reads to versions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass
class ReadRecord:
    """A read performed by the owning job.

    Attributes:
        item: data item read.
        version_seq: install sequence of the version observed; ``None`` when
            the read was satisfied from the job's own buffered write.
        time: when the read was performed.
        value: the value observed (used by the value-replay oracle).
    """

    item: str
    version_seq: Optional[int]
    time: float
    value: Any = None


class Workspace:
    """Buffered writes and read bookkeeping for one job."""

    def __init__(self) -> None:
        self._writes: Dict[str, Any] = {}
        self._reads: Dict[str, ReadRecord] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def buffer_write(self, item: str, value: Any) -> None:
        """Record a deferred write (latest write to an item wins)."""
        self._writes[item] = value

    def has_write(self, item: str) -> bool:
        """Whether the job has buffered a write to ``item``."""
        return item in self._writes

    def written_value(self, item: str) -> Any:
        """The buffered value of ``item`` (KeyError when never written)."""
        return self._writes[item]

    @property
    def pending_writes(self) -> Dict[str, Any]:
        """The updates to install at commit (copy; callers may not mutate)."""
        return dict(self._writes)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def note_read(
        self,
        item: str,
        version_seq: Optional[int],
        time: float,
        value: Any = None,
    ) -> None:
        """Remember the version a read observed (first read of an item wins;
        later re-reads see the same version under lock-until-commit)."""
        if item not in self._reads:
            self._reads[item] = ReadRecord(item, version_seq, time, value)

    def read_record(self, item: str) -> Optional[ReadRecord]:
        """The recorded read of ``item``, or ``None`` when never read.

        Used by the live service to answer re-reads under a held lock with
        the same observed version (the simulator keeps the value implicit,
        but a service client expects the value back on every read).
        """
        return self._reads.get(item)

    def external_reads(self) -> Dict[str, Any]:
        """``{item: observed value}`` for reads of *committed* versions
        (own-write reads excluded) — the inputs of the value-replay oracle."""
        return {
            record.item: record.value
            for record in self._reads.values()
            if record.version_seq is not None
        }

    @property
    def reads(self) -> Tuple[ReadRecord, ...]:
        return tuple(self._reads.values())

    def read_items(self) -> Tuple[str, ...]:
        """Items this workspace has recorded reads for."""
        return tuple(self._reads)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def discard(self) -> None:
        """Throw the workspace away (abort / restart)."""
        self._writes.clear()
        self._reads.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workspace(writes={sorted(self._writes)}, "
            f"reads={sorted(self._reads)})"
        )
