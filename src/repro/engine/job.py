"""Runtime state of a transaction instance (a *job*).

A job is one release of a periodic transaction: ``T2#0`` is the first
instance of ``T2``.  For serializability purposes each job is an independent
transaction; for scheduling purposes all instances of a spec share the same
base priority.

The job tracks everything the protocols consult at decision time:

* ``data_read`` — the paper's ``DataRead(T_i)``, the items the job has
  actually read so far (excluding reads satisfied from its own buffered
  writes; those create no inter-transaction dependency);
* the current running (possibly inherited) priority;
* held locks live in the shared :class:`~repro.engine.lock_table.LockTable`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.engine.workspace import Workspace
from repro.exceptions import SimulationError
from repro.model.spec import LockMode, Operation, TransactionSpec


class JobState(enum.Enum):
    """Lifecycle of a job."""

    READY = "ready"        # released, wants the CPU
    RUNNING = "running"    # executing on the CPU
    BLOCKED = "blocked"    # waiting for a lock
    COMMITTED = "committed"
    #: Terminal drop under the firm-deadline policy
    #: (``SimConfig.on_miss="abort"``): the job's work is discarded at its
    #: deadline and never re-executed.
    DROPPED = "dropped"

    @property
    def active(self) -> bool:
        return self not in (JobState.COMMITTED, JobState.DROPPED)


@dataclass(**DATACLASS_SLOTS)
class BlockInterval:
    """One contiguous interval during which the job waited for a lock."""

    start: float
    end: Optional[float]
    item: str
    mode: LockMode
    blockers: Tuple[str, ...]
    reason: str

    @property
    def duration(self) -> float:
        if self.end is None:
            raise SimulationError("block interval still open")
        return self.end - self.start


class Job:
    """Mutable runtime state of one transaction instance.

    ``__slots__`` is deliberate: sweeps release millions of jobs, and the
    dispatcher touches ``state`` / ``running_priority`` / ``seq`` on every
    event, so skipping the per-instance ``__dict__`` is a measurable win.
    """

    __slots__ = (
        "spec", "instance", "arrival", "name", "seq", "state", "pc",
        "op_remaining", "op_started", "completion_token",
        "scheduled_completion", "base_priority", "running_priority", "dkey",
        "workspace", "data_read", "pending_request", "block_intervals",
        "finish_time", "restarts", "preemptions", "grant_rules",
    )

    _seq_counter = 0

    def __init__(self, spec: TransactionSpec, instance: int, arrival: float):
        if spec.priority is None:
            raise SimulationError(f"{spec.name}: cannot release a job without a priority")
        self.spec = spec
        self.instance = instance
        self.arrival = arrival
        self.name = f"{spec.name}#{instance}"
        Job._seq_counter += 1
        #: Global release sequence; used only as a deterministic tie-breaker.
        self.seq = Job._seq_counter

        self.state = JobState.READY
        self.pc = 0  # index of the current operation
        self.op_remaining = spec.operations[0].duration
        #: True once the current operation's lock is held and its read/write
        #: side effect has been initiated.
        self.op_started = False
        #: Bumped on preemption so stale op-completion events are ignored.
        self.completion_token = 0
        #: Time of the currently scheduled (valid) completion event, if any.
        self.scheduled_completion: Optional[float] = None

        self.base_priority: int = spec.priority
        self.running_priority: int = spec.priority
        #: Materialised :meth:`dispatch_key`, rebuilt whenever
        #: ``running_priority`` changes (the dispatcher compares keys on
        #: every event; priority changes are orders of magnitude rarer).
        self.dkey: Tuple[int, float, int] = (-spec.priority, arrival, self.seq)

        self.workspace = Workspace()
        self.data_read: Set[str] = set()

        #: Pending lock request while BLOCKED: (item, mode).
        self.pending_request: Optional[Tuple[str, LockMode]] = None

        # ---- statistics -------------------------------------------------
        self.block_intervals: List[BlockInterval] = []
        self.finish_time: Optional[float] = None
        self.restarts = 0
        self.preemptions = 0
        self.grant_rules: List[Tuple[float, str, LockMode, str]] = []

    # ------------------------------------------------------------------
    # Program counter helpers
    # ------------------------------------------------------------------
    @property
    def current_op(self) -> Optional[Operation]:
        if self.pc >= len(self.spec.operations):
            return None
        return self.spec.operations[self.pc]

    @property
    def finished_program(self) -> bool:
        return self.pc >= len(self.spec.operations)

    @property
    def absolute_deadline(self) -> Optional[float]:
        rel = self.spec.relative_deadline
        return None if rel is None else self.arrival + rel

    @property
    def response_time(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival

    @property
    def missed_deadline(self) -> bool:
        """A job misses when it finishes strictly after its deadline, or
        never finishes (evaluated by the caller at the horizon)."""
        deadline = self.absolute_deadline
        if deadline is None:
            return False
        if self.finish_time is None:
            return True
        return self.finish_time > deadline + 1e-9

    # ------------------------------------------------------------------
    # Blocking bookkeeping
    # ------------------------------------------------------------------
    def begin_block(
        self,
        time: float,
        item: str,
        mode: LockMode,
        blockers: Tuple[str, ...],
        reason: str,
    ) -> None:
        """Open a blocking interval: the job now waits for ``item``."""
        self.block_intervals.append(
            BlockInterval(time, None, item, mode, blockers, reason)
        )

    def end_block(self, time: float) -> None:
        """Close the currently open blocking interval at ``time``."""
        if not self.block_intervals or self.block_intervals[-1].end is not None:
            raise SimulationError(f"{self.name}: no open block interval to close")
        self.block_intervals[-1].end = time

    def total_blocking_time(self) -> float:
        """Total time spent waiting for locks (closed intervals only)."""
        return sum(b.duration for b in self.block_intervals if b.end is not None)

    def distinct_blockers(self) -> FrozenSet[str]:
        """Names of base transactions (not instances) that ever blocked this job."""
        out: Set[str] = set()
        for b in self.block_intervals:
            for blocker in b.blockers:
                out.add(blocker.split("#", 1)[0])
        return frozenset(out)

    # ------------------------------------------------------------------
    # Restart (abort-based protocols only)
    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Reset the job to re-execute from its first operation."""
        self.pc = 0
        self.op_remaining = self.spec.operations[0].duration
        self.op_started = False
        self.completion_token += 1
        self.scheduled_completion = None
        self.workspace.discard()
        self.data_read.clear()
        self.pending_request = None
        self.running_priority = self.base_priority
        self.dkey = (-self.base_priority, self.arrival, self.seq)
        self.restarts += 1
        self.state = JobState.READY

    # ------------------------------------------------------------------
    # Ordering for the dispatcher
    # ------------------------------------------------------------------
    def dispatch_key(self) -> Tuple[int, float, int]:
        """Sort key: higher running priority first, then FIFO by release.

        Hot paths read the materialised :attr:`dkey` directly; this method
        is the readable accessor for everyone else.
        """
        return self.dkey

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.name}, state={self.state.value}, pc={self.pc}, "
            f"prio={self.running_priority}/{self.base_priority})"
        )
