"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands:

* ``repro examples`` — run the paper's worked examples under PCP-DA and
  RW-PCP and print the Gantt charts (Figures 1-5);
* ``repro table1`` — print the lock-compatibility table (Table 1);
* ``repro schedulability`` — Section 9 analysis on a random workload;
* ``repro compare`` — simulate one random workload under every protocol
  and print the metric comparison;
* ``repro protocols`` — list registered protocols;
* ``repro serve`` — serve a lock-manager catalog to concurrent TCP
  clients (NDJSON protocol, see docs/SERVICE.md);
* ``repro loadgen`` — drive a service with concurrent clients and verify
  the run's serializability from its shipped history;
* ``repro stress`` — the heavy-traffic parity harness: one seeded
  workload through every execution path (simulator kernel/object,
  service, sharded coordinator), decision-level parity sequentially and
  invariant-level parity under overload (docs/TESTING.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import schedulability_report
from repro.core.compatibility import render_compatibility_table
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import available_protocols, make_protocol
from repro.trace.gantt import render_gantt
from repro.trace.metrics import compute_metrics
from repro.trace.sysceil import SysceilTrace
from repro.workloads.examples import (
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset


def _cmd_examples(args: argparse.Namespace) -> int:
    runs = [
        ("Example 1 (Figure 1)", example1_taskset(), None),
        ("Example 3 (Figures 2/3)", example3_taskset(),
         SimConfig(horizon=11, max_instances=2)),
        ("Example 4 (Figures 4/5)", example4_taskset(), None),
    ]
    for title, taskset, config in runs:
        for protocol_name in ("pcp-da", "rw-pcp"):
            result = Simulator(
                taskset, make_protocol(protocol_name), config
            ).run()
            print(f"=== {title} under {protocol_name} ===")
            print(render_gantt(result))
            print(SysceilTrace.from_result(result).render())
            metrics = compute_metrics(result)
            for jm in sorted(metrics.jobs, key=lambda m: m.job):
                print(
                    f"  {jm.job}: finish={jm.finish}, "
                    f"blocked={jm.blocking_time:g}, miss={jm.missed_deadline}"
                )
            print()
    # Example 5: the deadlock demonstration.
    result = Simulator(
        example5_taskset(),
        make_protocol("weak-pcp-da"),
        SimConfig(deadlock_action="halt"),
    ).run()
    print("=== Example 5 under weak-pcp-da (conditions (1)/(2) only) ===")
    assert result.deadlock is not None
    print(
        f"deadlock at t={result.deadlock.time:g}: "
        f"{' -> '.join(result.deadlock.cycle)}"
    )
    result = Simulator(example5_taskset(), make_protocol("pcp-da")).run()
    print("=== Example 5 under pcp-da ===")
    print(render_gantt(result))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_compatibility_table())
    return 0


def _workload_from_args(args: argparse.Namespace) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=args.transactions,
        n_items=args.items,
        write_probability=args.write_probability,
        target_utilization=args.utilization,
        seed=args.seed,
    )


def _cmd_schedulability(args: argparse.Namespace) -> int:
    taskset = generate_taskset(_workload_from_args(args))
    print(taskset.describe())
    print()
    print(schedulability_report(taskset).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    taskset = generate_taskset(_workload_from_args(args))
    print(taskset.describe())
    print()
    print(
        f"{'protocol':<13} {'blocked':>9} {'miss%':>7} "
        f"{'restarts':>9} {'maxceil':>8}"
    )
    names = (
        "pcp-da", "rw-pcp", "ccp", "pcp", "pip-2pl", "2pl-hp", "2pl",
        "occ-bc", "rw-pcp-abort",
    )
    for name in names:
        config = SimConfig(deadlock_action="abort_lowest")
        result = Simulator(taskset, make_protocol(name), config).run()
        metrics = compute_metrics(result)
        print(
            f"{name:<13} {metrics.total_blocking_time:>9.2f} "
            f"{100 * metrics.miss_ratio:>6.1f}% "
            f"{metrics.total_restarts:>9} {metrics.max_sysceil:>8}"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Simulate one paper example and write the trace as JSON/CSV files."""
    import pathlib

    from repro.trace.export import (
        metrics_to_csv,
        result_to_json,
        segments_to_csv,
        sysceil_to_csv,
    )
    from repro.workloads.examples import (
        example1_taskset,
        example3_taskset,
        example4_taskset,
    )

    builders = {
        "example1": (example1_taskset, None),
        "example3": (example3_taskset, SimConfig(horizon=11, max_instances=2)),
        "example4": (example4_taskset, None),
    }
    try:
        build, config = builders[args.example]
    except KeyError:
        print(f"unknown example {args.example!r}; choose from {sorted(builders)}")
        return 2
    result = Simulator(build(), make_protocol(args.protocol), config).run()
    out = pathlib.Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = f"{args.example}_{args.protocol}"
    from repro.trace.svg import render_svg_gantt

    (out / f"{stem}.json").write_text(result_to_json(result))
    (out / f"{stem}_segments.csv").write_text(segments_to_csv(result))
    (out / f"{stem}_sysceil.csv").write_text(sysceil_to_csv(result))
    (out / f"{stem}_metrics.csv").write_text(metrics_to_csv(result))
    (out / f"{stem}.svg").write_text(
        render_svg_gantt(result, title=f"{args.example} under {args.protocol}")
    )
    print(f"wrote {stem}.json, {stem}.svg and 3 CSV series to {out}/")
    return 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    for name in available_protocols():
        print(name)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Simulate a user-supplied task-set file and print the outcome."""
    from repro.trace.sysceil import SysceilTrace
    from repro.workloads.io import load_taskset

    taskset = load_taskset(args.taskset)
    print(taskset.describe())
    print()
    config = SimConfig(
        horizon=args.horizon,
        on_miss="abort" if args.firm else "record",
        deadlock_action="abort_lowest",
    )
    result = Simulator(taskset, make_protocol(args.protocol), config).run()
    print(render_gantt(result))
    print(SysceilTrace.from_result(result).render())
    metrics = compute_metrics(result)
    for jm in sorted(metrics.jobs, key=lambda m: (m.transaction, m.arrival)):
        status = "MISSED" if jm.missed_deadline else "ok"
        finish = f"{jm.finish:g}" if jm.finish is not None else "-"
        print(
            f"  {jm.job}: finish={finish} blocked={jm.blocking_time:g} "
            f"restarts={jm.restarts} deadline {status}"
        )
    result.check_serializable()
    print(
        f"\n{metrics.committed_jobs}/{metrics.total_jobs} committed, "
        f"{metrics.missed_jobs} missed, total blocking "
        f"{metrics.total_blocking_time:g}; history is serializable"
    )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        if args.jobs > 1:
            print(
                "--profile measures only this process; use --jobs 1 for a "
                "complete picture (continuing anyway)",
                file=sys.stderr,
            )
        # cProfile.enable() clobbers whatever profile function was already
        # installed (coverage tools, an outer profiler), and disable() resets
        # it to None rather than to what was there before — so remember the
        # incumbent and reinstall it on every exit path, including when the
        # run itself raises.
        previous_profiler = sys.getprofile()
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _run_reproduce(args)
        finally:
            profiler.disable()
            try:
                print(
                    "\n--- cProfile: hottest functions (by cumulative time) ---",
                    file=sys.stderr,
                )
                # Stats() snapshots via create_stats(), which calls
                # disable() — clearing the profile hook again — so the
                # incumbent can only be reinstalled after the report.
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(25)
            except Exception as exc:  # the report must never mask the run
                print(f"(profile report failed: {exc})", file=sys.stderr)
            finally:
                sys.setprofile(previous_profiler)
    return _run_reproduce(args)


def _service_manager(taskset, protocol, config, shards, partitioner):
    """A plain or sharded lock manager, depending on ``--shards``."""
    from repro.service import LockManager, ShardedLockManager

    if shards > 1:
        return ShardedLockManager(
            taskset, protocol, config, shards=shards, partitioner=partitioner
        )
    return LockManager(taskset, protocol, config)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a generated catalog over TCP until interrupted."""
    import asyncio

    from repro.service import LockServer, ServiceConfig, install_uvloop

    loop_impl = install_uvloop(args.uvloop)
    taskset = generate_taskset(_workload_from_args(args))
    config = ServiceConfig(
        max_sessions=args.max_sessions,
        default_deadline_s=args.deadline,
    )

    async def run() -> int:
        supervisor = None
        if args.shard_procs > 1:
            from repro.service.sharding.procs import start_proc_deployment

            supervisor, manager = await start_proc_deployment(
                taskset,
                args.protocol,
                shards=args.shard_procs,
                config=config,
                partitioner=args.partitioner,
                on_crash=args.on_crash,
            )
            sharding = (
                f", {args.shard_procs} shard processes ({args.partitioner})"
            )
        else:
            manager = _service_manager(
                taskset, args.protocol, config, args.shards, args.partitioner
            )
            sharding = (
                f", {args.shards} shards ({args.partitioner})"
                if args.shards > 1 else ""
            )
        server = LockServer(manager, args.host, args.port)
        await server.start()
        print(
            f"repro-service listening on {server.host}:{server.port} "
            f"(protocol={args.protocol}, "
            f"{len(taskset.names)} transactions, "
            f"{len(taskset.items)} items{sharding}, "
            f"event loop {loop_impl})",
            flush=True,
        )
        try:
            if supervisor is None:
                await server.serve_forever()
                return 0
            # Multi-process mode: serve until interrupted OR the
            # deployment fails (a shard host died under on_crash=fail).
            serving = asyncio.ensure_future(server.serve_forever())
            crashed = asyncio.ensure_future(supervisor.crashed.wait())
            try:
                await asyncio.wait(
                    (serving, crashed),
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                for task in (serving, crashed):
                    task.cancel()
                await asyncio.gather(serving, crashed,
                                     return_exceptions=True)
            if supervisor.failed is not None:
                print(f"deployment failed: {supervisor.failed}",
                      file=sys.stderr)
                return 1
            return 0
        finally:
            await server.close()
            if supervisor is not None:
                await supervisor.stop()

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    return 0


def _cmd_shard_host(args: argparse.Namespace) -> int:
    """Run one shard host (normally spawned by the supervisor)."""
    from repro.service.sharding.procs.host import run_shard_host
    import asyncio

    try:
        return asyncio.run(run_shard_host(args))
    except KeyboardInterrupt:
        return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a lock-manager service and print the latency/oracle report."""
    import asyncio

    from repro.service import (
        LoadgenConfig,
        LockServer,
        ServiceConfig,
        connect_tcp,
        install_uvloop,
        run_loadgen,
    )

    install_uvloop(args.uvloop)
    config = LoadgenConfig(
        clients=args.clients,
        transactions_per_client=args.per_client,
        duration_s=args.duration,
        think_time_s=args.think_time,
        arrival_rate_hz=args.arrival_rate,
        burst_factor=args.burst_factor,
        burst_period_s=args.burst_period,
        burst_duty=args.burst_duty,
        deadline_s=args.deadline,
        seed=args.seed,
        abort_probability=args.abort_probability,
    )

    async def run():
        server = None
        supervisor = None
        if args.connect:
            host, _, port_text = args.connect.rpartition(":")
            if not host or not port_text.isdigit():
                raise SystemExit(f"--connect expects HOST:PORT, got {args.connect!r}")
            host, port = host, int(port_text)
        else:
            # Self-hosting mode: stand up the same TCP server `repro serve`
            # runs, on an ephemeral loopback port — still real sockets.
            taskset = generate_taskset(WorkloadConfig(
                n_transactions=args.transactions,
                n_items=args.items,
                write_probability=args.write_probability,
                target_utilization=args.utilization,
                seed=args.workload_seed,
            ))
            service_config = ServiceConfig(max_sessions=args.max_sessions)
            if args.shard_procs > 1:
                from repro.service.sharding.procs import (
                    start_proc_deployment,
                )

                supervisor, manager = await start_proc_deployment(
                    taskset,
                    args.protocol,
                    shards=args.shard_procs,
                    config=service_config,
                    partitioner=args.partitioner,
                )
            else:
                manager = _service_manager(
                    taskset,
                    args.protocol,
                    service_config,
                    args.shards,
                    args.partitioner,
                )
            server = LockServer(manager, "127.0.0.1", 0)
            await server.start()
            host, port = server.host, server.port
        try:
            return await run_loadgen(config, lambda: connect_tcp(host, port))
        finally:
            if server is not None:
                await server.close()
            if supervisor is not None:
                await supervisor.stop()

    report = asyncio.run(run())
    print(report.render())
    return 0 if report.serializable else 1


def _cmd_stress(args: argparse.Namespace) -> int:
    """Run the parity + overload stress harness and gate on its verdicts.

    Three phases (docs/TESTING.md):

    1. **decision parity** — a battery of seeded workloads replayed
       sequentially through the simulator (both kernel modes), the
       in-process service, and the sharded coordinator; every execution
       must make identical decisions with identical rule strings;
    2. **simulator oracle** — a bounded prefix of the overload schedule
       in virtual time: kernel/object byte-identity plus the Theorem 1–3
       oracles;
    3. **concurrent overload** — the full arrival schedule against live
       deployments (each ``--shards`` entry), checked for
       serializability, conservation, and abort attribution.

    Exits non-zero when any phase fails.  ``--ledger`` appends one
    ``repro-bench/1`` trend row per concurrent run.
    """
    import asyncio

    from repro.service import install_uvloop
    from repro.verify.parity import ParityError, parity_battery
    from repro.verify.stress import (
        StressSpec,
        append_trend_rows,
        run_stress,
        simulator_stress_check,
    )

    loop_impl = install_uvloop(args.uvloop)
    if args.uvloop:
        print(f"event loop: {loop_impl}")

    if args.smoke:
        transactions = 400
        parity_seeds = range(2)
        parity_transactions = 10
        sim_limit = 150
        # 1 vs 4 shards so the smoke ledger feeds the shard-scaling gate
        # (make stress-smoke fails when 4-shard loses to 1-shard).
        shard_counts = [1, 4]
        # The gate compares *sustained* committed throughput, so the
        # smoke's offered load must sit inside every deployment's
        # capacity: at a burst peak of 4 x 600 = 2,400 arrivals/s both
        # deployments keep pace and the ratio catches coordination
        # regressions (a polling coordinator parks waiters for whole
        # failsafe periods and craters the multi-shard wall) instead of
        # re-litigating peak capacity, which a single event loop decides
        # in the 1-shard deployment's favor by construction — see
        # docs/PERFORMANCE.md.  The full `repro stress` run keeps the
        # genuine overload profile.
        overload = 1.0
        arrival_hz = 600.0
    else:
        transactions = args.transactions
        parity_seeds = range(args.parity_seeds)
        parity_transactions = args.parity_transactions
        sim_limit = args.sim_limit
        shard_counts = [int(s) for s in args.shards.split(",") if s]
        overload = args.overload
        arrival_hz = args.arrival_rate

    spec = StressSpec(
        seed=args.seed,
        transactions=transactions,
        overload=overload,
        arrival_rate_hz=arrival_hz,
        burst_factor=args.burst_factor,
        burst_period_s=args.burst_period,
        burst_duty=args.burst_duty,
        abort_probability=args.abort_probability,
    )
    failed = False

    if not args.skip_parity:
        try:
            reports = parity_battery(
                seeds=parity_seeds,
                transactions=parity_transactions,
                coordinator_shards=args.parity_shards,
            )
        except ParityError as exc:
            print(f"decision parity: FAIL — {exc}")
            failed = True
        else:
            decisions = sum(r.decisions for r in reports)
            print(
                f"decision parity: OK — {len(reports)} workload×protocol "
                f"cases, {decisions} decisions, 4 executions each "
                f"(coordinator at {args.parity_shards} shard(s))"
            )

    try:
        result = simulator_stress_check(
            spec, args.protocol, limit=sim_limit
        )
    except Exception as exc:  # oracle violations are terse; show them all
        print(f"simulator oracle: FAIL — {exc}")
        failed = True
    else:
        print(
            f"simulator oracle: OK — {len(result.jobs)} jobs in virtual "
            "time, kernel/object byte-identical, Theorem 1-3 oracles pass"
        )

    # One cap for every deployment shape: the event-driven
    # coordinator holds up under hundreds of live sessions, so
    # multi-shard runs no longer need a protective lower default.
    max_sessions = args.max_sessions
    if max_sessions is None:
        max_sessions = 512

    rows = []
    for shards in shard_counts:
        report = asyncio.run(run_stress(
            spec,
            args.protocol,
            shards=shards,
            partitioner=args.partitioner,
            max_sessions=max_sessions,
        ))
        print(report.render())
        if report.ok:
            rows.append(report.trend_row())
        else:
            failed = True

    proc_counts = [
        int(s) for s in (args.shard_procs or "").split(",") if s
    ]
    for procs in proc_counts:
        report = asyncio.run(run_stress(
            spec,
            args.protocol,
            partitioner=args.partitioner,
            max_sessions=max_sessions,
            shard_procs=procs,
        ))
        print(report.render())
        if report.ok:
            rows.append(report.trend_row())
        else:
            failed = True

    if args.ledger and rows:
        doc = append_trend_rows(args.ledger, rows)
        print(
            f"appended {len(rows)} trend row(s) to {args.ledger} "
            f"({len(doc['results'])} total)"
        )
    return 1 if failed else 0


def _run_reproduce(args: argparse.Namespace) -> int:
    from repro.exceptions import FaultSpecError, SweepResumeError
    from repro.experiments import (
        FaultPlan,
        ResultCache,
        RetryPolicy,
        render_summary,
        run_all,
    )

    if args.retries < 0:
        print(f"--retries must be >= 0 (got {args.retries})", file=sys.stderr)
        return 2
    if args.job_timeout is not None and args.job_timeout <= 0:
        print(f"--job-timeout must be positive seconds (got {args.job_timeout:g})",
              file=sys.stderr)
        return 2
    if args.resume and args.no_cache:
        print("--resume needs the on-disk result cache; drop --no-cache",
              file=sys.stderr)
        return 2
    fault_plan = None
    if args.inject_faults:
        try:
            fault_plan = FaultPlan.parse(args.inject_faults)
        except FaultSpecError as exc:
            print(f"invalid --inject-faults spec: {exc}", file=sys.stderr)
            return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None:
        try:
            cache.ensure_writable()
        except OSError as exc:
            print(f"cache directory {cache.root} is unusable: {exc}; "
                  "pass --no-cache or a writable --cache-dir", file=sys.stderr)
            return 2
    stats_out: list = []
    try:
        reports = run_all(
            extended=args.extended,
            jobs=args.jobs,
            cache=cache,
            progress=args.jobs > 1,
            stats_out=stats_out,
            retry=RetryPolicy(
                max_retries=args.retries, job_timeout=args.job_timeout
            ),
            fault_plan=fault_plan,
            resume=args.resume,
        )
    except SweepResumeError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    except FaultSpecError as exc:
        print(f"invalid --inject-faults spec: {exc}", file=sys.stderr)
        return 2
    print(render_summary(reports, verbose=args.verbose))
    if stats_out:
        print(stats_out[-1].render(), file=sys.stderr)
    return 0 if all(r.passed for r in reports) else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Priority Ceiling Protocol with Dynamic "
            "Adjustment of Serialization Order' (Lam, Son, Hung; ICDE 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("examples", help="run the paper's worked examples").set_defaults(
        func=_cmd_examples
    )
    sub.add_parser("table1", help="print the Table 1 compatibility matrix").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("protocols", help="list registered protocols").set_defaults(
        func=_cmd_protocols
    )

    for name, func, help_text in (
        ("schedulability", _cmd_schedulability, "Section 9 analysis on a random set"),
        ("compare", _cmd_compare, "simulate one workload under every protocol"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--transactions", type=int, default=6)
        p.add_argument("--items", type=int, default=12)
        p.add_argument("--write-probability", type=float, default=0.3)
        p.add_argument("--utilization", type=float, default=0.5)
        p.add_argument("--seed", type=int, default=0)
        p.set_defaults(func=func)

    export = sub.add_parser(
        "export", help="write a paper example's trace as JSON + CSV series"
    )
    export.add_argument("example", choices=["example1", "example3", "example4"])
    export.add_argument("--protocol", default="pcp-da")
    export.add_argument("--output-dir", default="traces")
    export.set_defaults(func=_cmd_export)

    simulate = sub.add_parser(
        "simulate", help="simulate a task set defined in a JSON file"
    )
    simulate.add_argument("taskset", help="path to a task-set JSON document")
    simulate.add_argument("--protocol", default="pcp-da")
    simulate.add_argument("--horizon", type=float, default=None)
    simulate.add_argument(
        "--firm", action="store_true",
        help="drop jobs at their deadlines (on_miss='abort')",
    )
    simulate.set_defaults(func=_cmd_simulate)

    reproduce = sub.add_parser(
        "reproduce",
        help="run the full paper-vs-measured ledger (every table and figure)",
    )
    reproduce.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every check and the regenerated artifacts",
    )
    reproduce.add_argument(
        "--extended", action="store_true",
        help="also run the extension experiments (overload, open system, "
             "ablation, refined analysis)",
    )
    reproduce.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent experiments across N worker processes "
             "(output is byte-identical for every N)",
    )
    reproduce.add_argument(
        "--no-cache", action="store_true",
        help="recompute every experiment instead of consulting the "
             "on-disk result cache",
    )
    reproduce.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    reproduce.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="resubmissions allowed per job after a crash, hang, or "
             "transient failure (default 2; 0 = fail fast)",
    )
    reproduce.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and retry any single job attempt running longer "
             "than this (default: no timeout)",
    )
    reproduce.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from the manifest journaled "
             "next to the cache, recomputing only unfinished jobs",
    )
    reproduce.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministically inject faults for testing, e.g. "
             "'flaky:table1@2,crash:figure3' or 'random:7:3' "
             "(kinds: crash, hang, flaky, corrupt; see docs/RELIABILITY.md)",
    )
    reproduce.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest functions to "
             "stderr (cumulative time; single-process runs only)",
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--transactions", type=int, default=6,
                       help="catalog size (generated workload)")
        p.add_argument("--items", type=int, default=12)
        p.add_argument("--write-probability", type=float, default=0.3)
        p.add_argument("--utilization", type=float, default=0.5)

    serve = sub.add_parser(
        "serve",
        help="serve a lock-manager catalog to TCP clients (NDJSON protocol)",
    )
    serve.add_argument("--protocol", default="pcp-da")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral, printed at startup)")
    add_workload_args(serve)
    serve.add_argument("--seed", type=int, default=0,
                       help="workload-generator seed for the catalog")
    serve.add_argument("--shards", type=int, default=1,
                       help="partition the item space across N shard lock "
                            "managers behind one coordinator (default 1: "
                            "unsharded)")
    serve.add_argument("--partitioner", default="hash",
                       choices=("hash", "range"),
                       help="item-to-shard mapping scheme (with --shards > 1)")
    serve.add_argument("--shard-procs", type=int, default=1,
                       help="run N shards as separate shard-host OS "
                            "processes behind the coordinator (default 1: "
                            "in-process; overrides --shards)")
    serve.add_argument("--on-crash", default="fail",
                       choices=("fail", "restart"),
                       help="shard-host crash policy with --shard-procs: "
                            "fail the deployment fast, or restart the "
                            "shard empty after aborting affected "
                            "transactions")
    serve.add_argument("--max-sessions", type=int, default=None,
                       help="admission-control cap on live sessions")
    serve.add_argument("--deadline", type=float, default=None, metavar="S",
                       help="default relative deadline for sessions")
    serve.add_argument("--uvloop", action="store_true",
                       help="run on uvloop when installed (falls back to "
                            "the stock asyncio loop with a notice; the "
                            "stats payload reports which is active)")
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="load-generate against a service and verify serializability",
    )
    loadgen.add_argument("--protocol", default="pcp-da",
                         help="protocol for the self-hosted server "
                              "(ignored with --connect)")
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="target a running `repro serve` instead of "
                              "self-hosting one")
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument("--per-client", type=int, default=25, metavar="N",
                         help="transactions per client (closed-loop budget)")
    loadgen.add_argument("--duration", type=float, default=None, metavar="S",
                         help="wall-clock cap for the run")
    loadgen.add_argument("--think-time", type=float, default=0.0, metavar="S",
                         help="mean closed-loop think time between "
                              "transactions")
    loadgen.add_argument("--arrival-rate", type=float, default=None,
                         metavar="HZ",
                         help="switch to the open loop: per-client "
                              "transaction start rate")
    loadgen.add_argument("--burst-factor", type=float, default=1.0,
                         help="open-loop burst multiplier (square-wave "
                              "arrival bursts; 1.0 = steady)")
    loadgen.add_argument("--burst-period", type=float, default=0.5,
                         metavar="S", help="length of one burst cycle")
    loadgen.add_argument("--burst-duty", type=float, default=0.25,
                         help="fraction of each cycle at the bursty rate")
    loadgen.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="per-session relative deadline")
    loadgen.add_argument("--abort-probability", type=float, default=0.0,
                         help="chance a client deliberately aborts")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="loadgen RNG seed")
    add_workload_args(loadgen)
    loadgen.add_argument("--workload-seed", type=int, default=0,
                         help="workload-generator seed for the self-hosted "
                              "catalog")
    loadgen.add_argument("--max-sessions", type=int, default=None,
                         help="admission cap for the self-hosted server")
    loadgen.add_argument("--shards", type=int, default=1,
                         help="shard count for the self-hosted server "
                              "(ignored with --connect)")
    loadgen.add_argument("--partitioner", default="hash",
                         choices=("hash", "range"),
                         help="partitioning scheme for the self-hosted "
                              "sharded server")
    loadgen.add_argument("--shard-procs", type=int, default=1,
                         help="self-host N shards as separate shard-host "
                              "processes (ignored with --connect; "
                              "overrides --shards)")
    loadgen.add_argument("--uvloop", action="store_true",
                         help="run on uvloop when installed (clean "
                              "fallback to the stock asyncio loop)")
    loadgen.set_defaults(func=_cmd_loadgen)

    stress = sub.add_parser(
        "stress",
        help="heavy-traffic parity harness: decision parity + overload "
             "invariant checks across every execution path",
    )
    stress.add_argument("--protocol", default="pcp-da",
                        help="protocol for the oracle and overload phases")
    stress.add_argument("--seed", type=int, default=0,
                        help="workload seed (catalog + arrival schedule)")
    stress.add_argument("--transactions", type=int, default=100_000,
                        help="arrivals in the overload schedule "
                             "(streamed; can be millions)")
    stress.add_argument("--overload", type=float, default=2.0,
                        help="offered-load multiplier over --arrival-rate")
    stress.add_argument("--arrival-rate", type=float, default=2000.0,
                        metavar="HZ", help="base arrival rate")
    stress.add_argument("--burst-factor", type=float, default=4.0,
                        help="arrival-rate multiplier during bursts")
    stress.add_argument("--burst-period", type=float, default=0.5,
                        metavar="S", help="burst cycle length")
    stress.add_argument("--burst-duty", type=float, default=0.25,
                        help="fraction of each cycle at the burst rate")
    stress.add_argument("--abort-probability", type=float, default=0.02,
                        help="chaos knob: chance an arrival aborts "
                             "instead of committing")
    stress.add_argument("--shards", default="1,4",
                        help="comma list of shard counts for the "
                             "concurrent phase (default '1,4')")
    stress.add_argument("--partitioner", default="hash",
                        choices=("hash", "range"))
    stress.add_argument("--shard-procs", default="", metavar="LIST",
                        help="comma list of shard-process counts to also "
                             "run the concurrent phase against (e.g. '4': "
                             "one 4-process deployment; default: none)")
    stress.add_argument("--max-sessions", type=int, default=None,
                        help="admission cap for the concurrent phase "
                             "(default: 512 for every shard count)")
    stress.add_argument("--uvloop", action="store_true",
                        help="run the concurrent phase on uvloop when "
                             "installed (falls back to asyncio)")
    stress.add_argument("--parity-seeds", type=int, default=20, metavar="N",
                        help="decision-parity workload seeds 0..N-1")
    stress.add_argument("--parity-transactions", type=int, default=25,
                        help="arrivals per parity workload")
    stress.add_argument("--parity-shards", type=int, default=2,
                        help="coordinator shard count in the parity phase")
    stress.add_argument("--sim-limit", type=int, default=500,
                        help="schedule prefix replayed in the simulator "
                             "oracle phase")
    stress.add_argument("--ledger", default=None, metavar="PATH",
                        help="append repro-bench/1 trend rows here")
    stress.add_argument("--smoke", action="store_true",
                        help="small deterministic run (seconds): the "
                             "make stress-smoke / make verify gate")
    stress.add_argument("--skip-parity", action="store_true",
                        help="skip the decision-parity battery")
    stress.set_defaults(func=_cmd_stress)

    shard_host = sub.add_parser(
        "shard-host",
        help="run one lock-manager shard behind the NDJSON wire "
             "(normally spawned by the --shard-procs supervisor)",
    )
    from repro.service.sharding.procs.host import add_host_args

    add_host_args(shard_host)
    shard_host.set_defaults(func=_cmd_shard_host)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
