"""Side-by-side schedulability comparison tables.

The textual artifact behind the Section 9 benchmark: for one task set,
``BTS_i``, ``B_i``, the per-level utilisation-bound verdicts, and the
breakdown utilisation under each analysed protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.analysis.blocking import ANALYZED_PROTOCOLS, blocking_terms, bts
from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.refined_blocking import refined_blocking_terms
from repro.analysis.rm_bound import rm_schedulable_detail
from repro.model.spec import TaskSet


@dataclass(frozen=True)
class SchedulabilityReport:
    """Comparison of the analysed protocols over one task set."""

    taskset_names: Tuple[str, ...]
    bts_by_protocol: Mapping[str, Mapping[str, Tuple[str, ...]]]
    blocking_by_protocol: Mapping[str, Mapping[str, float]]
    refined_blocking_by_protocol: Mapping[str, Mapping[str, float]]
    schedulable_by_protocol: Mapping[str, bool]
    breakdown_by_protocol: Mapping[str, float]

    def render(self) -> str:
        """ASCII table: one row per transaction, one column group per protocol."""
        protocols = sorted(self.blocking_by_protocol)
        lines = []
        header = f"{'txn':<6}" + "".join(
            f"| B_i/B_i* {p:<10} BTS_i {p:<16}" for p in protocols
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in self.taskset_names:
            row = f"{name:<6}"
            for p in protocols:
                b = self.blocking_by_protocol[p][name]
                refined = self.refined_blocking_by_protocol[p][name]
                members = ",".join(self.bts_by_protocol[p][name]) or "-"
                row += f"| {b:g}/{refined:<12g} {members:<22}"
            lines.append(row)
        lines.append("")
        lines.append("(B_i = Section 9 whole-C bound; "
                     "B_i* = critical-section refinement)")
        for p in protocols:
            lines.append(
                f"{p:<8} rm-bound schedulable: "
                f"{self.schedulable_by_protocol[p]!s:<5}  "
                f"breakdown utilisation: {self.breakdown_by_protocol[p]:.4f}"
            )
        return "\n".join(lines)


def schedulability_report(
    taskset: TaskSet,
    protocols: Sequence[str] = ANALYZED_PROTOCOLS,
) -> SchedulabilityReport:
    """Compute the full comparison for ``taskset``."""
    names = taskset.names
    bts_by: Dict[str, Dict[str, Tuple[str, ...]]] = {}
    blocking_by: Dict[str, Dict[str, float]] = {}
    refined_by: Dict[str, Dict[str, float]] = {}
    sched_by: Dict[str, bool] = {}
    breakdown_by: Dict[str, float] = {}
    for protocol in protocols:
        bts_by[protocol] = {
            name: tuple(sorted(bts(taskset, name, protocol))) for name in names
        }
        blocking_by[protocol] = blocking_terms(taskset, protocol)
        refined_by[protocol] = refined_blocking_terms(taskset, protocol)
        detail = rm_schedulable_detail(taskset, protocol)
        sched_by[protocol] = detail.schedulable
        breakdown_by[protocol] = breakdown_utilization(taskset, protocol)
    return SchedulabilityReport(
        taskset_names=names,
        bts_by_protocol=bts_by,
        blocking_by_protocol=blocking_by,
        refined_blocking_by_protocol=refined_by,
        schedulable_by_protocol=sched_by,
        breakdown_by_protocol=breakdown_by,
    )
