"""Refined (critical-section-length) blocking terms.

Section 9 of the paper bounds ``B_i`` by the *whole execution time* of the
blocking transaction (``B_i = max C_L over BTS_i``), which is sound but
pessimistic: a transaction only blocks from the moment it acquires the
offending lock, so the blocking it can impose is at most

    C_L  -  (start offset of its earliest offending acquisition)

— the classical "longest critical section" refinement of the PCP
literature, adapted to lock-until-commit transactions where a critical
section runs from the acquisition to the commit.

For PCP-DA the offending acquisitions are *read* operations on items with
``Wceil ≥ P_i``; for RW-PCP additionally write operations on items with
``Aceil ≥ P_i``; for the original PCP any access with ``Aceil ≥ P_i``.

Soundness is exercised empirically in the test suite: the refined RTA
response times upper-bound worst responses observed by critical-instant
simulation, while being no larger (and often smaller) than the paper's
whole-``C_L`` bounds.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.ceilings import CeilingTable
from repro.exceptions import AnalysisError
from repro.model.spec import OpKind, TaskSet, TransactionSpec


def _require_priority(spec: TransactionSpec) -> int:
    if spec.priority is None:
        raise AnalysisError(f"{spec.name}: priority required for analysis")
    return spec.priority


def _critical_section_length(
    spec: TransactionSpec,
    offends: Callable[[TransactionSpec, "OpKind", str], bool],
) -> float:
    """``C_L`` minus the start offset of the earliest offending operation
    (0.0 when no operation offends)."""
    elapsed = 0.0
    for op in spec.operations:
        if op.item is not None and offends(spec, op.kind, op.item):
            return spec.execution_time - elapsed
        elapsed += op.duration
    return 0.0


def refined_blocking_terms(
    taskset: TaskSet, protocol: str = "pcp-da"
) -> Dict[str, float]:
    """Per-transaction refined ``B_i`` under the named protocol's analysis."""
    ceilings = CeilingTable(taskset)

    def offender_predicate(p_i: int) -> Callable:
        if protocol == "pcp-da":
            return lambda spec, kind, item: (
                kind is OpKind.READ and ceilings.wceil(item) >= p_i
            )
        if protocol == "rw-pcp":
            return lambda spec, kind, item: (
                (kind is OpKind.READ and ceilings.wceil(item) >= p_i)
                or (kind is OpKind.WRITE and ceilings.aceil(item) >= p_i)
            )
        if protocol == "pcp":
            return lambda spec, kind, item: ceilings.aceil(item) >= p_i
        raise AnalysisError(
            f"no refined blocking analysis for protocol {protocol!r}"
        )

    terms: Dict[str, float] = {}
    for me in taskset:
        p_i = _require_priority(me)
        offends = offender_predicate(p_i)
        worst = 0.0
        for other in taskset:
            if other.name == me.name or _require_priority(other) >= p_i:
                continue
            worst = max(worst, _critical_section_length(other, offends))
        terms[me.name] = worst
    return terms


def refined_blocking_term(
    taskset: TaskSet, name: str, protocol: str = "pcp-da"
) -> float:
    """Refined ``B_i`` for one transaction."""
    return refined_blocking_terms(taskset, protocol)[name]
