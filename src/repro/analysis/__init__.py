"""Worst-case schedulability analysis (paper, Section 9).

* :mod:`repro.analysis.blocking` — blocking transaction sets ``BTS_i`` and
  worst-case blocking terms ``B_i`` for PCP-DA, RW-PCP, and the original
  PCP;
* :mod:`repro.analysis.rm_bound` — the rate-monotonic utilisation-bound
  schedulability condition with blocking;
* :mod:`repro.analysis.response_time` — exact response-time analysis
  (extension; tighter than the utilisation bound);
* :mod:`repro.analysis.breakdown` — breakdown-utilisation search;
* :mod:`repro.analysis.report` — side-by-side comparison tables.
"""

from repro.analysis.blocking import (
    blocking_term,
    blocking_terms,
    bts,
    bts_original_pcp,
    bts_pcp_da,
    bts_rw_pcp,
)
from repro.analysis.rm_bound import (
    liu_layland_bound,
    rm_schedulable,
    rm_schedulable_detail,
)
from repro.analysis.response_time import response_times, rta_schedulable
from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.report import schedulability_report
from repro.analysis.critical_instant import (
    critical_instant_phasings,
    simulate_worst_responses,
)
from repro.analysis.refined_blocking import (
    refined_blocking_term,
    refined_blocking_terms,
)

__all__ = [
    "blocking_term",
    "blocking_terms",
    "breakdown_utilization",
    "bts",
    "bts_original_pcp",
    "bts_pcp_da",
    "bts_rw_pcp",
    "critical_instant_phasings",
    "liu_layland_bound",
    "refined_blocking_term",
    "refined_blocking_terms",
    "response_times",
    "rm_schedulable",
    "rm_schedulable_detail",
    "rta_schedulable",
    "schedulability_report",
    "simulate_worst_responses",
]
