"""Blocking transaction sets and worst-case blocking terms (Section 9).

The paper defines, for a transaction ``T_i``:

* under **PCP-DA**::

      BTS_i = { T_L | P_L < P_i and T_L reads x and Wceil(x) >= P_i }

  — only *read* operations of lower-priority transactions can block,
  because writes are preemptable;

* under **RW-PCP**::

      BTS_i = { T_L | P_L < P_i and (T_L reads x and Wceil(x) >= P_i
                                     or T_L writes x and Aceil(x) >= P_i) }

  — a strict superset of PCP-DA's, which is exactly where PCP-DA's
  schedulability advantage comes from;

* for the **original PCP** (exclusive access, single ceiling ``Aceil``)::

      BTS_i = { T_L | P_L < P_i and T_L accesses x and Aceil(x) >= P_i }

and in every case ``B_i = max { C_L : T_L in BTS_i }`` (single-blocking
makes the max, not the sum, the right aggregate).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet

from repro.core.ceilings import CeilingTable
from repro.exceptions import AnalysisError
from repro.model.spec import TaskSet, TransactionSpec

#: Analysis keys accepted by :func:`bts` / :func:`blocking_term`.
ANALYZED_PROTOCOLS = ("pcp-da", "rw-pcp", "pcp")


def _require_priority(spec: TransactionSpec) -> int:
    if spec.priority is None:
        raise AnalysisError(f"{spec.name}: priority required for analysis")
    return spec.priority


def bts_pcp_da(taskset: TaskSet, name: str) -> FrozenSet[str]:
    """``BTS_i`` under PCP-DA for the transaction called ``name``."""
    ceilings = CeilingTable(taskset)
    me = taskset[name]
    p_i = _require_priority(me)
    out = set()
    for spec in taskset:
        if spec.name == name or _require_priority(spec) >= p_i:
            continue
        if any(ceilings.wceil(x) >= p_i for x in spec.read_set):
            out.add(spec.name)
    return frozenset(out)


def bts_rw_pcp(taskset: TaskSet, name: str) -> FrozenSet[str]:
    """``BTS_i`` under RW-PCP for the transaction called ``name``."""
    ceilings = CeilingTable(taskset)
    me = taskset[name]
    p_i = _require_priority(me)
    out = set()
    for spec in taskset:
        if spec.name == name or _require_priority(spec) >= p_i:
            continue
        reads_block = any(ceilings.wceil(x) >= p_i for x in spec.read_set)
        writes_block = any(ceilings.aceil(x) >= p_i for x in spec.write_set)
        if reads_block or writes_block:
            out.add(spec.name)
    return frozenset(out)


def bts_original_pcp(taskset: TaskSet, name: str) -> FrozenSet[str]:
    """``BTS_i`` under the original (exclusive-lock) PCP."""
    ceilings = CeilingTable(taskset)
    me = taskset[name]
    p_i = _require_priority(me)
    out = set()
    for spec in taskset:
        if spec.name == name or _require_priority(spec) >= p_i:
            continue
        if any(ceilings.aceil(x) >= p_i for x in spec.access_set):
            out.add(spec.name)
    return frozenset(out)


_BTS_FUNCS: Dict[str, Callable[[TaskSet, str], FrozenSet[str]]] = {
    "pcp-da": bts_pcp_da,
    "rw-pcp": bts_rw_pcp,
    "pcp": bts_original_pcp,
}


def bts(taskset: TaskSet, name: str, protocol: str) -> FrozenSet[str]:
    """``BTS_i`` for ``name`` under the named protocol's analysis."""
    try:
        func = _BTS_FUNCS[protocol]
    except KeyError:
        raise AnalysisError(
            f"no worst-case blocking analysis for protocol {protocol!r}; "
            f"available: {ANALYZED_PROTOCOLS}"
        ) from None
    return func(taskset, name)


def blocking_term(taskset: TaskSet, name: str, protocol: str) -> float:
    """``B_i = max C_L over BTS_i`` (0 when the set is empty)."""
    members = bts(taskset, name, protocol)
    return max(
        (taskset[member].execution_time for member in members), default=0.0
    )


def blocking_terms(taskset: TaskSet, protocol: str) -> Dict[str, float]:
    """``B_i`` for every transaction, keyed by name."""
    return {
        spec.name: blocking_term(taskset, spec.name, protocol)
        for spec in taskset
    }
