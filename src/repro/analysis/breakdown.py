"""Breakdown-utilisation search.

The *breakdown utilisation* of a task set under a schedulability test is
the highest total utilisation the set can be scaled to while the test still
accepts it.  It is the standard scalar summary for comparing schedulability
conditions — the paper's claim "PCP-DA provides a better schedulability
condition than RW-PCP" becomes "PCP-DA's breakdown utilisation is >= RW-PCP's
on every set, and strictly higher whenever some ``B_i`` shrinks".
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.rm_bound import rm_schedulable
from repro.analysis.response_time import rta_schedulable
from repro.exceptions import AnalysisError
from repro.model.spec import TaskSet

_TESTS: dict = {
    "rm-bound": rm_schedulable,
    "rta": rta_schedulable,
}


def breakdown_utilization(
    taskset: TaskSet,
    protocol: str = "pcp-da",
    test: str = "rm-bound",
    *,
    tolerance: float = 1e-4,
    max_scale: float = 64.0,
) -> float:
    """Maximum schedulable total utilisation under the given test.

    Operation durations are scaled uniformly (periods fixed) and the
    largest passing scale is found by bisection.  Returns the total
    utilisation at that scale; 0.0 when even an infinitesimal scale fails
    (cannot happen for non-degenerate sets).

    Args:
        taskset: periodic set with priorities assigned.
        protocol: analysis key for ``B_i`` ("pcp-da", "rw-pcp", "pcp").
        test: "rm-bound" (the paper's condition) or "rta".
        tolerance: bisection width on the scale factor.
        max_scale: upper limit for the initial bracketing.
    """
    try:
        predicate: Callable[..., bool] = _TESTS[test]
    except KeyError:
        raise AnalysisError(
            f"unknown schedulability test {test!r}; available: {sorted(_TESTS)}"
        ) from None

    base_util = taskset.total_utilization()
    if base_util <= 0:
        raise AnalysisError("task set has zero utilisation")

    def passes(scale: float) -> bool:
        # Scaling past C_i > Pd_i is definitionally unschedulable.
        for spec in taskset:
            assert spec.period is not None
            if spec.execution_time * scale > spec.period + 1e-12:
                return False
        return predicate(taskset.scaled(scale), protocol)

    lo = 0.0
    hi = 1.0
    # Grow the bracket until it fails (sets far below their bound scale up).
    while passes(hi) and hi < max_scale:
        lo = hi
        hi *= 2.0
    if lo == 0.0 and not passes(min(tolerance, 1e-6) / base_util):
        return 0.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if passes(mid):
            lo = mid
        else:
            hi = mid
    return base_util * lo
