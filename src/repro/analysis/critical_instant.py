"""Critical-instant simulation: empirical worst-case response times.

For fixed-priority scheduling, the classical critical instant — every
transaction released simultaneously — maximises the response time of the
highest-priority levels.  With blocking the strict critical-instant theorem
needs care (a lower-priority transaction must already hold its troublesome
lock), so this module simulates a *family* of adversarial phasings:

* the synchronous release (all offsets zero), plus
* for each lower-priority transaction ``T_L``, a phasing where ``T_L``
  starts just early enough to be inside each of its lock-holding windows
  when the rest of the set releases,

and reports the per-transaction maximum observed response time.  The
result is a lower bound on the true worst case and, by construction, must
never exceed the analytical RTA bound (checked in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.simulator import SimConfig, Simulator
from repro.model.spec import TaskSet, TransactionSpec
from repro.protocols.base import make_protocol


def _with_offsets(taskset: TaskSet, offsets: Dict[str, float]) -> TaskSet:
    return TaskSet([
        TransactionSpec(
            name=s.name, operations=s.operations, priority=s.priority,
            period=s.period, offset=offsets.get(s.name, 0.0),
            deadline=s.deadline,
        )
        for s in taskset
    ])


def _lock_window_starts(spec: TransactionSpec) -> List[float]:
    """Execution offsets at which the transaction acquires each lock."""
    starts = []
    elapsed = 0.0
    for op in spec.operations:
        if op.lock_mode is not None:
            starts.append(elapsed)
        elapsed += op.duration
    return starts


def critical_instant_phasings(taskset: TaskSet) -> List[Dict[str, float]]:
    """The adversarial phasings described in the module docstring."""
    phasings: List[Dict[str, float]] = [{}]  # synchronous release
    shift = 1e-3  # release the blocker just before the lock acquisition
    for spec in taskset:
        for start in _lock_window_starts(spec):
            offset = start + shift
            others = {
                other.name: offset for other in taskset if other.name != spec.name
            }
            others[spec.name] = 0.0
            phasings.append(others)
    return phasings


def simulate_worst_responses(
    taskset: TaskSet,
    protocol: str = "pcp-da",
    *,
    horizon: Optional[float] = None,
    deadlock_action: str = "raise",
) -> Dict[str, float]:
    """Max observed response time per transaction over the phasing family.

    Args:
        taskset: periodic set with priorities.
        protocol: registry name of the protocol to simulate.
        horizon: per-run horizon; defaults to one hyperperiod per phasing
            (offsets are non-integral, so an explicit horizon is computed
            from the hyperperiod of the unshifted set).
        deadlock_action: forwarded to :class:`SimConfig`.

    Returns:
        ``{transaction name: worst observed response time}`` (``inf`` if
        some instance never finished within its run's horizon).
    """
    base_horizon = horizon
    if base_horizon is None:
        hp = taskset.hyperperiod()
        if hp is None:
            raise ValueError("explicit horizon required for this task set")
        base_horizon = 2.0 * hp + 1.0

    worst: Dict[str, float] = {s.name: 0.0 for s in taskset}
    for offsets in critical_instant_phasings(taskset):
        shifted = _with_offsets(taskset, offsets)
        result = Simulator(
            shifted,
            make_protocol(protocol),
            SimConfig(horizon=base_horizon, deadlock_action=deadlock_action),
        ).run()
        for job in result.jobs:
            name = job.spec.name
            if job.response_time is None:
                # Only count unfinished jobs released early enough that
                # they plausibly should have finished.
                if job.arrival + 2 * job.spec.execution_time < base_horizon:
                    worst[name] = float("inf")
                continue
            worst[name] = max(worst[name], job.response_time)
    return worst
