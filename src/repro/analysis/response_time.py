"""Exact response-time analysis with blocking (extension to Section 9).

The utilisation bound in the paper is sufficient but pessimistic.  For
fixed-priority preemptive scheduling with a single-blocking protocol, the
classical response-time recurrence is exact::

    R_i = C_i + B_i + sum over higher-priority j of ceil(R_i / Pd_j) * C_j

iterated from ``R_i = C_i + B_i`` to a fixed point; the set is schedulable
iff every ``R_i <= D_i``.  This test dominates the utilisation bound (it
accepts everything the bound accepts, and more), which the test suite
checks on random workloads.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.analysis.blocking import blocking_terms
from repro.exceptions import AnalysisError
from repro.model.spec import TaskSet

_EPS = 1e-9


def response_times(
    taskset: TaskSet,
    protocol: str = "pcp-da",
    blocking: Optional[Mapping[str, float]] = None,
    max_iterations: int = 10_000,
) -> Dict[str, float]:
    """Worst-case response times per transaction.

    A transaction whose recurrence diverges past its period gets
    ``float("inf")`` (unschedulable at that level).

    Args:
        taskset: periodic set with total-order priorities.
        protocol: analysis key for computing ``B_i`` (see
            :mod:`repro.analysis.blocking`).
        blocking: optional explicit ``{name: B_i}`` override.
        max_iterations: safety valve for the fixed-point iteration.
    """
    for spec in taskset:
        if spec.period is None:
            raise AnalysisError(f"{spec.name}: response-time analysis needs periods")
    b_terms = dict(blocking) if blocking is not None else blocking_terms(
        taskset, protocol
    )
    ordered = sorted(taskset, key=lambda s: -(s.priority or 0))
    results: Dict[str, float] = {}
    for idx, spec in enumerate(ordered):
        higher = ordered[:idx]
        c_i = spec.execution_time
        b_i = b_terms.get(spec.name, 0.0)
        deadline = spec.relative_deadline
        assert deadline is not None
        r = c_i + b_i
        converged = False
        for _ in range(max_iterations):
            interference = sum(
                math.ceil((r - _EPS) / h.period) * h.execution_time  # type: ignore[operator]
                for h in higher
            )
            r_next = c_i + b_i + interference
            if abs(r_next - r) < _EPS:
                converged = True
                break
            r = r_next
            if r > deadline + _EPS:
                break
        results[spec.name] = r if (converged and r <= deadline + _EPS) else (
            r if converged else float("inf")
        )
    return results


def rta_schedulable(
    taskset: TaskSet,
    protocol: str = "pcp-da",
    blocking: Optional[Mapping[str, float]] = None,
) -> bool:
    """True iff every worst-case response time meets its deadline."""
    times = response_times(taskset, protocol, blocking)
    for spec in taskset:
        deadline = spec.relative_deadline
        assert deadline is not None
        if times[spec.name] > deadline + _EPS:
            return False
    return True
