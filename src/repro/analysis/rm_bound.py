"""The rate-monotonic utilisation-bound schedulability condition.

Paper, Section 9: a set of ``n`` periodic transactions under rate-monotonic
priorities and a single-blocking protocol always meets its deadlines if::

    forall i, 1 <= i <= n:
        C_1/Pd_1 + ... + C_i/Pd_i + B_i/Pd_i <= i * (2^(1/i) - 1)

where transactions are indexed in descending priority order and ``B_i`` is
the protocol's worst-case blocking term.  The condition is sufficient, not
necessary — :mod:`repro.analysis.response_time` is the tighter test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.blocking import blocking_terms
from repro.exceptions import AnalysisError
from repro.model.spec import TaskSet


def liu_layland_bound(i: int) -> float:
    """The Liu & Layland utilisation bound ``i * (2^(1/i) - 1)``."""
    if i < 1:
        raise AnalysisError("bound index must be >= 1")
    return i * (2.0 ** (1.0 / i) - 1.0)


@dataclass(frozen=True)
class RMLevelResult:
    """Schedulability verdict at one priority level."""

    transaction: str
    level: int
    cumulative_utilization: float
    blocking_term: float
    blocking_utilization: float
    bound: float
    schedulable: bool


@dataclass(frozen=True)
class RMResult:
    """Verdicts at all levels; the set passes iff every level passes."""

    protocol: str
    levels: Tuple[RMLevelResult, ...]

    @property
    def schedulable(self) -> bool:
        return all(level.schedulable for level in self.levels)

    def failing_levels(self) -> Tuple[RMLevelResult, ...]:
        """The levels at which the condition fails (empty when schedulable)."""
        return tuple(level for level in self.levels if not level.schedulable)


def rm_schedulable_detail(
    taskset: TaskSet,
    protocol: str = "pcp-da",
    blocking: Optional[Mapping[str, float]] = None,
) -> RMResult:
    """Evaluate the bound level by level.

    Args:
        taskset: periodic task set with total-order priorities.
        protocol: analysis key ("pcp-da", "rw-pcp", "pcp") used to compute
            ``B_i`` when ``blocking`` is not given.
        blocking: optional explicit ``{name: B_i}`` override.

    Returns:
        An :class:`RMResult` with one entry per priority level, highest
        priority first.
    """
    for spec in taskset:
        if spec.period is None:
            raise AnalysisError(
                f"{spec.name}: utilisation-bound analysis needs periods"
            )
    b_terms = dict(blocking) if blocking is not None else blocking_terms(
        taskset, protocol
    )
    ordered = sorted(taskset, key=lambda s: -(s.priority or 0))
    levels = []
    cumulative = 0.0
    for i, spec in enumerate(ordered, start=1):
        assert spec.period is not None
        cumulative += spec.execution_time / spec.period
        b_i = b_terms.get(spec.name, 0.0)
        blocking_util = b_i / spec.period
        bound = liu_layland_bound(i)
        levels.append(
            RMLevelResult(
                transaction=spec.name,
                level=i,
                cumulative_utilization=cumulative,
                blocking_term=b_i,
                blocking_utilization=blocking_util,
                bound=bound,
                schedulable=cumulative + blocking_util <= bound + 1e-12,
            )
        )
    return RMResult(protocol=protocol, levels=tuple(levels))


def rm_schedulable(
    taskset: TaskSet,
    protocol: str = "pcp-da",
    blocking: Optional[Mapping[str, float]] = None,
) -> bool:
    """True iff the paper's Section 9 condition holds at every level."""
    return rm_schedulable_detail(taskset, protocol, blocking).schedulable
