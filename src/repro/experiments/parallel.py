"""Parallel sweep engine: fan deterministic experiment jobs across processes.

Every entry in the reproduction ledger — and every point of the Section 9
and random-workload sweeps — is an independent, deterministic computation.
This module exploits that: a :class:`ParallelRunner` fans
:class:`ExperimentJob` instances across a
:class:`concurrent.futures.ProcessPoolExecutor`, consults the
content-addressed :class:`~repro.experiments.cache.ResultCache` before
dispatching, and returns results **in submission order**, so the rendered
summary is byte-identical to the serial runner's no matter how jobs
complete (see docs/PERFORMANCE.md for the guarantee and its caveats).

The runner is also **fault-tolerant** (docs/RELIABILITY.md): execution
goes through :func:`repro.experiments.retry.execute_tasks`, so a crashed
worker is detected and its job requeued on a fresh pool, a hung job is
abandoned at the per-job timeout and retried, transient exceptions are
retried with deterministic backoff, and a circuit breaker degrades a
repeatedly failing pool to in-process serial execution.  Completed job
keys are journaled to a :class:`~repro.experiments.cache.SweepManifest`
next to the cache, so an interrupted sweep resumes (``resume=True``)
recomputing only unfinished jobs.  A
:class:`~repro.experiments.faults.FaultPlan` can be attached to inject
deterministic faults for testing; the byte-identity guarantee holds under
every injected schedule.

Observability rides along in :class:`RunnerStats`: per-job wall-clock
timing (summarised through :func:`repro.stats.summarize_values`), peak
queue depth, cache hit/miss counters, reliability counters (retries,
timeouts, crashes, degradations, quarantined entries, resumed jobs), and
an optional progress line on stderr.

The generic :func:`parallel_map` helper is also used by
:func:`repro.stats.run_batch` and
:func:`repro.experiments.section9.run_section9_sweep` to fan their sweep
points without duplicating pool plumbing.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exceptions import SweepResumeError
from repro.experiments.cache import ResultCache, SweepManifest
from repro.experiments.faults import FaultInjector, FaultPlan
from repro.experiments.retry import (
    CircuitBreaker,
    RetryPolicy,
    Task,
    execute_tasks,
)
from repro.experiments.spec import ExperimentReport
from repro.stats import Summary, summarize_values

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass(frozen=True)
class ExperimentJob:
    """One schedulable unit of work: a named, parameterised report builder.

    ``func`` must be picklable by reference (a module-level function) so it
    can cross the process boundary; all of the ledger's registered runners
    are.  ``params`` is extra cache-key material — anything beyond the
    function identity that changes the result (seeds, sweep ranges,
    workload fingerprints) must be listed here or cached results will be
    wrongly shared.
    """

    name: str
    func: Callable[[], ExperimentReport]
    params: Tuple[Any, ...] = ()


@dataclass
class RunnerStats:
    """Counters and timings from one :meth:`ParallelRunner.run` call.

    Attributes:
        workers: process count used (1 means the serial path ran).
        cache_hits / cache_misses: jobs served from / absent in the cache.
        job_times: per-job wall-clock seconds, measured inside the worker
            (excludes pool queueing and result transfer).
        max_queue_depth: peak number of jobs submitted but not finished.
        wall_time: end-to-end seconds for the whole batch.
        retries: job attempts resubmitted after a retryable failure.
        timeouts: attempts abandoned for exceeding the per-job timeout.
        crashes: worker-crash events (pool breakages, or simulated
            in-process crashes on the serial path).
        degradations: times the circuit breaker degraded the pool to
            in-process serial execution.
        quarantined: corrupt cache entries quarantined during this run.
        resumed: jobs skipped as already completed by a resumed manifest.
    """

    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    job_times: Dict[str, float] = field(default_factory=dict)
    max_queue_depth: int = 0
    wall_time: float = 0.0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    degradations: int = 0
    quarantined: int = 0
    resumed: int = 0

    @property
    def executed(self) -> int:
        """Number of jobs actually computed (not cache-served)."""
        return len(self.job_times)

    def timing_summary(self) -> Optional[Summary]:
        """Mean/stdev/CI of per-job times via the repro.stats machinery."""
        if not self.job_times:
            return None
        return summarize_values(list(self.job_times.values()))

    def render(self) -> str:
        """One status line: jobs, workers, cache, faults, wall clock."""
        parts = [
            f"{self.executed} executed + {self.cache_hits} cached",
            f"workers={self.workers}",
            f"cache {self.cache_hits} hit / {self.cache_misses} miss",
            f"peak queue {self.max_queue_depth}",
            f"wall {self.wall_time:.3f}s",
        ]
        reliability = [
            (name, getattr(self, name))
            for name in (
                "retries", "timeouts", "crashes", "degradations",
                "quarantined", "resumed",
            )
        ]
        parts.extend(
            f"{name}={value}" for name, value in reliability if value
        )
        summary = self.timing_summary()
        if summary is not None:
            parts.append(f"per-job {summary.render()}")
        return "sweep: " + ", ".join(parts)


def _timed_call(func: Callable[[], _R]) -> Tuple[_R, float]:
    """Worker-side wrapper: run ``func`` and report its wall time."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def parallel_map(
    func: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
) -> List[_R]:
    """Map ``func`` over ``items`` in order, optionally across processes.

    ``func`` and every item must be picklable.  Results are returned in
    the order of ``items`` regardless of completion order; with
    ``jobs <= 1`` (or fewer than two items) this degrades to a plain loop
    with zero pool overhead.  A ``retry`` policy adds the full
    fault-tolerance of :func:`repro.experiments.retry.execute_tasks`
    (timeouts, bounded retry with backoff, crashed-worker requeue);
    without one, exceptions raised by any call propagate immediately.
    """
    if retry is None and (jobs <= 1 or len(items) < 2):
        return [func(item) for item in items]
    tasks = [
        Task(
            key=f"item[{index}]",
            make=lambda attempt, in_process, item=item: partial(func, item),
        )
        for index, item in enumerate(items)
    ]
    return execute_tasks(tasks, jobs=jobs, policy=retry)


class ParallelRunner:
    """Fan :class:`ExperimentJob` batches across a process pool, cached.

    The runner guarantees *serial-equivalent output*: ``run()`` returns
    reports in the submission order of its jobs, and each report is the
    deterministic product of its job alone, so
    ``render_summary(runner.run(jobs))`` is byte-identical to the serial
    runner's output for the same jobs.  Completion order, worker count,
    cache state, retries, and injected faults only affect wall-clock time
    and counters, never content.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: bool = False,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        resume: bool = False,
    ) -> None:
        """Configure pool width, cache, progress, and reliability policy.

        ``jobs`` is the maximum worker-process count (1 = run in-process).
        ``cache`` is consulted before dispatch and populated after; pass
        ``None`` to always recompute.  ``progress`` prints one line per
        finished job to stderr.  ``retry`` enables timeouts/bounded retry/
        circuit breaking (``None`` = fail fast, as before).  ``fault_plan``
        injects deterministic faults for testing.  ``resume`` replays the
        sweep manifest journaled next to the cache so only unfinished jobs
        recompute; it requires ``cache``.
        """
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.retry = retry
        self.fault_plan = fault_plan
        self.resume = resume
        self.stats = RunnerStats()

    def _note_progress(self, done: int, total: int, name: str,
                       elapsed: float, *, cached: bool) -> None:
        if not self.progress:
            return
        tag = "cache" if cached else f"{elapsed:.3f}s"
        print(f"[{done}/{total}] {name} ({tag})", file=sys.stderr, flush=True)

    def _open_manifest(
        self, keys: Sequence[str]
    ) -> Tuple[Optional[SweepManifest], set]:
        """Start (or resume) the checkpoint journal; returns it + done keys.

        Without a cache there is nowhere to resume results from, so the
        manifest is disabled (and ``resume=True`` raises
        :class:`~repro.exceptions.SweepResumeError`).  On resume the
        journal is verified against this batch's digest — a mismatch means
        the manifest describes a different sweep and is stale.
        """
        if self.cache is None:
            if self.resume:
                raise SweepResumeError(
                    "resume requires the on-disk result cache "
                    "(it holds the completed reports)"
                )
            return None, set()
        manifest = SweepManifest(self.cache.manifest_path)
        digest = SweepManifest.batch_digest(keys)
        recorded: set = set()
        if self.resume:
            found_digest, completed = manifest.load()
            if found_digest != digest:
                raise SweepResumeError(
                    f"sweep manifest {manifest.path} was written for a "
                    "different job batch (stale); run without --resume to "
                    "start over"
                )
            recorded = completed & set(keys)
            self.stats.resumed = len(recorded)
            manifest.start(digest, len(keys), completed=sorted(recorded))
        else:
            manifest.start(digest, len(keys))
        return manifest, recorded

    def run(self, batch: Sequence[ExperimentJob]) -> List[ExperimentReport]:
        """Execute a batch; returns reports in submission order."""
        started = time.perf_counter()
        self.stats = RunnerStats(workers=self.jobs)
        total = len(batch)
        results: List[Optional[ExperimentReport]] = [None] * total

        keys = [
            self.cache.key_for(job.name, job.func, job.params)
            if self.cache is not None else ""
            for job in batch
        ]
        manifest, recorded = self._open_manifest(keys)
        injector = (
            FaultInjector(
                self.fault_plan.resolve([job.name for job in batch])
            )
            if self.fault_plan is not None else None
        )
        quarantined_before = (
            self.cache.quarantined if self.cache is not None else 0
        )

        def journal(index: int) -> None:
            if manifest is not None and keys[index] not in recorded:
                recorded.add(keys[index])
                manifest.record(keys[index])

        # Cache pass: resolve what we can without touching the pool.
        done = 0
        pending: List[int] = []
        for index, job in enumerate(batch):
            if self.cache is not None:
                if injector is not None:
                    injector.corrupt_before_get(self.cache, keys[index],
                                                job.name)
                hit = self.cache.get(keys[index])
                if hit is not None:
                    self.stats.cache_hits += 1
                    results[index] = hit
                    journal(index)
                    done += 1
                    self._note_progress(done, total, job.name, 0.0,
                                        cached=True)
                    continue
                self.stats.cache_misses += 1
            pending.append(index)

        if pending:
            done = self._execute_pending(
                batch, keys, pending, results, injector, journal, done, total
            )

        if self.cache is not None:
            self.stats.quarantined = (
                self.cache.quarantined - quarantined_before
            )
        self.stats.wall_time = time.perf_counter() - started
        return [report for report in results if report is not None]

    def _execute_pending(
        self, batch, keys, pending, results, injector, journal, done, total
    ) -> int:
        """Run the cache-missed jobs through the fault-tolerant executor."""
        pooled = self.jobs > 1 and len(pending) >= 2
        if pooled:
            self.stats.workers = min(self.jobs, len(pending))

        def make_task(index: int) -> Task:
            job = batch[index]

            def make(attempt: int, in_process: bool) -> Callable[[], Any]:
                func = job.func
                if injector is not None:
                    func = injector.wrap(func, job.name,
                                         in_process=in_process)
                return partial(_timed_call, func)

            return Task(key=job.name, make=make)

        tasks = [make_task(index) for index in pending]
        state = {"done": done}

        def on_done(position: int, outcome: Tuple[Any, float]) -> None:
            index = pending[position]
            job = batch[index]
            report, elapsed = outcome
            self.stats.job_times[job.name] = elapsed
            if self.cache is not None:
                self.cache.put(keys[index], report)
                if injector is not None:
                    injector.corrupt_after_put(self.cache, keys[index],
                                               job.name)
            results[index] = report
            journal(index)
            state["done"] += 1
            self._note_progress(state["done"], total, job.name, elapsed,
                                cached=False)

        policy = self.retry if self.retry is not None else RetryPolicy(
            max_retries=0
        )
        execute_tasks(
            tasks,
            jobs=self.jobs if pooled else 1,
            policy=policy,
            counters=self.stats,
            on_done=on_done,
            breaker=CircuitBreaker(threshold=policy.breaker_threshold),
        )
        return state["done"]
