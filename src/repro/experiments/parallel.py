"""Parallel sweep engine: fan deterministic experiment jobs across processes.

Every entry in the reproduction ledger — and every point of the Section 9
and random-workload sweeps — is an independent, deterministic computation.
This module exploits that: a :class:`ParallelRunner` fans
:class:`ExperimentJob` instances across a
:class:`concurrent.futures.ProcessPoolExecutor`, consults the
content-addressed :class:`~repro.experiments.cache.ResultCache` before
dispatching, and returns results **in submission order**, so the rendered
summary is byte-identical to the serial runner's no matter how jobs
complete (see docs/PERFORMANCE.md for the guarantee and its caveats).

Observability rides along in :class:`RunnerStats`: per-job wall-clock
timing (summarised through :func:`repro.stats.summarize_values`), peak
queue depth, cache hit/miss counters, and an optional progress line on
stderr.

The generic :func:`parallel_map` helper is also used by
:func:`repro.stats.run_batch` and
:func:`repro.experiments.section9.run_section9_sweep` to fan their sweep
points without duplicating pool plumbing.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.experiments.cache import ResultCache
from repro.experiments.spec import ExperimentReport
from repro.stats import Summary, summarize_values

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass(frozen=True)
class ExperimentJob:
    """One schedulable unit of work: a named, parameterised report builder.

    ``func`` must be picklable by reference (a module-level function) so it
    can cross the process boundary; all of the ledger's registered runners
    are.  ``params`` is extra cache-key material — anything beyond the
    function identity that changes the result (seeds, sweep ranges,
    workload fingerprints) must be listed here or cached results will be
    wrongly shared.
    """

    name: str
    func: Callable[[], ExperimentReport]
    params: Tuple[Any, ...] = ()


@dataclass
class RunnerStats:
    """Counters and timings from one :meth:`ParallelRunner.run` call.

    Attributes:
        workers: process count used (1 means the serial path ran).
        cache_hits / cache_misses: jobs served from / absent in the cache.
        job_times: per-job wall-clock seconds, measured inside the worker
            (excludes pool queueing and result transfer).
        max_queue_depth: peak number of jobs submitted but not finished.
        wall_time: end-to-end seconds for the whole batch.
    """

    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    job_times: Dict[str, float] = field(default_factory=dict)
    max_queue_depth: int = 0
    wall_time: float = 0.0

    @property
    def executed(self) -> int:
        """Number of jobs actually computed (not cache-served)."""
        return len(self.job_times)

    def timing_summary(self) -> Optional[Summary]:
        """Mean/stdev/CI of per-job times via the repro.stats machinery."""
        if not self.job_times:
            return None
        return summarize_values(list(self.job_times.values()))

    def render(self) -> str:
        """One status line: jobs, workers, cache counters, wall clock."""
        parts = [
            f"{self.executed} executed + {self.cache_hits} cached",
            f"workers={self.workers}",
            f"cache {self.cache_hits} hit / {self.cache_misses} miss",
            f"peak queue {self.max_queue_depth}",
            f"wall {self.wall_time:.3f}s",
        ]
        summary = self.timing_summary()
        if summary is not None:
            parts.append(f"per-job {summary.render()}")
        return "sweep: " + ", ".join(parts)


def _timed_call(func: Callable[[], _R]) -> Tuple[_R, float]:
    """Worker-side wrapper: run ``func`` and report its wall time."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def parallel_map(
    func: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    jobs: int = 1,
) -> List[_R]:
    """Map ``func`` over ``items`` in order, optionally across processes.

    ``func`` and every item must be picklable.  Results are returned in
    the order of ``items`` regardless of completion order; with
    ``jobs <= 1`` (or fewer than two items) this degrades to a plain loop
    with zero pool overhead.  Exceptions raised by any call propagate.
    """
    if jobs <= 1 or len(items) < 2:
        return [func(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(func, items))


class ParallelRunner:
    """Fan :class:`ExperimentJob` batches across a process pool, cached.

    The runner guarantees *serial-equivalent output*: ``run()`` returns
    reports in the submission order of its jobs, and each report is the
    deterministic product of its job alone, so
    ``render_summary(runner.run(jobs))`` is byte-identical to the serial
    runner's output for the same jobs.  Completion order, worker count,
    and cache state only affect wall-clock time, never content.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: bool = False,
    ) -> None:
        """Configure the pool width, result cache, and progress output.

        ``jobs`` is the maximum worker-process count (1 = run in-process).
        ``cache`` is consulted before dispatch and populated after; pass
        ``None`` to always recompute.  ``progress`` prints one line per
        finished job to stderr.
        """
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.stats = RunnerStats()

    def _note_progress(self, done: int, total: int, name: str,
                       elapsed: float, *, cached: bool) -> None:
        if not self.progress:
            return
        tag = "cache" if cached else f"{elapsed:.3f}s"
        print(f"[{done}/{total}] {name} ({tag})", file=sys.stderr, flush=True)

    def run(self, batch: Sequence[ExperimentJob]) -> List[ExperimentReport]:
        """Execute a batch; returns reports in submission order."""
        started = time.perf_counter()
        self.stats = RunnerStats(workers=self.jobs)
        total = len(batch)
        results: List[Optional[ExperimentReport]] = [None] * total
        pending: List[Tuple[int, ExperimentJob, str]] = []

        # Cache pass: resolve what we can without touching the pool.
        done = 0
        for index, job in enumerate(batch):
            key = ""
            if self.cache is not None:
                key = self.cache.key_for(job.name, job.func, job.params)
                hit = self.cache.get(key)
                if hit is not None:
                    self.stats.cache_hits += 1
                    results[index] = hit
                    done += 1
                    self._note_progress(done, total, job.name, 0.0, cached=True)
                    continue
                self.stats.cache_misses += 1
            pending.append((index, job, key))

        if pending:
            if self.jobs <= 1 or len(pending) < 2:
                self._run_serial(pending, results, done, total)
            else:
                self._run_pool(pending, results, done, total)

        self.stats.wall_time = time.perf_counter() - started
        return [report for report in results if report is not None]

    def _run_serial(self, pending, results, done, total) -> None:
        """In-process fallback used for jobs=1 or a single pending job."""
        for index, job, key in pending:
            report, elapsed = _timed_call(job.func)
            self._finish(index, job, key, report, elapsed, results)
            done += 1
            self._note_progress(done, total, job.name, elapsed, cached=False)

    def _run_pool(self, pending, results, done, total) -> None:
        """Dispatch pending jobs across the process pool."""
        workers = min(self.jobs, len(pending))
        self.stats.workers = workers
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_timed_call, job.func): (index, job, key)
                for index, job, key in pending
            }
            outstanding = set(futures)
            self.stats.max_queue_depth = len(outstanding)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index, job, key = futures[future]
                    report, elapsed = future.result()
                    self._finish(index, job, key, report, elapsed, results)
                    done += 1
                    self._note_progress(
                        done, total, job.name, elapsed, cached=False
                    )

    def _finish(self, index, job, key, report, elapsed, results) -> None:
        """Record one computed report: timing, cache write, result slot."""
        self.stats.job_times[job.name] = elapsed
        if self.cache is not None:
            self.cache.put(key, report)
        results[index] = report
