"""Extension experiments: claims beyond the paper's own artifacts.

These ledger entries cover the quantitative extensions DESIGN.md's
experiment index lists — overload behaviour, the open-system study, the
locking-condition ablations, and the refined blocking analysis.  They use
reduced sweep sizes so the whole extended ledger stays interactive; the
full-size versions live in ``benchmarks/``.
"""

from __future__ import annotations

import statistics

from repro.analysis.blocking import blocking_terms
from repro.analysis.refined_blocking import refined_blocking_terms
from repro.engine.simulator import SimConfig, Simulator
from repro.experiments.spec import ExperimentReport
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.workloads.examples import example4_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset
from repro.workloads.open_system import OpenSystemConfig, generate_open_system


def run_overload_extension(*, seeds: int = 8) -> ExperimentReport:
    """Closed-system overload: PCP-DA's miss curve sits at or below
    RW-PCP's, and the ceiling family never restarts."""
    report = ExperimentReport(
        "Overload behaviour (extension)", "DESIGN.md experiment index"
    )
    miss = {"pcp-da": [], "rw-pcp": []}
    restarts = {"pcp-da": 0, "2pl-hp": 0}
    for seed in range(seeds):
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=8, write_probability=0.4,
                hot_access_probability=0.8, target_utilization=1.05,
                seed=seed,
            )
        )
        for protocol in ("pcp-da", "rw-pcp", "2pl-hp"):
            result = Simulator(
                taskset, make_protocol(protocol),
                SimConfig(deadlock_action="abort_lowest"),
            ).run()
            metrics = compute_metrics(result)
            if protocol in miss:
                miss[protocol].append(metrics.miss_ratio)
            if protocol in restarts:
                restarts[protocol] += metrics.total_restarts
    mean_da = statistics.mean(miss["pcp-da"])
    mean_rw = statistics.mean(miss["rw-pcp"])
    report.check_true(
        "mean miss ratio under PCP-DA <= RW-PCP at 105% load",
        mean_da <= mean_rw + 0.02,
        measured=f"{mean_da:.3f} vs {mean_rw:.3f}",
    )
    report.check("PCP-DA restarts nothing", 0, restarts["pcp-da"])
    report.check_true(
        "2PL-HP pays for its inversion-freedom in restarts",
        restarts["2pl-hp"] > 0,
        measured=restarts["2pl-hp"],
    )
    return report


def run_open_system_extension(*, seeds: int = 5) -> ExperimentReport:
    """Poisson arrivals with firm deadlines: misses grow with the rate and
    every history stays serializable."""
    report = ExperimentReport(
        "Open-system study (extension)", "DESIGN.md experiment index"
    )
    means = {}
    for rate in (0.1, 0.6):
        ratios = []
        for seed in range(seeds):
            taskset = generate_open_system(
                OpenSystemConfig(arrival_rate=rate, duration=150.0, seed=seed)
            )
            result = Simulator(
                taskset, make_protocol("pcp-da"),
                SimConfig(horizon=400.0, on_miss="abort"),
            ).run()
            result.check_serializable()
            ratios.append(compute_metrics(result).miss_ratio)
        means[rate] = statistics.mean(ratios)
    report.check_true(
        "miss ratio grows from light load to saturation",
        means[0.6] >= means[0.1],
        measured=f"{means[0.1]:.3f} -> {means[0.6]:.3f}",
    )
    report.check_true(
        "light load is nearly clean", means[0.1] <= 0.05, measured=means[0.1]
    )
    return report


def run_ablation_extension() -> ExperimentReport:
    """LC4's strict local effect (Example 4) and the footnote of the
    random-sweep finding: write preemptability dominates."""
    report = ExperimentReport(
        "Locking-condition ablation (extension)", "DESIGN.md experiment index"
    )
    full = Simulator(example4_taskset(), make_protocol("pcp-da")).run()
    ablated = Simulator(
        example4_taskset(), make_protocol("pcp-da", enable_lc4=False)
    ).run()
    report.check(
        "Example 4: T3 unblocked with LC4",
        0.0, full.job("T3#0").total_blocking_time(),
    )
    report.check_true(
        "Example 4: T3 blocks without LC4",
        ablated.job("T3#0").total_blocking_time() > 0.0,
        measured=ablated.job("T3#0").total_blocking_time(),
    )
    # Write preemptability alone (LC1/LC2 only) already beats RW-PCP.
    totals = {"lc12": [], "rw": []}
    for seed in range(8):
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=6, write_probability=0.5,
                hot_access_probability=0.9, target_utilization=0.7,
                seed=seed,
            )
        )
        lc12 = Simulator(
            taskset,
            make_protocol("pcp-da", enable_lc3=False, enable_lc4=False),
            SimConfig(),
        ).run()
        rw = Simulator(taskset, make_protocol("rw-pcp"), SimConfig()).run()
        totals["lc12"].append(compute_metrics(lc12).total_blocking_time)
        totals["rw"].append(compute_metrics(rw).total_blocking_time)
    report.check_true(
        "LC1/LC2-only PCP-DA still blocks less than RW-PCP (mean)",
        statistics.mean(totals["lc12"]) <= statistics.mean(totals["rw"]) + 1e-9,
        measured=(
            f"{statistics.mean(totals['lc12']):.2f} vs "
            f"{statistics.mean(totals['rw']):.2f}"
        ),
    )
    return report


def run_reconstruction_findings() -> ExperimentReport:
    """The three development findings, re-verified (DESIGN.md §2)."""
    from repro.model.priorities import assign_by_order
    from repro.model.spec import TransactionSpec, compute, read, write
    from repro.verify import assert_serializable, verify_pcp_da_run

    report = ExperimentReport(
        "Reconstruction findings (extension)", "DESIGN.md §2.5/§2.9/§2.9a"
    )

    # 1. The CCP early-unlock counterexample is serializable with the
    #    two-phase guard.
    ccp_ts = assign_by_order([
        TransactionSpec("T1", (write("c", 2.0), compute(2.0)), offset=5.0),
        TransactionSpec("T2", (read("a", 1.0), compute(1.0)), offset=6.0),
        TransactionSpec(
            "T3", (write("a", 2.0), read("c", 2.0), read("b", 2.0)), offset=4.0
        ),
        TransactionSpec(
            "T4", (read("c", 2.0), write("b", 2.0), compute(1.0)), offset=2.0
        ),
    ])
    ccp_run = Simulator(ccp_ts, make_protocol("ccp"), SimConfig()).run()
    try:
        assert_serializable(ccp_run)
        ccp_ok = True
    except Exception:
        ccp_ok = False
    report.check_true(
        "CCP fuzzer counterexample serializable under the two-phase guard",
        ccp_ok,
    )

    # 2. The Theorem-2 waiter-exemption workload completes deadlock-free.
    t2_ts = assign_by_order([
        TransactionSpec(
            "T1", (read("a", 2.0), read("b", 1.0), write("a", 1.0)), offset=1.0
        ),
        TransactionSpec(
            "T2", (read("c", 2.0), write("c", 1.0), read("a", 1.0)), offset=6.0
        ),
        TransactionSpec("T3", (read("a", 1.0), read("c", 1.0)), offset=5.0),
    ])
    t2_run = Simulator(t2_ts, make_protocol("pcp-da"), SimConfig()).run()
    report.check_true(
        "Theorem-2 fuzzer workload completes without a wait cycle",
        t2_run.deadlock is None,
    )
    try:
        verify_pcp_da_run(t2_run)
        theorems_ok = True
    except Exception:
        theorems_ok = False
    report.check_true(
        "…and satisfies Theorems 1-3 + no-restart", theorems_ok
    )

    # 3. The Table-1 check is empirically redundant (paper's implication
    #    claim): same workload, with and without, identical outcomes.
    def signature(result):
        return [
            (e.time, e.job, e.item, e.outcome.value)
            for e in result.trace.lock_events
        ]

    again = Simulator(
        assign_by_order([
            TransactionSpec(
                "T1", (read("a", 2.0), read("b", 1.0), write("a", 1.0)),
                offset=1.0,
            ),
            TransactionSpec(
                "T2", (read("c", 2.0), write("c", 1.0), read("a", 1.0)),
                offset=6.0,
            ),
            TransactionSpec("T3", (read("a", 1.0), read("c", 1.0)), offset=5.0),
        ]),
        make_protocol("pcp-da", enable_table1_check=False),
        SimConfig(),
    ).run()
    report.check(
        "Table-1 check on/off: identical lock traces on the witness workload",
        signature(t2_run), signature(again),
    )
    return report


def run_refined_analysis_extension(*, seeds: int = 15) -> ExperimentReport:
    """The critical-section refinement is sound and strictly tighter."""
    report = ExperimentReport(
        "Refined blocking analysis (extension)", "DESIGN.md experiment index"
    )
    sound = True
    strictly_tighter = 0
    for seed in range(seeds):
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=6, write_probability=0.4,
                compute_fraction=0.5, ops_per_txn=(2, 5), seed=seed,
            )
        )
        classic = blocking_terms(taskset, "pcp-da")
        refined = refined_blocking_terms(taskset, "pcp-da")
        for name in taskset.names:
            if refined[name] > classic[name] + 1e-9:
                sound = False
            if refined[name] < classic[name] - 1e-9:
                strictly_tighter += 1
    report.check_true("refined B_i never exceeds the whole-C bound", sound)
    report.check_true(
        "refined B_i is strictly smaller somewhere in the corpus",
        strictly_tighter > 0,
        measured=strictly_tighter,
    )
    return report
