"""Deterministic, seed-driven fault injection for the sweep engine.

Reliability code that is only exercised by real outages is untestable;
this module makes every failure mode of the parallel runner *injectable
on demand*, deterministically, so the differential battery in
``tests/test_experiments_faults.py`` can prove that the sweep survives —
and stays byte-identical — under any schedule of:

* ``crash``   — the worker process hosting the job dies (``os._exit`` in
  the worker; simulated as a raised :class:`~repro.experiments.retry.WorkerCrash`
  when the job runs in-process, where a real exit would kill the sweep
  itself);
* ``hang``    — the job sleeps past the per-job timeout before running;
* ``flaky``   — the attempt raises a :class:`TransientFault`;
* ``corrupt`` — the job's on-disk cache entry is scribbled with garbage
  bytes, exercising the checksum/quarantine path of
  :class:`~repro.experiments.cache.ResultCache`.

A :class:`FaultPlan` is the schedule: an explicit list of
:class:`FaultSpec` entries (``kind:job[@times]``), or a seed-expanded
random schedule (``random:SEED:COUNT``) resolved against the batch's job
names.  A :class:`FaultInjector` consumes the plan attempt-by-attempt in
the parent process, so each fault fires exactly ``times`` attempts and
then stops — retries of a sabotaged job run clean, which is what lets the
battery assert exact counter values.

Faults travel to workers as picklable :func:`functools.partial` wrappers
over module-level functions; the injector itself never crosses the
process boundary.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.exceptions import FaultSpecError
from repro.experiments.retry import RetryableError, WorkerCrash

#: The injectable fault kinds, in the order the injector arms them when
#: several target the same job.
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "flaky", "corrupt")

#: Exit status of a worker deliberately killed by a ``crash`` fault.
CRASH_EXIT_CODE = 70


class TransientFault(RetryableError):
    """The injected transient failure; retried like any flaky error."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` fired against ``job``, ``times`` times."""

    kind: str
    job: str
    times: int = 1

    def __post_init__(self) -> None:
        """Validate the kind and the fire count."""
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {', '.join(FAULT_KINDS)}"
            )
        if self.times < 1:
            raise FaultSpecError(
                f"fault times must be >= 1 (got {self.times} for "
                f"{self.kind}:{self.job})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one sweep.

    ``specs`` are explicit :class:`FaultSpec` entries; ``random_entries``
    are ``(seed, count)`` pairs expanded against the batch's job names by
    :meth:`resolve` — the same seed always yields the same schedule.
    ``hang_seconds`` is how long an injected hang sleeps before the job
    runs (it must exceed the retry policy's ``job_timeout`` for the hang
    to actually trip the timeout machinery).
    """

    specs: Tuple[FaultSpec, ...] = ()
    random_entries: Tuple[Tuple[int, int], ...] = ()
    hang_seconds: float = 0.25

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI fault spec string into a plan.

        Grammar (comma-separated entries)::

            kind:job[@times]      e.g.  flaky:table1@2  crash:figure3
            random:SEED:COUNT     seed-expanded against the job names
            hang-seconds=FLOAT    sleep length of injected hangs

        Raises :class:`~repro.exceptions.FaultSpecError` on any malformed
        entry, with a message naming the offending token.
        """
        specs: List[FaultSpec] = []
        randoms: List[Tuple[int, int]] = []
        hang_seconds = 0.25
        for raw in text.split(","):
            token = raw.strip()
            if not token:
                continue
            if token.startswith(("hang-seconds=", "hang_seconds=")):
                try:
                    hang_seconds = float(token.split("=", 1)[1])
                except ValueError:
                    raise FaultSpecError(
                        f"bad hang-seconds value in {token!r}"
                    ) from None
                if hang_seconds < 0:
                    raise FaultSpecError(
                        f"hang-seconds must be >= 0 (got {hang_seconds})"
                    )
                continue
            if token.startswith("random:"):
                parts = token.split(":")
                if len(parts) != 3:
                    raise FaultSpecError(
                        f"random entry must be random:SEED:COUNT (got {token!r})"
                    )
                try:
                    randoms.append((int(parts[1]), int(parts[2])))
                except ValueError:
                    raise FaultSpecError(
                        f"random entry needs integer seed and count (got {token!r})"
                    ) from None
                continue
            kind, sep, rest = token.partition(":")
            if not sep or not rest:
                raise FaultSpecError(
                    f"fault entry must be kind:job[@times] (got {token!r})"
                )
            job, at, times_text = rest.partition("@")
            times = 1
            if at:
                try:
                    times = int(times_text)
                except ValueError:
                    raise FaultSpecError(
                        f"bad @times suffix in {token!r}"
                    ) from None
            specs.append(FaultSpec(kind=kind, job=job, times=times))
        if not specs and not randoms:
            raise FaultSpecError(f"fault spec {text!r} schedules nothing")
        return cls(
            specs=tuple(specs),
            random_entries=tuple(randoms),
            hang_seconds=hang_seconds,
        )

    @classmethod
    def random(cls, seed: int, count: int, **kwargs: Any) -> "FaultPlan":
        """A purely random plan of ``count`` faults expanded from ``seed``."""
        return cls(random_entries=((seed, count),), **kwargs)

    def resolve(self, names: Sequence[str]) -> "FaultPlan":
        """Expand random entries against ``names`` and validate targets.

        Returns a plan containing only explicit specs.  Explicit specs
        naming a job outside ``names`` raise
        :class:`~repro.exceptions.FaultSpecError` — a typo in a CLI spec
        should fail loudly, not silently never fire.
        """
        if not names:
            return FaultPlan((), (), self.hang_seconds)
        known = set(names)
        for spec in self.specs:
            if spec.job not in known:
                raise FaultSpecError(
                    f"fault targets unknown job {spec.job!r}; "
                    f"jobs in this sweep: {', '.join(sorted(known))}"
                )
        expanded = list(self.specs)
        for seed, count in self.random_entries:
            rng = random.Random(f"repro-faults:{seed}")
            for _ in range(count):
                expanded.append(
                    FaultSpec(
                        kind=rng.choice(FAULT_KINDS),
                        job=rng.choice(list(names)),
                    )
                )
        return FaultPlan(specs=tuple(expanded), hang_seconds=self.hang_seconds)

    def total_scheduled(self, kind: str) -> int:
        """Total fire budget of one fault kind across the plan's specs."""
        return sum(spec.times for spec in self.specs if spec.kind == kind)


def _crash_process(func: Callable[[], Any]) -> Any:
    """Worker-side crash: kill the hosting process without cleanup."""
    os._exit(CRASH_EXIT_CODE)


def _raise_crash(name: str) -> Any:
    """In-process crash stand-in: raise instead of killing the sweep."""
    raise WorkerCrash(f"injected crash for job {name!r} (simulated in-process)")


def _hang_then_run(func: Callable[[], Any], seconds: float) -> Any:
    """Sleep past the timeout, then run the job normally (late result)."""
    time.sleep(seconds)
    return func()


def _raise_transient(name: str) -> Any:
    """Raise the injected transient failure for ``name``."""
    raise TransientFault(f"injected transient fault for job {name!r}")


class FaultInjector:
    """Consumes a resolved :class:`FaultPlan` attempt-by-attempt.

    One injector serves one sweep: budgets are per ``(kind, job)`` and are
    consumed *in the parent* when an attempt is armed, so a fault fires a
    bounded, deterministic number of times no matter how jobs are
    requeued.  :meth:`wrap` sabotages compute attempts;
    :meth:`corrupt_before_get` / :meth:`corrupt_after_put` sabotage the
    on-disk cache entry around the runner's cache accesses.
    """

    def __init__(self, plan: FaultPlan) -> None:
        """Build the per-(kind, job) fire budgets from a resolved plan."""
        if plan.random_entries:
            raise FaultSpecError(
                "plan still carries unresolved random entries; call "
                "plan.resolve(job_names) first"
            )
        self.plan = plan
        self._budget: Dict[Tuple[str, str], int] = {}
        for spec in plan.specs:
            key = (spec.kind, spec.job)
            self._budget[key] = self._budget.get(key, 0) + spec.times
        self.fired: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def _arm(self, kind: str, job: str) -> bool:
        """Consume one unit of budget for ``(kind, job)`` if any remains."""
        key = (kind, job)
        remaining = self._budget.get(key, 0)
        if remaining <= 0:
            return False
        self._budget[key] = remaining - 1
        self.fired[kind] += 1
        return True

    def wrap(
        self, func: Callable[[], Any], name: str, *, in_process: bool
    ) -> Callable[[], Any]:
        """The (possibly sabotaged) callable for ``name``'s next attempt.

        At most one fault arms per attempt, in :data:`FAULT_KINDS` order;
        once a job's budgets are spent its attempts run clean.  The
        returned callable is picklable whenever ``func`` is.
        """
        if self._arm("crash", name):
            if in_process:
                return partial(_raise_crash, name)
            return partial(_crash_process, func)
        if self._arm("hang", name):
            return partial(_hang_then_run, func, self.plan.hang_seconds)
        if self._arm("flaky", name):
            return partial(_raise_transient, name)
        return func

    def _scribble(self, path: Any) -> bool:
        """Overwrite a cache entry with truncated garbage; True if done."""
        try:
            data = path.read_bytes()
        except OSError:
            return False
        path.write_bytes(data[: max(1, len(data) // 2)] + b"\x00corrupt")
        return True

    def corrupt_before_get(self, cache: Any, key: str, name: str) -> bool:
        """Corrupt ``name``'s existing cache entry just before it is read.

        Only fires (and only consumes budget) when an entry is actually on
        disk — on a cold cache the budget is kept for
        :meth:`corrupt_after_put`.
        """
        path = cache._path(key)
        if not path.exists():
            return False
        if not self._arm("corrupt", name):
            return False
        return self._scribble(path)

    def corrupt_after_put(self, cache: Any, key: str, name: str) -> bool:
        """Corrupt ``name``'s freshly written entry (poisons warm reruns)."""
        if not self._arm("corrupt", name):
            return False
        return self._scribble(cache._path(key))
