"""Structured paper-vs-measured reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(frozen=True)
class Check:
    """One verifiable claim from the paper.

    Attributes:
        claim: what the paper says (paraphrased, with the section).
        expected: rendered expected value.
        measured: rendered measured value.
        passed: whether they agree.
    """

    claim: str
    expected: str
    measured: str
    passed: bool

    def render(self) -> str:
        """One-line ``[PASS/FAIL] claim: expected vs measured``."""
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim}: expected {self.expected}, measured {self.measured}"

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe) for the on-disk result cache."""
        return {
            "claim": self.claim,
            "expected": self.expected,
            "measured": self.measured,
            "passed": self.passed,
        }

    @staticmethod
    def from_dict(data: dict) -> "Check":
        """Inverse of :meth:`to_dict`."""
        return Check(
            claim=data["claim"],
            expected=data["expected"],
            measured=data["measured"],
            passed=bool(data["passed"]),
        )


@dataclass
class ExperimentReport:
    """All checks of one experiment, plus a printable artifact."""

    experiment: str
    source: str
    checks: List[Check] = field(default_factory=list)
    artifact: str = ""

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def n_passed(self) -> int:
        return sum(check.passed for check in self.checks)

    def check(
        self,
        claim: str,
        expected: Any,
        measured: Any,
        *,
        predicate: Optional[Callable[[Any, Any], bool]] = None,
    ) -> Check:
        """Record one claim; default comparison is equality."""
        if predicate is None:
            passed = expected == measured
        else:
            passed = predicate(expected, measured)
        entry = Check(claim, repr(expected), repr(measured), passed)
        self.checks.append(entry)
        return entry

    def check_true(self, claim: str, condition: bool, measured: Any = None) -> Check:
        """Record a boolean claim."""
        entry = Check(
            claim, "True", repr(measured) if measured is not None else str(condition),
            bool(condition),
        )
        self.checks.append(entry)
        return entry

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe) for the on-disk result cache.

        Round-trips losslessly through :meth:`from_dict`: every field that
        affects rendering (and therefore the ledger summary) is included,
        so a cached report renders byte-identically to a fresh one.
        """
        return {
            "experiment": self.experiment,
            "source": self.source,
            "checks": [check.to_dict() for check in self.checks],
            "artifact": self.artifact,
        }

    @staticmethod
    def from_dict(data: dict) -> "ExperimentReport":
        """Inverse of :meth:`to_dict`."""
        return ExperimentReport(
            experiment=data["experiment"],
            source=data["source"],
            checks=[Check.from_dict(c) for c in data["checks"]],
            artifact=data.get("artifact", ""),
        )

    def render(self, *, verbose: bool = False) -> str:
        """Header plus failing checks (all checks when ``verbose``)."""
        lines = [f"== {self.experiment} ({self.source}) — "
                 f"{self.n_passed}/{len(self.checks)} checks pass =="]
        for check in self.checks:
            if verbose or not check.passed:
                lines.append("  " + check.render())
        if verbose and self.artifact:
            lines.append(self.artifact)
        return "\n".join(lines)
