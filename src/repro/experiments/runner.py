"""Run the whole reproduction ledger and render the summary."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.figures import (
    run_example5,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.experiments.extensions import (
    run_ablation_extension,
    run_open_system_extension,
    run_overload_extension,
    run_reconstruction_findings,
    run_refined_analysis_extension,
)
from repro.experiments.section9 import run_section9_analysis, run_section9_sweep
from repro.experiments.spec import ExperimentReport

_EXPERIMENTS: Dict[str, Callable[[], ExperimentReport]] = {
    "table1": run_table1,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "example5": run_example5,
    "section9": run_section9_analysis,
    "section9-sweep": run_section9_sweep,
}

_EXTENSIONS: Dict[str, Callable[[], ExperimentReport]] = {
    "overload": run_overload_extension,
    "open-system": run_open_system_extension,
    "ablation": run_ablation_extension,
    "refined-analysis": run_refined_analysis_extension,
    "reconstruction-findings": run_reconstruction_findings,
}


def all_experiments(*, extended: bool = False) -> Dict[str, Callable[[], ExperimentReport]]:
    """Name -> runner; pass ``extended=True`` to include the extensions."""
    out = dict(_EXPERIMENTS)
    if extended:
        out.update(_EXTENSIONS)
    return out


def run_all(*, extended: bool = False) -> List[ExperimentReport]:
    """Execute the ledger (deterministic; a few seconds, ~10s extended)."""
    return [runner() for runner in all_experiments(extended=extended).values()]


def render_summary(reports: List[ExperimentReport], *, verbose: bool = False) -> str:
    """Human-readable summary; failures are always expanded."""
    lines: List[str] = []
    total = passed = 0
    for report in reports:
        lines.append(report.render(verbose=verbose))
        total += len(report.checks)
        passed += report.n_passed
    status = "ALL CHECKS PASS" if passed == total else "FAILURES PRESENT"
    lines.append("")
    lines.append(f"reproduction ledger: {passed}/{total} checks pass — {status}")
    return "\n".join(lines)
