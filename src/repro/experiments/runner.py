"""Run the whole reproduction ledger and render the summary.

Ordering contract
-----------------

The ledger renders in one **explicit, documented order** —
:data:`EXPERIMENT_ORDER` followed (when extended) by
:data:`EXTENSION_ORDER`, the order EXPERIMENTS.md presents the artifacts
in.  :func:`all_experiments` returns its mapping in exactly that order and
:func:`run_all` returns reports in exactly that order, *including when the
jobs run in parallel*: the parallel runner reorders completions back to
submission order, so ``render_summary(run_all(jobs=N))`` is byte-identical
for every ``N``.  Extensions that register new experiments must append to
these tuples rather than mutate the returned dict, so completion order can
never leak into the rendered summary.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.figures import (
    run_example5,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.experiments.extensions import (
    run_ablation_extension,
    run_open_system_extension,
    run_overload_extension,
    run_reconstruction_findings,
    run_refined_analysis_extension,
)
from repro.experiments.cache import ResultCache
from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import ExperimentJob, ParallelRunner, RunnerStats
from repro.experiments.retry import RetryPolicy
from repro.experiments.section9 import run_section9_analysis, run_section9_sweep
from repro.experiments.spec import ExperimentReport

#: Rendering order of the core ledger (mirrors EXPERIMENTS.md top-to-bottom).
EXPERIMENT_ORDER: Tuple[str, ...] = (
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "example5",
    "section9",
    "section9-sweep",
)

#: Rendering order of the extension experiments (after the core ledger).
EXTENSION_ORDER: Tuple[str, ...] = (
    "overload",
    "open-system",
    "ablation",
    "refined-analysis",
    "reconstruction-findings",
)

_EXPERIMENTS: Dict[str, Callable[[], ExperimentReport]] = {
    "table1": run_table1,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "example5": run_example5,
    "section9": run_section9_analysis,
    "section9-sweep": run_section9_sweep,
}

_EXTENSIONS: Dict[str, Callable[[], ExperimentReport]] = {
    "overload": run_overload_extension,
    "open-system": run_open_system_extension,
    "ablation": run_ablation_extension,
    "refined-analysis": run_refined_analysis_extension,
    "reconstruction-findings": run_reconstruction_findings,
}


def experiment_order(*, extended: bool = False) -> Tuple[str, ...]:
    """The documented rendering order of the ledger's experiment names."""
    return EXPERIMENT_ORDER + (EXTENSION_ORDER if extended else ())


def all_experiments(*, extended: bool = False) -> Dict[str, Callable[[], ExperimentReport]]:
    """Name -> runner, in :func:`experiment_order`; a fresh copy each call.

    The returned dict is a snapshot — mutating it does not register new
    experiments and cannot perturb the summary order.  Pass
    ``extended=True`` to include the extensions.
    """
    registry = dict(_EXPERIMENTS)
    registry.update(_EXTENSIONS)
    return {name: registry[name] for name in experiment_order(extended=extended)}


def run_all(
    *,
    extended: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: bool = False,
    stats_out: Optional[List[RunnerStats]] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    resume: bool = False,
) -> List[ExperimentReport]:
    """Execute the ledger (deterministic; a few seconds, ~10s extended).

    ``jobs`` fans the independent experiments across that many worker
    processes; ``cache`` (a :class:`ResultCache`) serves already-computed
    reports and stores fresh ones, making warm reruns near-instant.  The
    returned list is always in :func:`experiment_order` — byte-identical
    output for every ``jobs`` value, cache state, retry policy, and
    injected-fault schedule.  ``progress`` prints a per-job line to
    stderr; when ``stats_out`` is given, the run's :class:`RunnerStats`
    is appended to it.

    ``retry`` (a :class:`~repro.experiments.retry.RetryPolicy`) arms
    per-job timeouts, bounded retry with backoff, and the circuit
    breaker; ``fault_plan`` injects deterministic faults for testing; and
    ``resume=True`` replays the sweep manifest journaled next to the
    cache, recomputing only the jobs an interrupted run left unfinished
    (raises :class:`~repro.exceptions.SweepResumeError` when the manifest
    is missing, stale, or there is no cache).  See docs/RELIABILITY.md.
    """
    batch = [
        ExperimentJob(name=name, func=func)
        for name, func in all_experiments(extended=extended).items()
    ]
    runner = ParallelRunner(
        jobs=jobs, cache=cache, progress=progress,
        retry=retry, fault_plan=fault_plan, resume=resume,
    )
    reports = runner.run(batch)
    if stats_out is not None:
        stats_out.append(runner.stats)
    return reports


def render_summary(reports: List[ExperimentReport], *, verbose: bool = False) -> str:
    """Human-readable summary; failures are always expanded."""
    lines: List[str] = []
    total = passed = 0
    for report in reports:
        lines.append(report.render(verbose=verbose))
        total += len(report.checks)
        passed += report.n_passed
    status = "ALL CHECKS PASS" if passed == total else "FAILURES PRESENT"
    lines.append("")
    lines.append(f"reproduction ledger: {passed}/{total} checks pass — {status}")
    return "\n".join(lines)
