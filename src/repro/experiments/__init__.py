"""The reproduction ledger: every paper claim as an executable check.

This package runs each of the paper's artifacts (Table 1, Figures 1-5,
Example 5, the Section 9 analysis) and produces a structured
:class:`~repro.experiments.spec.ExperimentReport` of *claim → expected →
measured → pass/fail*.  The CLI's ``repro reproduce`` command prints the
full ledger; the test suite asserts every check passes; EXPERIMENTS.md is
the prose rendering of the same content.
"""

from repro.experiments.spec import Check, ExperimentReport
from repro.experiments.cache import (
    ResultCache,
    SweepManifest,
    default_cache_dir,
    spec_key,
)
from repro.experiments.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    TransientFault,
)
from repro.experiments.retry import (
    CircuitBreaker,
    JobTimeout,
    RetryPolicy,
    RetryableError,
    WorkerCrash,
)
from repro.experiments.figures import (
    run_example5,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.experiments.parallel import (
    ExperimentJob,
    ParallelRunner,
    RunnerStats,
    parallel_map,
)
from repro.experiments.section9 import run_section9_analysis, run_section9_sweep
from repro.experiments.runner import (
    EXPERIMENT_ORDER,
    EXTENSION_ORDER,
    all_experiments,
    experiment_order,
    render_summary,
    run_all,
)

__all__ = [
    "Check",
    "CircuitBreaker",
    "EXPERIMENT_ORDER",
    "EXTENSION_ORDER",
    "ExperimentJob",
    "ExperimentReport",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "JobTimeout",
    "ParallelRunner",
    "ResultCache",
    "RetryPolicy",
    "RetryableError",
    "RunnerStats",
    "SweepManifest",
    "TransientFault",
    "WorkerCrash",
    "all_experiments",
    "default_cache_dir",
    "experiment_order",
    "parallel_map",
    "render_summary",
    "run_all",
    "spec_key",
    "run_example5",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_section9_analysis",
    "run_section9_sweep",
    "run_table1",
]
