"""The reproduction ledger: every paper claim as an executable check.

This package runs each of the paper's artifacts (Table 1, Figures 1-5,
Example 5, the Section 9 analysis) and produces a structured
:class:`~repro.experiments.spec.ExperimentReport` of *claim → expected →
measured → pass/fail*.  The CLI's ``repro reproduce`` command prints the
full ledger; the test suite asserts every check passes; EXPERIMENTS.md is
the prose rendering of the same content.
"""

from repro.experiments.spec import Check, ExperimentReport
from repro.experiments.figures import (
    run_example5,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.experiments.section9 import run_section9_analysis, run_section9_sweep
from repro.experiments.runner import all_experiments, render_summary, run_all

__all__ = [
    "Check",
    "ExperimentReport",
    "all_experiments",
    "render_summary",
    "run_all",
    "run_example5",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_section9_analysis",
    "run_section9_sweep",
    "run_table1",
]
