"""Executable reproduction of the Section 9 schedulability analysis."""

from __future__ import annotations

from repro.analysis.blocking import blocking_terms, bts_pcp_da, bts_rw_pcp
from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.rm_bound import rm_schedulable
from repro.experiments.spec import ExperimentReport
from repro.model.spec import TaskSet, TransactionSpec
from repro.workloads.examples import example3_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset


def _periodic_example3() -> TaskSet:
    """Example 3 with T2 given a period so the RM analysis applies."""
    base = example3_taskset()
    return TaskSet([
        base["T1"],
        TransactionSpec(
            name="T2", operations=base["T2"].operations,
            priority=base["T2"].priority, period=20.0,
        ),
    ])


def run_section9_analysis() -> ExperimentReport:
    """The analytical claims: BTS subset, smaller B_i."""
    report = ExperimentReport("Section 9 (worst-case analysis)", "Section 9")
    taskset = _periodic_example3()
    report.check(
        "BTS_1 under RW-PCP contains the write-only T2",
        frozenset({"T2"}), bts_rw_pcp(taskset, "T1"),
    )
    report.check(
        "BTS_1 under PCP-DA is empty (writes are preemptable)",
        frozenset(), bts_pcp_da(taskset, "T1"),
    )
    report.check(
        "B_1 shrinks from C_2=5 to 0",
        (5.0, 0.0),
        (
            blocking_terms(taskset, "rw-pcp")["T1"],
            blocking_terms(taskset, "pcp-da")["T1"],
        ),
    )
    da_breakdown = breakdown_utilization(taskset, "pcp-da")
    rw_breakdown = breakdown_utilization(taskset, "rw-pcp")
    report.check_true(
        "PCP-DA's breakdown utilisation strictly exceeds RW-PCP's here",
        da_breakdown > rw_breakdown,
        measured=f"{da_breakdown:.4f} vs {rw_breakdown:.4f}",
    )
    # Subset property across a random corpus.
    subset_holds = True
    for seed in range(20):
        ts = generate_taskset(WorkloadConfig(seed=seed, write_probability=0.4))
        for name in ts.names:
            if not bts_pcp_da(ts, name) <= bts_rw_pcp(ts, name):
                subset_holds = False
    report.check_true(
        "BTS_i(PCP-DA) ⊆ BTS_i(RW-PCP) on 20 random task sets",
        subset_holds,
    )
    return report


def _sweep_point(point) -> tuple:
    """One sweep point: acceptance counts at ``(utilization, sets)``.

    Module-level (hence picklable) so the sweep can fan points across the
    :func:`repro.experiments.parallel.parallel_map` process pool.
    """
    utilization, sets_per_point = point
    accepted = {"pcp-da": 0, "rw-pcp": 0}
    for seed in range(sets_per_point):
        ts = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=8, write_probability=0.5,
                hot_access_probability=0.8,
                target_utilization=utilization, seed=seed,
            )
        )
        for protocol in accepted:
            accepted[protocol] += rm_schedulable(ts, protocol)
    return utilization, accepted


def run_section9_sweep(
    *, utilizations=(0.3, 0.5, 0.7), sets_per_point: int = 25,
    jobs: int = 1, retry=None,
) -> ExperimentReport:
    """The schedulable-fraction comparison over random workloads.

    ``jobs`` fans the utilisation points across worker processes via
    :func:`~repro.experiments.parallel.parallel_map`; each point is seeded
    independently, so the report is identical for every ``jobs`` value.
    ``retry`` (a :class:`~repro.experiments.retry.RetryPolicy`) makes the
    fan-out survive worker crashes, hangs, and transient failures —
    results are unchanged, only wall-clock and retry counters vary.
    """
    from repro.experiments.parallel import parallel_map

    report = ExperimentReport(
        "Section 9 (schedulable-fraction sweep)", "Section 9"
    )
    rows = parallel_map(
        _sweep_point,
        [(u, sets_per_point) for u in utilizations],
        jobs=jobs,
        retry=retry,
    )
    for utilization, accepted in rows:
        report.check_true(
            f"at utilisation {utilization}: PCP-DA accepts at least as many "
            "sets as RW-PCP",
            accepted["pcp-da"] >= accepted["rw-pcp"],
            measured=f"{accepted['pcp-da']} vs {accepted['rw-pcp']} of {sets_per_point}",
        )
    strictly = any(a["pcp-da"] > a["rw-pcp"] for _, a in rows)
    report.check_true(
        "PCP-DA strictly wins at some load point", strictly
    )
    lines = [f"{'util':<6}{'pcp-da':>8}{'rw-pcp':>8}"]
    for utilization, accepted in rows:
        lines.append(
            f"{utilization:<6}{accepted['pcp-da']:>8}{accepted['rw-pcp']:>8}"
        )
    report.artifact = "\n".join(lines)
    return report
