"""Fault-tolerant task execution: timeouts, bounded retry, circuit breaking.

This module is the reliability half of the sweep engine.  The throughput
half (:mod:`repro.experiments.parallel`) fans deterministic jobs across a
process pool; this module makes that fan-out survive the three partial
failures a long sweep actually meets:

* a **worker crash** — the pool process dies mid-job (the whole
  :class:`~concurrent.futures.ProcessPoolExecutor` becomes broken); the
  loop harvests every result that already landed, rebuilds the pool, and
  requeues the lost jobs;
* a **hung job** — an attempt exceeds the per-job timeout; the attempt is
  abandoned (the hung worker is left to finish or die on its own) and the
  job is resubmitted on a fresh worker or thread;
* a **transient exception** — any :class:`RetryableError` raised by the
  job is retried up to :attr:`RetryPolicy.max_retries` times with
  exponential backoff and decorrelated jitter.

Because every job in this repository is a *deterministic* pure function,
retrying is always safe: a retried attempt reproduces the exact bytes the
first attempt would have produced, so the byte-identical-output guarantee
of the parallel runner holds under every fault schedule (the differential
battery in ``tests/test_experiments_faults.py`` asserts this).

A :class:`CircuitBreaker` bounds the damage of a systematically failing
pool: after ``breaker_threshold`` pool breakages the executor stops
rebuilding pools and degrades the remaining jobs to in-process serial
execution, which cannot be killed by a worker crash.

Backoff is **deterministic**: the decorrelated jitter draws from a
:class:`random.Random` seeded with ``(jitter_seed, task key, attempt)``,
so a rerun of the same schedule sleeps the same delays — reproducibility
extends to the retry timeline, not just the results.

See docs/RELIABILITY.md for the full fault model and policy rationale.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as _FutureTimeout,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Poll interval (seconds) of the pool wait loop while per-job timeouts are
#: armed — bounds how late a deadline can be noticed.
_POLL_INTERVAL = 0.02


class RetryableError(RuntimeError):
    """Base class of failures the executor is allowed to retry.

    Jobs (or fault injectors) raise subclasses of this to request a
    bounded retry; any other exception type propagates immediately, so a
    genuine bug in an experiment still fails fast.  The class attribute
    ``counter`` optionally names the :class:`FaultCounters` field that one
    occurrence of the failure increments (beyond ``retries`` itself).
    """

    #: Name of the extra counter this failure bumps, or ``None``.
    counter: Optional[str] = None


class JobTimeout(RetryableError):
    """An attempt exceeded the per-job timeout and was abandoned."""

    counter = "timeouts"


class WorkerCrash(RetryableError):
    """A worker process died (or a crash was simulated in-process)."""

    counter = "crashes"


@dataclass(frozen=True)
class RetryPolicy:
    """How failing jobs are retried, timed out, and circuit-broken.

    Attributes:
        max_retries: resubmissions allowed per job (0 = fail fast).
        job_timeout: seconds one attempt may run before being abandoned,
            or ``None`` for no timeout.
        backoff_base: minimum backoff delay in seconds.
        backoff_cap: upper bound on any single backoff delay.
        jitter_seed: seed of the deterministic decorrelated jitter.
        breaker_threshold: pool breakages tolerated before the circuit
            breaker opens and execution degrades to in-process serial.
    """

    max_retries: int = 2
    job_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter_seed: int = 0
    breaker_threshold: int = 2

    def __post_init__(self) -> None:
        """Reject nonsensical policies with a precise message."""
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0 (got {self.max_retries})")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be positive seconds (got {self.job_timeout})"
            )
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                "backoff_base must be >= 0 and <= backoff_cap "
                f"(got base={self.backoff_base}, cap={self.backoff_cap})"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1 (got {self.breaker_threshold})"
            )

    def backoff_delay(self, key: str, attempt: int, previous: float) -> float:
        """Decorrelated-jitter delay before retrying ``key``.

        Implements the classic decorrelated-jitter recurrence
        ``min(cap, uniform(base, 3 * previous))`` but draws from a PRNG
        seeded with ``(jitter_seed, key, attempt)``, so the delay sequence
        is a pure function of the policy and the retry history — reruns
        back off identically.
        """
        rng = random.Random(f"{self.jitter_seed}:{key}:{attempt}")
        upper = max(self.backoff_base, 3.0 * previous)
        return min(self.backoff_cap, rng.uniform(self.backoff_base, upper))


@dataclass
class CircuitBreaker:
    """Counts pool-level failures; opens at ``threshold`` breakages.

    One breaker guards one sweep: every time the process pool breaks
    (a worker died), :meth:`record_failure` is called, and once the
    threshold is reached :attr:`open` turns true — the executor then
    stops rebuilding pools and finishes the sweep serially in-process.
    """

    threshold: int = 2
    failures: int = 0

    @property
    def open(self) -> bool:
        """True once the pool has failed ``threshold`` times."""
        return self.failures >= self.threshold

    def record_failure(self) -> bool:
        """Count one pool breakage; returns whether the breaker is open."""
        self.failures += 1
        return self.open


@dataclass
class FaultCounters:
    """Mutable tally of reliability events during one execution.

    Any object exposing these attributes (e.g.
    :class:`repro.experiments.parallel.RunnerStats`) can be passed to
    :func:`execute_tasks` as its ``counters``.
    """

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    degradations: int = 0
    max_queue_depth: int = 0


@dataclass(frozen=True)
class Task:
    """One retryable unit of work for :func:`execute_tasks`.

    ``make(attempt, in_process)`` is called in the parent for every
    attempt and must return a zero-argument callable; when the attempt
    will run in a worker process the callable must be picklable (a
    module-level function or :func:`functools.partial` thereof).  The
    ``in_process`` flag tells fault injectors to simulate (rather than
    actually perform) process-killing faults.  ``key`` names the task in
    backoff seeding and error messages.
    """

    key: str
    make: Callable[[int, bool], Callable[[], Any]]


@dataclass
class _Flight:
    """Parent-side record of one in-pool attempt."""

    index: int
    attempt: int
    prev_delay: float
    deadline: Optional[float] = None  # armed once the future is seen running


def _note_counter(counters: Any, exc: BaseException) -> None:
    """Bump the counter a retryable failure advertises, if any."""
    name = getattr(exc, "counter", None)
    if name is not None:
        setattr(counters, name, getattr(counters, name) + 1)


def _call_with_thread_timeout(func: Callable[[], Any], timeout: float) -> Any:
    """Run ``func`` on a fresh thread, abandoning it past ``timeout``.

    Used by the serial path (jobs=1), where there is no worker process to
    watch: the attempt runs on a throwaway single thread and a
    :class:`JobTimeout` is raised if it does not finish in time.  The hung
    thread is left to run out on its own (it cannot be killed), which is
    acceptable for the short injected hangs the tests use and is
    documented as a limitation in docs/RELIABILITY.md.
    """
    pool = ThreadPoolExecutor(max_workers=1)
    future = pool.submit(func)
    try:
        return future.result(timeout=timeout)
    except _FutureTimeout:
        raise JobTimeout(
            f"attempt exceeded the {timeout:g}s job timeout"
        ) from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def call_with_retries(
    task: Task,
    policy: RetryPolicy,
    counters: Any,
    *,
    start_attempt: int = 1,
) -> Any:
    """Run one task in-process with the policy's retry/timeout semantics.

    This is both the jobs=1 serial path and the degraded path the circuit
    breaker falls back to.  ``in_process=True`` is passed to
    :attr:`Task.make`, so injected crashes become raised
    :class:`WorkerCrash` exceptions instead of killing the interpreter.
    """
    attempt = start_attempt
    prev_delay = 0.0
    while True:
        func = task.make(attempt, True)
        try:
            if policy.job_timeout is None:
                return func()
            return _call_with_thread_timeout(func, policy.job_timeout)
        except RetryableError as exc:
            _note_counter(counters, exc)
            if attempt >= policy.max_retries + 1:
                raise
            counters.retries += 1
            prev_delay = policy.backoff_delay(task.key, attempt, prev_delay)
            if prev_delay > 0:
                time.sleep(prev_delay)
            attempt += 1


def execute_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    counters: Optional[Any] = None,
    on_done: Optional[Callable[[int, Any], None]] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> List[Any]:
    """Run every task, tolerating crashes/hangs/transients per ``policy``.

    Results are returned indexed like ``tasks`` (completion order never
    leaks out).  ``on_done(index, result)`` fires in the parent as each
    task finishes — the parallel runner uses it for cache writes, manifest
    journaling, and progress lines.  With ``jobs <= 1`` or fewer than two
    tasks everything runs in-process; otherwise a
    :class:`~concurrent.futures.ProcessPoolExecutor` is used and rebuilt
    on breakage until ``breaker`` opens.  Exceptions that are not
    retryable — or that exhaust the retry budget — propagate.
    """
    policy = policy if policy is not None else RetryPolicy(max_retries=0)
    counters = counters if counters is not None else FaultCounters()
    breaker = breaker if breaker is not None else CircuitBreaker(
        threshold=policy.breaker_threshold
    )
    notify = on_done if on_done is not None else (lambda index, result: None)
    results: List[Any] = [None] * len(tasks)
    if jobs <= 1 or len(tasks) < 2:
        for index, task in enumerate(tasks):
            results[index] = call_with_retries(task, policy, counters)
            notify(index, results[index])
        return results
    _run_pool(tasks, jobs, policy, counters, notify, results, breaker)
    return results


def _schedule_retry(flight, task, exc, policy, counters, queue) -> None:
    """Requeue a failed attempt with backoff, or re-raise if exhausted."""
    if flight.attempt >= policy.max_retries + 1:
        raise exc
    counters.retries += 1
    delay = policy.backoff_delay(task.key, flight.attempt, flight.prev_delay)
    queue.append(
        (flight.index, flight.attempt + 1, delay, time.monotonic() + delay)
    )


def _drain_serial(tasks, queue, policy, counters, notify, results) -> None:
    """Degraded path: finish every queued job in-process, crash-proof."""
    counters.degradations += 1
    while queue:
        index, attempt, _prev, ready_at = queue.popleft()
        delay = ready_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        results[index] = call_with_retries(
            tasks[index], policy, counters, start_attempt=attempt
        )
        notify(index, results[index])


def _run_pool(tasks, jobs, policy, counters, notify, results, breaker) -> None:
    """The fault-tolerant pool loop: submit, watch deadlines, requeue."""
    from collections import deque

    queue = deque((i, 1, 0.0, 0.0) for i in range(len(tasks)))
    outstanding: Dict[Any, _Flight] = {}
    width = min(jobs, len(tasks))
    pool: Optional[ProcessPoolExecutor] = None
    try:
        while queue or outstanding:
            if breaker.open and not outstanding:
                _drain_serial(tasks, queue, policy, counters, notify, results)
                return
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=width)
            broken = _submit_ready(tasks, queue, pool, outstanding, policy)
            counters.max_queue_depth = max(
                counters.max_queue_depth, len(outstanding)
            )
            if not broken and outstanding:
                broken = _reap_completions(
                    tasks, queue, outstanding, policy, counters, notify, results
                )
                _expire_deadlines(
                    tasks, queue, outstanding, policy, counters
                )
            elif not broken:
                _sleep_until_ready(queue)
            if broken:
                pool = _handle_breakage(
                    tasks, queue, pool, outstanding, policy, counters,
                    notify, results, breaker,
                )
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def _submit_ready(tasks, queue, pool, outstanding, policy) -> bool:
    """Submit every backoff-expired attempt; True if the pool is broken."""
    now = time.monotonic()
    deferred = []
    broken = False
    while queue:
        index, attempt, prev_delay, ready_at = queue.popleft()
        if ready_at > now:
            deferred.append((index, attempt, prev_delay, ready_at))
            continue
        try:
            future = pool.submit(tasks[index].make(attempt, False))
        except (BrokenExecutor, RuntimeError):
            # The pool died between loop passes; put the job back and let
            # the breakage handler rebuild.
            deferred.append((index, attempt, prev_delay, ready_at))
            broken = True
            break
        outstanding[future] = _Flight(index, attempt, prev_delay)
    queue.extend(deferred)
    return broken


def _wait_timeout(outstanding, queue, policy) -> Optional[float]:
    """How long the wait loop may block before something needs attention."""
    now = time.monotonic()
    candidates = [ready_at for _i, _a, _p, ready_at in queue]
    if policy.job_timeout is not None:
        for flight in outstanding.values():
            candidates.append(
                flight.deadline if flight.deadline is not None
                else now + _POLL_INTERVAL
            )
    if not candidates:
        return None
    return max(0.0, min(candidates) - now)


def _reap_completions(
    tasks, queue, outstanding, policy, counters, notify, results
) -> bool:
    """Wait for completions and process them; True if the pool broke."""
    done, _ = wait(
        set(outstanding),
        timeout=_wait_timeout(outstanding, queue, policy),
        return_when=FIRST_COMPLETED,
    )
    broken = False
    for future in done:
        flight = outstanding.pop(future)
        try:
            result = future.result()
        except BrokenExecutor:
            # The event itself (counters.crashes) is tallied once by
            # _handle_breakage; here we only requeue the lost attempt.
            broken = True
            _schedule_retry(
                flight, tasks[flight.index],
                WorkerCrash(
                    f"worker running {tasks[flight.index].key!r} died"
                ),
                policy, counters, queue,
            )
        except RetryableError as exc:
            _note_counter(counters, exc)
            _schedule_retry(flight, tasks[flight.index], exc, policy,
                            counters, queue)
        else:
            results[flight.index] = result
            notify(flight.index, result)
    return broken


def _expire_deadlines(tasks, queue, outstanding, policy, counters) -> None:
    """Arm deadlines on running futures; abandon the ones that blew them."""
    if policy.job_timeout is None:
        return
    now = time.monotonic()
    for future, flight in list(outstanding.items()):
        if future.done():
            continue  # picked up by the next wait() immediately
        if flight.deadline is None:
            if future.running():
                flight.deadline = now + policy.job_timeout
        elif now >= flight.deadline:
            # Abandon the attempt: drop the future (its worker keeps the
            # slot until the hung call returns; the late result is never
            # read) and retry elsewhere.
            del outstanding[future]
            counters.timeouts += 1
            _schedule_retry(
                flight, tasks[flight.index],
                JobTimeout(
                    f"job {tasks[flight.index].key!r} exceeded the "
                    f"{policy.job_timeout:g}s timeout"
                ),
                policy, counters, queue,
            )


def _sleep_until_ready(queue) -> None:
    """Nothing in flight: sleep until the earliest backoff expires."""
    if not queue:
        return
    delay = min(ready_at for _i, _a, _p, ready_at in queue) - time.monotonic()
    if delay > 0:
        time.sleep(delay)


def _handle_breakage(
    tasks, queue, pool, outstanding, policy, counters, notify, results, breaker
) -> None:
    """A worker died: harvest survivors, requeue the lost, drop the pool."""
    counters.crashes += 1
    breaker.record_failure()
    for future, flight in list(outstanding.items()):
        harvested = False
        if future.done():
            try:
                result = future.result()
            except BaseException:
                pass  # lost with the pool; requeued below
            else:
                results[flight.index] = result
                notify(flight.index, result)
                harvested = True
        if not harvested:
            _schedule_retry(
                flight, tasks[flight.index],
                WorkerCrash(
                    f"worker running {tasks[flight.index].key!r} died"
                ),
                policy, counters, queue,
            )
    outstanding.clear()
    if pool is not None:
        # wait=True: the breakage already killed every worker, so this
        # only joins the (finished) management thread — and it detaches
        # the dead pool from the interpreter's atexit hooks, which would
        # otherwise print an "Exception ignored" over its closed pipes.
        pool.shutdown(wait=True, cancel_futures=True)
    return None
