"""Executable reproductions of Table 1 and Figures 1-5 (+ Example 5).

Each function simulates the relevant example and returns an
:class:`~repro.experiments.spec.ExperimentReport` whose checks quote the
paper's narration.  These are the same facts the figure-pinning tests
assert; here they are packaged as data so the CLI can print the ledger.
"""

from __future__ import annotations

from repro.core.compatibility import compatibility_table, render_compatibility_table
from repro.engine.simulator import SimConfig, Simulator
from repro.experiments.spec import ExperimentReport
from repro.model.spec import DUMMY_PRIORITY
from repro.protocols import make_protocol
from repro.trace.gantt import render_gantt
from repro.trace.sysceil import SysceilTrace
from repro.workloads.examples import (
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
)


def _simulate(taskset, protocol, config=None):
    return Simulator(taskset, make_protocol(protocol), config).run()


def run_table1() -> ExperimentReport:
    """Regenerate Table 1 and check every cell against the paper."""
    report = ExperimentReport("Table 1", "Section 4.1")
    outcomes = {
        (held, req, cond): ok for held, req, cond, ok in compatibility_table()
    }
    report.check("read/read compatible", True, outcomes[("read", "read", "-")])
    report.check(
        "read-held blocks write request (Case 2)",
        False, outcomes[("read", "write", "-")],
    )
    report.check(
        "write/write compatible (Case 3, blind writes)",
        True, outcomes[("write", "write", "-")],
    )
    report.check(
        "write-held admits read when DataRead(T_L) ∩ WriteSet(T_H) = ∅ (Case 1)",
        True,
        outcomes[("write", "read", "DataRead(T_L) ∩ WriteSet(T_H) = ∅")],
    )
    report.check(
        "write-held refuses read when the sets intersect",
        False,
        outcomes[("write", "read", "DataRead(T_L) ∩ WriteSet(T_H) ≠ ∅")],
    )
    report.artifact = render_compatibility_table()
    return report


def run_figure1() -> ExperimentReport:
    """Example 1 under RW-PCP (Figure 1) + the PCP-DA counterpart."""
    report = ExperimentReport("Figure 1 (Example 1, RW-PCP)", "Section 3")
    result = _simulate(example1_taskset(), "rw-pcp")
    report.check(
        "T2 is ceiling-blocked at t=1 although y is free",
        1.0, result.trace.denials_for("T2#0")[0].time,
    )
    report.check_true(
        "T2's denial is classified as ceiling blocking",
        "ceiling" in result.trace.denials_for("T2#0")[0].rule,
    )
    report.check(
        "T1 is conflict-blocked at t=2",
        2.0, result.trace.denials_for("T1#0")[0].time,
    )
    report.check("T3 completes at 3", 3.0, result.job("T3#0").finish_time)
    report.check("T1 completes at 4", 4.0, result.job("T1#0").finish_time)
    report.check("T2 completes at 5", 5.0, result.job("T2#0").finish_time)
    da = _simulate(example1_taskset(), "pcp-da")
    report.check(
        "PCP-DA avoids both blockings on the same workload",
        0.0, sum(j.total_blocking_time() for j in da.jobs),
    )
    report.artifact = render_gantt(result)
    return report


def run_figure2() -> ExperimentReport:
    """Example 3 under PCP-DA (Figure 2), grant by grant."""
    report = ExperimentReport("Figure 2 (Example 3, PCP-DA)", "Section 6")
    config = SimConfig(horizon=11.0, max_instances=2)
    result = _simulate(example3_taskset(), "pcp-da", config)
    grants_t1 = [
        (g.time, g.item, g.rule) for g in result.trace.grants_for("T1#0")
    ]
    report.check(
        "T1 read-locks write-locked x via LC2 at t=1",
        (1.0, "x", "LC2"), grants_t1[0],
    )
    report.check(
        "T1 read-locks y via LC2 at t=2", (2.0, "y", "LC2"), grants_t1[1]
    )
    report.check("T1#0 completes at 3", 3.0, result.job("T1#0").finish_time)
    report.check(
        "T2 write-locks y at 5 (LC1)",
        (5.0, "y", "LC1"),
        (lambda g: (g.time, g.item, g.rule))(result.trace.grants_for("T2#0")[1]),
    )
    report.check("T1#1 completes at 8", 8.0, result.job("T1#1").finish_time)
    report.check("T2 completes at 9", 9.0, result.job("T2#0").finish_time)
    report.check(
        "no transaction is ever blocked",
        0.0, sum(j.total_blocking_time() for j in result.jobs),
    )
    report.check("no deadline is missed", 0, len(result.missed_jobs))
    report.artifact = render_gantt(result)
    return report


def run_figure3() -> ExperimentReport:
    """Example 3 under RW-PCP (Figure 3): blocking and the missed deadline."""
    report = ExperimentReport("Figure 3 (Example 3, RW-PCP)", "Section 6")
    config = SimConfig(horizon=11.0, max_instances=2)
    result = _simulate(example3_taskset(), "rw-pcp", config)
    t1 = result.job("T1#0")
    report.check(
        "T1 is blocked from 1 to 5 (4 units)",
        (1.0, 5.0), (t1.block_intervals[0].start, t1.block_intervals[0].end),
    )
    report.check("T1 misses its deadline at 6", True, t1.missed_deadline)
    report.check("T1 completes at 7", 7.0, t1.finish_time)
    report.check("T2 completes at 5", 5.0, result.job("T2#0").finish_time)
    report.check(
        "the second instance of T1 meets its deadline",
        False, result.job("T1#1").missed_deadline,
    )
    report.artifact = render_gantt(result)
    return report


def run_figure4() -> ExperimentReport:
    """Example 4 under PCP-DA (Figure 4), including the Max_Sysceil trace."""
    report = ExperimentReport("Figure 4 (Example 4, PCP-DA)", "Section 6")
    result = _simulate(example4_taskset(), "pcp-da")
    report.check(
        "T3 read-locks z through LC4 at t=1 (T*=T4, z∉WriteSet(T4))",
        (1.0, "z", "LC4"),
        (lambda g: (g.time, g.item, g.rule))(result.trace.grants_for("T3#0")[0]),
    )
    report.check(
        "T4 write-locks x at t=3 when it resumes (LC1)",
        (3.0, "x", "LC1"),
        (lambda g: (g.time, g.item, g.rule))(result.trace.grants_for("T4#0")[1]),
    )
    report.check(
        "T1 reads the write-locked x through LC2 at t=4",
        (4.0, "x", "LC2"),
        (lambda g: (g.time, g.item, g.rule))(result.trace.grants_for("T1#0")[0]),
    )
    report.check(
        "completions (T3, T1, T4, T2)",
        (3.0, 6.0, 9.0, 11.0),
        tuple(result.job(f"{name}#0").finish_time for name in ("T3", "T1", "T4", "T2")),
    )
    trace = SysceilTrace.from_result(result)
    p2 = 3
    report.check("Max_Sysceil never exceeds P2", p2, trace.max_level)
    report.check(
        "the ceiling is back to dummy after t=9",
        DUMMY_PRIORITY, trace.level_at(9.5),
    )
    report.check(
        "no transaction is ever blocked",
        0.0, sum(j.total_blocking_time() for j in result.jobs),
    )
    report.artifact = render_gantt(result) + "\n" + trace.render(label="Max_Sysceil")
    return report


def run_figure5() -> ExperimentReport:
    """Example 4 under RW-PCP (Figure 5): the two unnecessary blockings."""
    report = ExperimentReport("Figure 5 (Example 4, RW-PCP)", "Section 6")
    result = _simulate(example4_taskset(), "rw-pcp")
    report.check(
        "T3's effective blocking by T4 is 4 units",
        4.0, result.job("T3#0").total_blocking_time(),
    )
    report.check(
        "T1's effective blocking by T4 is 1 unit",
        1.0, result.job("T1#0").total_blocking_time(),
    )
    report.check(
        "both blockings are attributed to T4",
        (("T4#0",), ("T4#0",)),
        (
            result.job("T3#0").block_intervals[0].blockers,
            result.job("T1#0").block_intervals[0].blockers,
        ),
    )
    trace = SysceilTrace.from_result(result)
    p1 = 4
    report.check("Max_Sysceil reaches P1", p1, trace.max_level)
    da_level = SysceilTrace.from_result(
        _simulate(example4_taskset(), "pcp-da")
    ).max_level
    report.check_true(
        "the Max_Sysceil push-down: PCP-DA's peak is strictly lower",
        da_level < trace.max_level,
        measured=f"PCP-DA {da_level} vs RW-PCP {trace.max_level}",
    )
    report.artifact = render_gantt(result) + "\n" + trace.render(label="Max_Sysceil")
    return report


def run_example5() -> ExperimentReport:
    """Example 5: the deadlock under conditions (1)/(2), avoided by PCP-DA."""
    report = ExperimentReport("Example 5 (deadlock under condition (2))", "Section 7")
    weak = _simulate(
        example5_taskset(), "weak-pcp-da", SimConfig(deadlock_action="halt")
    )
    report.check_true(
        "the weakened protocol deadlocks",
        weak.deadlock is not None,
        measured=weak.deadlock,
    )
    if weak.deadlock is not None:
        report.check(
            "the cycle is T_L <-> T_H",
            {"TH#0", "TL#0"}, set(weak.deadlock.cycle),
        )
    real = _simulate(example5_taskset(), "pcp-da")
    report.check_true(
        "real PCP-DA does not deadlock (LC3/LC4 deny T_H's read)",
        real.deadlock is None,
    )
    report.check(
        "T_L and T_H both commit (at 3 and 5)",
        (3.0, 5.0),
        (real.job("TL#0").finish_time, real.job("TH#0").finish_time),
    )
    report.artifact = render_gantt(real)
    return report
