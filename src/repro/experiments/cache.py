"""Content-addressed on-disk cache of :class:`ExperimentReport` results.

Every experiment in this repository is deterministic: the same spec, seed,
protocol, and code version always produce the same report (EXPERIMENTS.md).
That makes results *content-addressable* — the cache key is a SHA-256 over
the experiment's identity (name, the fully-qualified function that computes
it, any parameters such as seeds or sweep points) plus the ``repro``
package version.  A version bump therefore invalidates every prior entry
automatically; there is no mtime or TTL logic to get wrong.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` so a warm
rerun of the full ledger only deserialises a handful of small files instead
of re-simulating.  The cache counts hits and misses so the parallel runner
(:mod:`repro.experiments.parallel`) can report cache effectiveness.

The default cache root honours ``REPRO_CACHE_DIR`` and falls back to
``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Optional, Sequence, Tuple

import repro
from repro.experiments.spec import ExperimentReport

#: Bump when the on-disk entry layout changes (independent of the package
#: version, which keys the *results*; this keys the *format*).
CACHE_FORMAT = 1


def default_cache_dir() -> pathlib.Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def spec_key(name: str, func: Any = None, params: Sequence[Any] = (),
             *, version: Optional[str] = None) -> str:
    """SHA-256 content address of one experiment's identity.

    The digest covers the experiment ``name``, the fully-qualified name of
    the function that computes it (module + qualname, so moving or renaming
    the implementation invalidates old entries), the ``repr`` of any extra
    ``params`` (seeds, sweep points, workload fingerprints — anything that
    changes the result must appear here), the ``repro`` package version,
    and the cache format number.
    """
    func_id = ""
    if func is not None:
        func_id = f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"
    material = json.dumps(
        {
            "name": name,
            "func": func_id,
            "params": [repr(p) for p in params],
            "version": version if version is not None else repro.__version__,
            "format": CACHE_FORMAT,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk store of serialized reports, keyed by :func:`spec_key`.

    The cache is safe to share between the serial and parallel runners:
    writes go through an atomic rename, so a half-written entry is never
    visible, and concurrent writers of the same key produce identical
    bytes (the results are deterministic) so last-write-wins is harmless.
    """

    def __init__(self, root: Optional[os.PathLike] = None, *,
                 version: Optional[str] = None) -> None:
        """Open (and lazily create) a cache rooted at ``root``.

        ``version`` overrides the ``repro`` package version in every key —
        the tests use this to demonstrate that a version bump busts the
        cache.
        """
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.version = version if version is not None else repro.__version__
        self.hits = 0
        self.misses = 0

    def key_for(self, name: str, func: Any = None,
                params: Sequence[Any] = ()) -> str:
        """This cache's key for an experiment (includes its version)."""
        return spec_key(name, func, params, version=self.version)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[ExperimentReport]:
        """Return the cached report for ``key`` or ``None`` (counted)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            report = ExperimentReport.from_dict(payload["report"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, key: str, report: ExperimentReport) -> None:
        """Store ``report`` under ``key`` (atomic replace)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"key": key, "report": report.to_dict()})
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def counters(self) -> Tuple[int, int]:
        """``(hits, misses)`` so far on this handle."""
        return (self.hits, self.misses)
