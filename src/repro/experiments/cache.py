"""Content-addressed on-disk cache of :class:`ExperimentReport` results.

Every experiment in this repository is deterministic: the same spec, seed,
protocol, and code version always produce the same report (EXPERIMENTS.md).
That makes results *content-addressable* — the cache key is a SHA-256 over
the experiment's identity (name, the fully-qualified function that computes
it, any parameters such as seeds or sweep points) plus the ``repro``
package version.  A version bump therefore invalidates every prior entry
automatically; there is no mtime or TTL logic to get wrong.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` carrying a
SHA-256 checksum of their own report body, so a warm rerun of the full
ledger only deserialises a handful of small files instead of
re-simulating.  :meth:`ResultCache.get` *verifies* that checksum: a
corrupt, truncated, or unreadable entry is never served and never crashes
a sweep — it is moved to ``<root>/quarantine/`` with a
:class:`RuntimeWarning` and counted, then treated as an ordinary miss so
the job simply recomputes (docs/RELIABILITY.md covers the fault model).

The cache counts hits, misses, and quarantined entries so the parallel
runner (:mod:`repro.experiments.parallel`) can report cache effectiveness
and corruption events.  A :class:`SweepManifest` journal next to the
cache records which jobs of a sweep completed, giving ``repro reproduce
--resume`` its checkpoint–resume semantics.

The default cache root honours ``REPRO_CACHE_DIR`` and falls back to
``~/.cache/repro``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import warnings
from typing import Any, Iterable, Optional, Sequence, Set, Tuple

import repro
from repro.exceptions import SweepResumeError
from repro.experiments.spec import ExperimentReport

#: Bump when the on-disk entry layout changes (independent of the package
#: version, which keys the *results*; this keys the *format*).  Format 2
#: added the per-entry ``sha256`` integrity checksum.
CACHE_FORMAT = 2

#: Name of the quarantine directory under the cache root.
QUARANTINE_DIR = "quarantine"

#: Name of the sweep checkpoint journal kept next to the cache entries.
MANIFEST_NAME = "sweep-manifest.jsonl"


def default_cache_dir() -> pathlib.Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def spec_key(name: str, func: Any = None, params: Sequence[Any] = (),
             *, version: Optional[str] = None) -> str:
    """SHA-256 content address of one experiment's identity.

    The digest covers the experiment ``name``, the fully-qualified name of
    the function that computes it (module + qualname, so moving or renaming
    the implementation invalidates old entries), the ``repr`` of any extra
    ``params`` (seeds, sweep points, workload fingerprints — anything that
    changes the result must appear here), the ``repro`` package version,
    and the cache format number.
    """
    func_id = "" if func is None else _func_identity(func)
    material = json.dumps(
        {
            "name": name,
            "func": func_id,
            "params": [repr(p) for p in params],
            "version": version if version is not None else repro.__version__,
            "format": CACHE_FORMAT,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _func_identity(func: Any) -> str:
    """Stable textual identity of a job function for :func:`spec_key`.

    Plain functions contribute ``module.qualname``.
    :class:`functools.partial` objects are unwrapped recursively so their
    identity covers the inner function plus the bound arguments — never
    ``repr(partial)``, whose embedded memory address would make keys
    differ between processes and break warm caches and sweep resume.
    """
    if isinstance(func, functools.partial):
        bound = sorted((func.keywords or {}).items())
        return (
            f"partial({_func_identity(func.func)}, "
            f"args={func.args!r}, kwargs={bound!r})"
        )
    return f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"


def _report_checksum(report_dict: Any) -> str:
    """SHA-256 of a report's canonical JSON body (the stored checksum)."""
    body = json.dumps(report_dict, sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class CacheIntegrityError(ValueError):
    """A cache entry's stored checksum does not match its body."""


class ResultCache:
    """On-disk store of serialized reports, keyed by :func:`spec_key`.

    The cache is safe to share between the serial and parallel runners:
    writes go through an atomic rename, so a half-written entry is never
    visible, and concurrent writers of the same key produce identical
    bytes (the results are deterministic) so last-write-wins is harmless.
    Reads are *verified*: an entry whose checksum fails — bit rot, a
    truncated write from a killed process, or an injected corruption — is
    quarantined and reported as a miss rather than crashing the sweep.
    """

    def __init__(self, root: Optional[os.PathLike] = None, *,
                 version: Optional[str] = None) -> None:
        """Open (and lazily create) a cache rooted at ``root``.

        ``version`` overrides the ``repro`` package version in every key —
        the tests use this to demonstrate that a version bump busts the
        cache.
        """
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.version = version if version is not None else repro.__version__
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def key_for(self, name: str, func: Any = None,
                params: Sequence[Any] = ()) -> str:
        """This cache's key for an experiment (includes its version)."""
        return spec_key(name, func, params, version=self.version)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        """Where corrupt entries are moved (``<root>/quarantine``)."""
        return self.root / QUARANTINE_DIR

    @property
    def manifest_path(self) -> pathlib.Path:
        """Where the sweep checkpoint journal lives, next to the entries."""
        return self.root / MANIFEST_NAME

    def ensure_writable(self) -> None:
        """Create the cache root and quarantine dir; raises ``OSError``.

        The CLI calls this up front so an unusable cache or quarantine
        directory fails with one clean error before any work is done,
        instead of mid-sweep.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside (best-effort) and warn once about it."""
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            note = f"moved to {target}"
        except OSError as exc:
            # Quarantine is best-effort: an unwritable quarantine dir must
            # not crash the sweep, so fall back to deleting the bad entry.
            try:
                path.unlink()
                note = f"deleted (quarantine unavailable: {exc})"
            except OSError:
                note = f"left in place (quarantine unavailable: {exc})"
        self.quarantined += 1
        warnings.warn(
            f"quarantined corrupt result-cache entry {path.name}: {note}; "
            "the result will be recomputed",
            RuntimeWarning,
            stacklevel=3,
        )

    def get(self, key: str) -> Optional[ExperimentReport]:
        """Return the verified cached report for ``key`` or ``None``.

        Counts a hit or a miss; a present-but-unreadable entry (bad JSON,
        truncation, checksum mismatch, wrong shape) is quarantined via
        :meth:`_quarantine` and reported as a miss — corruption degrades a
        sweep to recomputation, never to a crash.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if _report_checksum(payload["report"]) != payload["sha256"]:
                raise CacheIntegrityError(f"checksum mismatch for {key}")
            report = ExperimentReport.from_dict(payload["report"])
        except (OSError, ValueError, KeyError, TypeError):
            if path.exists():
                self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, key: str, report: ExperimentReport) -> None:
        """Store ``report`` under ``key`` with a checksum (atomic replace)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        report_dict = report.to_dict()
        payload = json.dumps({
            "key": key,
            "sha256": _report_checksum(report_dict),
            "report": report_dict,
        })
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)

    def _entries(self) -> Iterable[pathlib.Path]:
        """Every live entry file (quarantined ones excluded)."""
        if not self.root.exists():
            return
        for entry in self.root.glob("*/*.json"):
            if entry.parent.name != QUARANTINE_DIR:
                yield entry

    def clear(self) -> int:
        """Delete every live entry; returns the number of files removed."""
        removed = 0
        for entry in list(self._entries()):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def counters(self) -> Tuple[int, int]:
        """``(hits, misses)`` so far on this handle."""
        return (self.hits, self.misses)


class SweepManifest:
    """Append-only journal of which jobs of one sweep have completed.

    The manifest lives next to the cache (:attr:`ResultCache.manifest_path`)
    and is the checkpoint half of checkpoint–resume: line 1 is a JSON
    header binding the journal to one job batch (a digest over the
    batch's cache keys, in submission order), every further line is the
    cache key of one completed job, flushed as it finishes.  An
    interrupted ``repro reproduce`` therefore leaves a manifest naming
    exactly the finished prefix of work; ``--resume`` verifies the digest
    (a changed batch means the journal is stale) and recomputes only the
    remainder — completed jobs are served from the verified cache.
    """

    #: Bump when the journal layout changes.
    FORMAT = 1

    def __init__(self, path: os.PathLike) -> None:
        """Bind the journal to a file path (nothing is read or written)."""
        self.path = pathlib.Path(path)

    @staticmethod
    def batch_digest(keys: Sequence[str]) -> str:
        """Digest identifying one job batch: SHA-256 over its ordered keys."""
        return hashlib.sha256("\n".join(keys).encode("utf-8")).hexdigest()

    def start(self, digest: str, total: int,
              completed: Iterable[str] = ()) -> None:
        """(Re)write the journal header plus any already-completed keys."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps({
            "format": self.FORMAT, "batch": digest, "total": total,
        })
        lines = [header] + list(completed)
        self.path.write_text("\n".join(lines) + "\n")

    def record(self, key: str) -> None:
        """Append one completed job key, flushed so a kill loses nothing."""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(key + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> Tuple[str, Set[str]]:
        """Read the journal: ``(batch digest, completed key set)``.

        Raises :class:`~repro.exceptions.SweepResumeError` when the
        manifest is missing or its header is unreadable — the two ways a
        resume request can be unsatisfiable before staleness is even
        checked.
        """
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            raise SweepResumeError(
                f"no sweep manifest at {self.path} ({exc.strerror or exc}); "
                "run once without --resume to create one"
            ) from None
        try:
            header = json.loads(lines[0])
            digest = header["batch"]
            if header.get("format") != self.FORMAT:
                raise ValueError(f"manifest format {header.get('format')!r}")
        except (IndexError, ValueError, KeyError, TypeError) as exc:
            raise SweepResumeError(
                f"sweep manifest {self.path} is unreadable ({exc}); "
                "delete it and run without --resume"
            ) from None
        return digest, {line.strip() for line in lines[1:] if line.strip()}
