"""Static specifications of transactions and task sets.

Priorities are plain integers where **larger means higher priority**.  The
paper writes ``T_1 .. T_n`` in *descending* order of priority; the helper
:func:`repro.model.priorities.assign_rate_monotonic` produces the same total
order.  The *dummy* priority from the paper — "lower than the priorities of
all transactions in the system" — is :data:`DUMMY_PRIORITY` (zero); every
real transaction priority must be positive.

Durations and times are floats.  The paper's examples use unit-length
operations; nothing in the engine assumes integral times.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.exceptions import SpecificationError

#: The priority ceiling "lower than the priorities of all transactions"
#: (paper, Example 1).  Real priorities are strictly positive integers.
DUMMY_PRIORITY: int = 0


class OpKind(enum.Enum):
    """Kind of a transaction operation."""

    COMPUTE = "compute"
    READ = "read"
    WRITE = "write"


class LockMode(enum.Enum):
    """Lock modes used by every protocol in this library."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Operation:
    """One step of a transaction's program.

    Attributes:
        kind: read, write, or pure computation.
        item: name of the data item accessed; ``None`` for COMPUTE.
        duration: CPU time the step consumes once it is allowed to run.
    """

    kind: OpKind
    item: Optional[str]
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SpecificationError(
                f"operation duration must be non-negative, got {self.duration}"
            )
        if self.kind is OpKind.COMPUTE and self.item is not None:
            raise SpecificationError("compute operations must not name a data item")
        if self.kind is not OpKind.COMPUTE and not self.item:
            raise SpecificationError(f"{self.kind.value} operation requires a data item")

    @property
    def lock_mode(self) -> Optional[LockMode]:
        """Lock mode this operation needs, or ``None`` for COMPUTE."""
        if self.kind is OpKind.READ:
            return LockMode.READ
        if self.kind is OpKind.WRITE:
            return LockMode.WRITE
        return None

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``Read(x, 1.0)``."""
        if self.kind is OpKind.COMPUTE:
            return f"Compute({self.duration:g})"
        return f"{self.kind.value.capitalize()}({self.item}, {self.duration:g})"


def read(item: str, duration: float = 1.0) -> Operation:
    """Build a read operation on ``item`` taking ``duration`` CPU units."""
    return Operation(OpKind.READ, item, duration)


def write(item: str, duration: float = 1.0) -> Operation:
    """Build a (deferred) write operation on ``item``."""
    return Operation(OpKind.WRITE, item, duration)


def compute(duration: float) -> Operation:
    """Build a pure-computation operation (no data access, no lock)."""
    return Operation(OpKind.COMPUTE, None, duration)


@dataclass(frozen=True)
class TransactionSpec:
    """Static description of one periodic transaction.

    Attributes:
        name: unique identifier (``"T1"`` etc.).
        operations: the transaction's program, executed in order.  The lock
            for a read/write step is requested when the step starts; all
            locks are released at commit (end of the last step).
        priority: original (base) priority; larger is higher.  May be left
            ``None`` and filled in by rate-monotonic assignment.
        period: period of the transaction; ``None`` for a one-shot
            (aperiodic) transaction, as in the paper's worked examples.
        offset: release time of the first instance.
        deadline: relative deadline; defaults to the period (paper: "the
            deadline of a transaction is at the end of its period").
    """

    name: str
    operations: Tuple[Operation, ...]
    priority: Optional[int] = None
    period: Optional[float] = None
    offset: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("transaction name must be non-empty")
        object.__setattr__(self, "operations", tuple(self.operations))
        if not self.operations:
            raise SpecificationError(f"{self.name}: needs at least one operation")
        if self.period is not None and self.period <= 0:
            raise SpecificationError(f"{self.name}: period must be positive")
        if self.offset < 0:
            raise SpecificationError(f"{self.name}: offset must be non-negative")
        if self.priority is not None and self.priority <= DUMMY_PRIORITY:
            raise SpecificationError(
                f"{self.name}: priority must be greater than the dummy priority "
                f"({DUMMY_PRIORITY})"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise SpecificationError(f"{self.name}: deadline must be positive")

    # ------------------------------------------------------------------
    # Derived, cached views
    # ------------------------------------------------------------------
    # ``functools.cached_property`` stores the computed value in the
    # instance ``__dict__`` directly, which sidesteps the frozen-dataclass
    # ``__setattr__`` guard; the spec is immutable, so the views never go
    # stale.  The hot admission path consults these sets on every lock
    # request — rebuilding the frozensets per call dominated profiles.
    @functools.cached_property
    def execution_time(self) -> float:
        """Total CPU demand ``C_i`` (sum of operation durations)."""
        return sum(op.duration for op in self.operations)

    @functools.cached_property
    def read_set(self) -> FrozenSet[str]:
        """Items this transaction may read (declared read set)."""
        return frozenset(
            op.item for op in self.operations if op.kind is OpKind.READ and op.item
        )

    @functools.cached_property
    def write_set(self) -> FrozenSet[str]:
        """Items this transaction may write — ``WriteSet(T_i)`` in the paper."""
        return frozenset(
            op.item for op in self.operations if op.kind is OpKind.WRITE and op.item
        )

    @functools.cached_property
    def access_set(self) -> FrozenSet[str]:
        """All items this transaction may read or write."""
        return self.read_set | self.write_set

    @property
    def relative_deadline(self) -> Optional[float]:
        """Effective relative deadline (explicit deadline, else the period)."""
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilization(self) -> float:
        """``C_i / Pd_i``; zero for aperiodic transactions."""
        if self.period is None:
            return 0.0
        return self.execution_time / self.period

    def with_priority(self, priority: int) -> "TransactionSpec":
        """Return a copy of this spec with ``priority`` set."""
        return TransactionSpec(
            name=self.name,
            operations=self.operations,
            priority=priority,
            period=self.period,
            offset=self.offset,
            deadline=self.deadline,
        )

    def describe(self) -> str:
        """Multi-line human-readable description of the spec."""
        ops = ", ".join(op.describe() for op in self.operations)
        parts = [f"{self.name}: [{ops}]"]
        if self.priority is not None:
            parts.append(f"priority={self.priority}")
        if self.period is not None:
            parts.append(f"period={self.period:g}")
        parts.append(f"C={self.execution_time:g}")
        return " ".join(parts)


class TaskSet:
    """An ordered collection of :class:`TransactionSpec` with total-order priorities.

    The task set is the unit over which priority ceilings are defined: the
    ceilings depend on *which transactions may access which items*, which is
    static information.  Construction validates that names are unique and
    priorities (when present) form a total order.
    """

    def __init__(self, specs: Iterable[TransactionSpec]):
        specs = tuple(specs)
        if not specs:
            raise SpecificationError("task set must contain at least one transaction")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpecificationError(f"duplicate transaction names: {dupes}")
        priorities = [s.priority for s in specs if s.priority is not None]
        if len(priorities) not in (0, len(specs)):
            raise SpecificationError(
                "either all or none of the transactions must carry a priority"
            )
        if priorities and len(set(priorities)) != len(priorities):
            raise SpecificationError(
                "priorities must form a total order (no duplicates); "
                f"got {sorted(priorities)}"
            )
        # Store in descending order of priority when priorities are known,
        # matching the paper's convention (T_1 is the highest priority).
        if priorities:
            specs = tuple(sorted(specs, key=lambda s: -(s.priority or 0)))
        self._specs: Tuple[TransactionSpec, ...] = specs
        self._by_name: Dict[str, TransactionSpec] = {s.name: s for s in specs}

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TransactionSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> TransactionSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecificationError(f"no transaction named {name!r}") from None

    @property
    def specs(self) -> Tuple[TransactionSpec, ...]:
        """Transactions in descending priority order (when priorities exist)."""
        return self._specs

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self._specs)

    @property
    def has_priorities(self) -> bool:
        return all(s.priority is not None for s in self._specs)

    @property
    def items(self) -> FrozenSet[str]:
        """Every data item named by any transaction."""
        out: set = set()
        for s in self._specs:
            out |= s.access_set
        return frozenset(out)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def priority_of(self, name: str) -> int:
        """The named transaction's priority (errors when unassigned)."""
        spec = self[name]
        if spec.priority is None:
            raise SpecificationError(f"{name} has no priority assigned")
        return spec.priority

    def readers_of(self, item: str) -> Tuple[TransactionSpec, ...]:
        """Transactions whose declared read set contains ``item``."""
        return tuple(s for s in self._specs if item in s.read_set)

    def writers_of(self, item: str) -> Tuple[TransactionSpec, ...]:
        """Transactions whose declared write set contains ``item``."""
        return tuple(s for s in self._specs if item in s.write_set)

    def total_utilization(self) -> float:
        """Sum of ``C_i / Pd_i`` over periodic transactions."""
        return sum(s.utilization for s in self._specs)

    def hyperperiod(self) -> Optional[float]:
        """Least common multiple of the periods, when they are all integral.

        Returns ``None`` if any transaction is aperiodic or has a
        non-integral period (in which case callers should pick an explicit
        simulation horizon instead).
        """
        periods = []
        for s in self._specs:
            if s.period is None:
                return None
            if abs(s.period - round(s.period)) > 1e-9:
                return None
            periods.append(int(round(s.period)))
        lcm = 1
        for p in periods:
            lcm = lcm * p // math.gcd(lcm, p)
        return float(lcm)

    def with_rate_monotonic_priorities(self) -> "TaskSet":
        """Return a copy with rate-monotonic priorities assigned.

        Shorter period means higher priority; ties are broken by name so
        the assignment is deterministic (the paper assumes a total order).
        Aperiodic transactions are not allowed here.
        """
        from repro.model.priorities import assign_rate_monotonic

        return assign_rate_monotonic(self)

    def describe(self) -> str:
        """Multi-line description of all transactions, highest priority first."""
        return "\n".join(s.describe() for s in self._specs)

    def scaled(self, factor: float) -> "TaskSet":
        """Return a copy with every operation duration multiplied by ``factor``.

        Periods, offsets and deadlines are unchanged; used by the
        breakdown-utilization search in :mod:`repro.analysis`.
        """
        if factor <= 0:
            raise SpecificationError("scale factor must be positive")
        scaled_specs = []
        for s in self._specs:
            ops = tuple(
                Operation(op.kind, op.item, op.duration * factor)
                for op in s.operations
            )
            scaled_specs.append(
                TransactionSpec(
                    name=s.name,
                    operations=ops,
                    priority=s.priority,
                    period=s.period,
                    offset=s.offset,
                    deadline=s.deadline,
                )
            )
        return TaskSet(scaled_specs)
