"""Task-set validation beyond the structural checks in the dataclasses.

:func:`validate_taskset` is called by the simulator before a run; it can also
be used standalone by workload generators and by users assembling task sets
by hand.  It collects *all* problems rather than stopping at the first, so a
failing validation reports everything that needs fixing.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import SpecificationError
from repro.model.spec import TaskSet


def validate_taskset(
    taskset: TaskSet,
    *,
    require_priorities: bool = True,
    require_periods: bool = False,
) -> None:
    """Check a task set for semantic problems.

    Args:
        taskset: the task set to validate.
        require_priorities: when true (default), every transaction must carry
            a priority and the priorities must be a total order (enforced at
            :class:`TaskSet` construction; re-checked here for belt and
            braces).
        require_periods: when true, every transaction must be periodic —
            needed for schedulability analysis but not for one-shot
            simulations of the paper's examples.

    Raises:
        SpecificationError: listing every violation found.
    """
    problems: List[str] = []

    if require_priorities and not taskset.has_priorities:
        missing = [s.name for s in taskset if s.priority is None]
        problems.append(f"transactions without a priority: {missing}")

    for spec in taskset:
        if require_periods and spec.period is None:
            problems.append(f"{spec.name}: aperiodic, but a period is required")
        if spec.period is not None and spec.relative_deadline is not None:
            if spec.relative_deadline > spec.period:
                problems.append(
                    f"{spec.name}: deadline {spec.relative_deadline:g} exceeds "
                    f"period {spec.period:g} (the paper assumes deadline = period)"
                )
        if spec.execution_time <= 0:
            problems.append(f"{spec.name}: total execution time must be positive")
        if spec.period is not None and spec.execution_time > spec.period:
            problems.append(
                f"{spec.name}: execution time {spec.execution_time:g} exceeds "
                f"its period {spec.period:g}; the set can never be schedulable"
            )

    if taskset.has_priorities:
        priorities = [s.priority for s in taskset]
        if len(set(priorities)) != len(priorities):
            problems.append(f"priorities are not a total order: {priorities}")

    if problems:
        raise SpecificationError(
            "invalid task set:\n  - " + "\n  - ".join(problems)
        )
