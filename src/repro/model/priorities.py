"""Priority assignment policies.

The paper assumes rate-monotonic priority assignment (Liu & Layland): a
transaction with a shorter period gets a higher priority, and priorities form
a total order.  Priorities here are positive integers with *larger = higher*;
:data:`repro.model.spec.DUMMY_PRIORITY` (zero) is reserved for the dummy
ceiling.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.exceptions import SpecificationError
from repro.model.spec import TaskSet, TransactionSpec


def assign_rate_monotonic(taskset: TaskSet) -> TaskSet:
    """Assign rate-monotonic priorities to every transaction in ``taskset``.

    Shorter period gets a higher priority.  Ties on period are broken by
    transaction name (lexicographic, earlier name wins) so that the result
    is deterministic and forms a total order, as the paper requires.

    Args:
        taskset: task set whose transactions all have a period.

    Returns:
        A new :class:`TaskSet` where the shortest-period transaction has
        priority ``n`` and the longest-period one has priority ``1``.

    Raises:
        SpecificationError: if any transaction is aperiodic.
    """
    specs = list(taskset)
    for s in specs:
        if s.period is None:
            raise SpecificationError(
                f"{s.name}: rate-monotonic assignment requires a period"
            )
    # Sort by (period, name): earliest entries get the highest priorities.
    ordered = sorted(specs, key=lambda s: (s.period, s.name))
    n = len(ordered)
    return TaskSet(
        spec.with_priority(n - rank) for rank, spec in enumerate(ordered)
    )


def assign_deadline_monotonic(taskset: TaskSet) -> TaskSet:
    """Assign deadline-monotonic priorities (shorter relative deadline =
    higher priority).

    Optimal among fixed-priority assignments when deadlines may be shorter
    than periods (Leung & Whitehead); coincides with rate-monotonic when
    every deadline equals its period.  Ties are broken by name.

    Raises:
        SpecificationError: if any transaction lacks a relative deadline
            (i.e. is aperiodic with no explicit deadline).
    """
    specs = list(taskset)
    for s in specs:
        if s.relative_deadline is None:
            raise SpecificationError(
                f"{s.name}: deadline-monotonic assignment requires a deadline"
            )
    ordered = sorted(specs, key=lambda s: (s.relative_deadline, s.name))
    n = len(ordered)
    return TaskSet(
        spec.with_priority(n - rank) for rank, spec in enumerate(ordered)
    )


def assign_by_order(specs: Iterable[TransactionSpec]) -> TaskSet:
    """Assign descending priorities following the given iteration order.

    The first spec receives the highest priority.  This mirrors the paper's
    "T_1, ..., T_n in descending order of priority" convention and is used
    to encode the worked examples, which fix priorities explicitly rather
    than deriving them from periods.
    """
    spec_list: List[TransactionSpec] = list(specs)
    if not spec_list:
        raise SpecificationError("need at least one transaction")
    n = len(spec_list)
    return TaskSet(spec.with_priority(n - i) for i, spec in enumerate(spec_list))
