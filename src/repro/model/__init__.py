"""Transaction and task-set model.

This package defines the *static* description of a real-time database
workload, exactly as the paper's Section 5 assumes it:

* periodic transactions on a single processor,
* rate-monotonic priority assignment (shorter period = higher priority),
* deadline at the end of the period,
* each transaction is a fixed, declared sequence of read / write / compute
  operations, so read sets and write sets are known a priori — a
  prerequisite for computing priority ceilings.

Public names:

* :class:`~repro.model.spec.Operation` and the constructors
  :func:`~repro.model.spec.read`, :func:`~repro.model.spec.write`,
  :func:`~repro.model.spec.compute`
* :class:`~repro.model.spec.TransactionSpec`
* :class:`~repro.model.spec.TaskSet`
* :func:`~repro.model.priorities.assign_rate_monotonic`
* :data:`~repro.model.spec.DUMMY_PRIORITY`
"""

from repro.model.spec import (
    DUMMY_PRIORITY,
    LockMode,
    OpKind,
    Operation,
    TaskSet,
    TransactionSpec,
    compute,
    read,
    write,
)
from repro.model.priorities import assign_deadline_monotonic, assign_rate_monotonic
from repro.model.validation import validate_taskset

__all__ = [
    "DUMMY_PRIORITY",
    "LockMode",
    "OpKind",
    "Operation",
    "TaskSet",
    "TransactionSpec",
    "assign_deadline_monotonic",
    "assign_rate_monotonic",
    "compute",
    "read",
    "validate_taskset",
    "write",
]
