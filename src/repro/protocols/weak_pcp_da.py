"""The deliberately weakened PCP-DA variant of the paper's Example 5.

Section 7 derives LC3/LC4 by showing that the naive pair of conditions

1. ``P_i > Sysceil_i``
2. ``P_i >= HPW(x)``

suffices for single-blocking but **not** for deadlock freedom: condition
(2) lacks the ``x ∉ WriteSet(T*)`` and ``No_Rlock(x)`` guards, and
Example 5 exhibits a two-transaction deadlock under it.  This protocol
implements exactly conditions (1)/(2) so the library can reproduce that
deadlock and demonstrate why the real LC3/LC4 are shaped the way they are.

Run it with ``SimConfig(deadlock_action="halt")`` to capture the cycle in
the result instead of raising.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.ceilings import CeilingTable
from repro.core.locking_conditions import (
    ceiling_holders,
    make_read_ceiling_index,
    system_ceiling,
)
from repro.engine.interfaces import Deny, Grant, InstallPolicy
from repro.engine.lock_table import CeilingIndex
from repro.model.spec import LockMode, TaskSet
from repro.protocols.base import CeilingProtocolBase, register_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@register_protocol
class WeakPCPDA(CeilingProtocolBase):
    """PCP-DA with conditions (1)/(2) instead of LC2/LC3/LC4 — deadlocks."""

    name = "weak-pcp-da"
    install_policy = InstallPolicy.AT_COMMIT
    can_deadlock = True

    def _make_ceiling_index(self) -> CeilingIndex:
        # Same Sysceil semantics as full PCP-DA (only the admission
        # conditions are weakened), so the same read-ceiling index applies.
        return make_read_ceiling_index(self.ceilings)

    def decide(self, job: "Job", item: str, mode: LockMode):
        if mode is LockMode.WRITE:
            other_readers = tuple(
                sorted(self.table.readers_of(item) - {job}, key=lambda j: j.seq)
            )
            if not other_readers:
                return Grant("LC1")
            return Deny(
                other_readers,
                "conflict blocking: write-lock denied, item is read-locked",
            )
        # Read request: naive conditions (1) or (2).
        sysceil = system_ceiling(self.table, self.ceilings, job)
        if job.running_priority > sysceil:
            return Grant("cond(1) P>Sysceil")
        if job.running_priority >= self.ceilings.hpw(item):
            return Grant("cond(2) P>=HPW")
        blockers = ceiling_holders(self.table, self.ceilings, job)
        return Deny(blockers, "ceiling blocking: conditions (1) and (2) false")

    def system_ceiling(self, exclude: "Optional[Job]" = None) -> int:
        return system_ceiling(self.table, self.ceilings, exclude)

    def compile_table(self):
        """Same ceilings as full PCP-DA, but the naive conditions (1)/(2)
        and no waiter exemption (which is why it deadlocks)."""
        from repro.engine.kernel.tables import (
            FAMILY_WEAK_PCPDA,
            LEVEL_READ_WCEIL,
            ProtocolTable,
        )

        return ProtocolTable(
            protocol=self.name,
            family=FAMILY_WEAK_PCPDA,
            level_source=LEVEL_READ_WCEIL,
            select_readers=True,
            ceilings=self.ceilings,
            read_grant_rules=("cond(1) P>Sysceil", "cond(2) P>=HPW"),
        )
