"""RW-PCP-A — the abortion-strategy variant of the ceiling protocol.

Section 2 of the paper: "Some studies [18,19,21] adopted the abortion
strategy for enhancing the system schedulability and reducing the
transaction blocking time.  While they can reduce the blocking time of
transactions at the expense of abortion and re-execution overheads, they
complicate the system schedulability analysis."

This protocol makes that trade-off concrete on top of RW-PCP's admission
rule: when a request fails the ceiling test and *every* job responsible
has a lower base priority, those jobs are **aborted and restarted** and
the lock is granted, so a higher-priority transaction is never delayed by
a lower-priority one.  When some responsible job has equal or higher base
priority, the requester waits as in RW-PCP (with inheritance).

Updates are deferred to commit (aborts need no undo), which — as with
2PL-HP — leaves the locking behaviour identical to the update-in-place
original because RW-PCP admits no reader concurrent with a writer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.interfaces import AbortAndGrant, Deny, Grant, InstallPolicy
from repro.model.spec import LockMode
from repro.protocols.base import register_protocol
from repro.protocols.rw_pcp import RWPCP

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@register_protocol
class RWPCPAbort(RWPCP):
    """RW-PCP with high-priority abort instead of blocking."""

    name = "rw-pcp-abort"
    install_policy = InstallPolicy.AT_COMMIT
    can_deadlock = False

    def decide(self, job: "Job", item: str, mode: LockMode):
        sysceil, holders = self._sysceil_and_holders(job)
        if job.running_priority > sysceil:
            return Grant("P>Sysceil")
        if holders and all(
            h.base_priority < job.base_priority for h in holders
        ):
            return AbortAndGrant(holders, "ceiling abort: restart lower-priority holders")
        item_holders = self.table.holders_of(item) - {job}
        reason = (
            "conflict blocking: item locked and P <= Sysceil"
            if item_holders
            else "ceiling blocking: P <= Sysceil"
        )
        return Deny(holders, reason)

    def compile_table(self):
        """Object path: the abort branch above diverges from the RW-PCP
        table this class would otherwise inherit."""
        return None
