"""2PL with basic priority inheritance (no ceilings).

This is the protocol the paper's introduction criticises: priority
inheritance bounds each *individual* inversion, but a transaction can still
be blocked by several lower-priority transactions in sequence (chained
blocking), and deadlocks remain possible.  Included as a baseline to make
both defects measurable.

Lock compatibility is classical: readers share; a writer excludes everyone.
On conflict the requester waits and the holders inherit its priority.
Writes are deferred to commit so that deadlock-resolution aborts
(``SimConfig.deadlock_action="abort_lowest"``) need no undo.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.engine.interfaces import ConcurrencyControlProtocol, Deny, Grant, InstallPolicy
from repro.model.spec import LockMode
from repro.protocols.base import register_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


def classical_conflicts(protocol: ConcurrencyControlProtocol, job: "Job",
                        item: str, mode: LockMode) -> Tuple["Job", ...]:
    """Holders of ``item`` that conflict with ``mode`` under classical
    read/write semantics (shared readers, exclusive writer)."""
    if mode is LockMode.READ:
        conflicting = protocol.table.writers_of(item) - {job}
    else:
        conflicting = (
            protocol.table.readers_of(item) | protocol.table.writers_of(item)
        ) - {job}
    return tuple(sorted(conflicting, key=lambda j: j.seq))


@register_protocol
class PIP2PL(ConcurrencyControlProtocol):
    """Two-phase locking with the basic priority inheritance protocol."""

    name = "pip-2pl"
    install_policy = InstallPolicy.AT_COMMIT
    can_deadlock = True

    def decide(self, job: "Job", item: str, mode: LockMode):
        conflicting = classical_conflicts(self, job, item, mode)
        if not conflicting:
            return Grant("compatible")
        return Deny(conflicting, "conflict blocking: classical r/w conflict")
