"""Concurrency-control protocols: PCP-DA's comparators and variants.

Every protocol implements
:class:`repro.engine.interfaces.ConcurrencyControlProtocol` and registers
itself in the name registry, so simulations can be parameterised by a
string (``make_protocol("rw-pcp")``).

Implemented protocols:

========== =====================================================
name        protocol
========== =====================================================
pcp-da      the paper's contribution (:mod:`repro.core.pcp_da`)
rw-pcp      read/write priority ceiling protocol (Sha et al.)
ccp         convex ceiling protocol (Nakazato), early-unlock
pcp         the original single-ceiling, exclusive-lock PCP
pip-2pl     two-phase locking with basic priority inheritance
2pl-hp      two-phase locking with high-priority abort
2pl         plain two-phase locking (no priority management)
ipcp        immediate priority ceiling protocol (ceiling locking)
occ-bc      optimistic concurrency control, broadcast commit
rw-pcp-abort RW-PCP with high-priority abort instead of blocking
pcp-da-checked PCP-DA with the paper's Lemmas 1-6 asserted live
weak-pcp-da PCP-DA with only condition (2) — Example 5's deadlock
========== =====================================================
"""

from repro.protocols.base import available_protocols, make_protocol, register_protocol
from repro.core.pcp_da import PCPDA
from repro.protocols.rw_pcp import RWPCP
from repro.protocols.ccp import CCP
from repro.protocols.original_pcp import OriginalPCP
from repro.protocols.pip_2pl import PIP2PL
from repro.protocols.two_pl_hp import TwoPLHP
from repro.protocols.plain_2pl import Plain2PL
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.protocols.rw_pcp_abort import RWPCPAbort
from repro.protocols.ipcp import IPCP
from repro.protocols.weak_pcp_da import WeakPCPDA

__all__ = [
    "CCP",
    "IPCP",
    "OCCBroadcastCommit",
    "OriginalPCP",
    "PCPDA",
    "PIP2PL",
    "Plain2PL",
    "RWPCP",
    "RWPCPAbort",
    "TwoPLHP",
    "WeakPCPDA",
    "available_protocols",
    "make_protocol",
    "register_protocol",
]
