"""IPCP — the immediate priority ceiling protocol (ceiling locking).

The industrial sibling of the original PCP (POSIX's
``PTHREAD_PRIO_PROTECT``, Ada's Ceiling_Locking): the moment a transaction
locks an item, its priority is *immediately* raised to the item's ceiling
``Aceil(x)``, instead of waiting for someone to actually block (PCP's lazy
inheritance).  Included as a baseline because it achieves the original
PCP's worst-case blocking bound with a strikingly different runtime
signature:

* on a single processor a lock request can **never** be denied — while a
  transaction holds ``x`` it runs at ``>= Aceil(x)``, so any transaction
  that could compete for ``x`` (priority ``<= Aceil(x)``) is simply not
  dispatched;
* consequently the "blocking" of the PCP literature shows up here as
  *dispatch interference* (a just-released high-priority transaction waits
  for the elevated low one to finish its critical section), not as lock
  waits — the run metrics show zero blocking time but the same worst-case
  response times as the original PCP.

Locks are exclusive, as in the original PCP; updates install in place.
The worst-case analysis is the original PCP's (``bts_original_pcp``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.engine.interfaces import Deny, Grant, InstallPolicy
from repro.engine.lock_table import CeilingIndex
from repro.model.spec import DUMMY_PRIORITY, LockMode
from repro.protocols.base import CeilingProtocolBase, register_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.engine.lock_table import LockEntry


@register_protocol
class IPCP(CeilingProtocolBase):
    """Immediate priority ceiling protocol (exclusive ceiling locking)."""

    name = "ipcp"
    install_policy = InstallPolicy.AT_WRITE
    can_deadlock = False
    #: Deadlock freedom rests on ceiling-boosted *dispatching* (see the
    #: module docstring), not on the locking conditions — with truly
    #: concurrent clients (repro.service) conflicting holds do occur and
    #: can cycle, so the service resolves them by victim abort.
    deadlock_free_requires_scheduler = True
    _index_kind = "aceil"

    def __init__(self) -> None:
        super().__init__()
        #: Per-job running maximum of held-lock ceilings (see
        #: :meth:`priority_floor` for why this cache is exact).
        self._floor_of: "Dict[Job, int]" = {}

    def _make_ceiling_index(self) -> CeilingIndex:
        aceil = self.ceilings.aceil

        def level_of(item: str, entry: "LockEntry") -> Optional[int]:
            level = aceil(item)
            return None if level == DUMMY_PRIORITY else level

        return CeilingIndex(self._index_kind, level_of)

    def priority_floor(self, job: "Job") -> int:
        """The job runs at least at the highest ceiling it holds.

        Called for every active job on every priority recomputation, so
        the answer is served from :attr:`_floor_of` — a per-job running
        maximum bumped on every grant and cleared when the job's locks go
        away together.  The cache is exact because IPCP never releases a
        single lock early (no ``after_operation``): a job's held-ceiling
        maximum only grows until ``on_release_all`` resets it.
        """
        return self._floor_of.get(job, DUMMY_PRIORITY)

    def on_granted(self, job: "Job", item: str, mode: LockMode) -> None:
        """Bump the job's cached priority floor to the item's ceiling."""
        level = self.ceilings.aceil(item)
        if level > self._floor_of.get(job, DUMMY_PRIORITY):
            self._floor_of[job] = level

    def on_release_all(self, job: "Job") -> None:
        """Drop the cached floor with the job's last lock."""
        self._floor_of.pop(job, None)

    def decide(self, job: "Job", item: str, mode: LockMode):
        holders = self.table.holders_of(item) - {job}
        if not holders:
            return Grant("ceiling-elevated")
        # Unreachable on a single processor (see module docstring), but a
        # correct answer is required for robustness.
        return Deny(
            tuple(sorted(holders, key=lambda j: j.seq)),
            "conflict blocking: item held (unexpected under IPCP)",
        )

    def system_ceiling(self, exclude: "Job" = None) -> int:
        index = self.table.ceiling_index
        if index is not None and index.kind == self._index_kind:
            excluded = frozenset() if exclude is None else frozenset({exclude})
            level = index.max_level(excluded)
            return DUMMY_PRIORITY if level is None else level
        level = DUMMY_PRIORITY
        for item in self.table.locked_items(exclude=exclude):
            level = max(level, self.ceilings.aceil(item))
        return level

    def compile_table(self):
        """IPCP for the array kernel: grant iff the item is free; the
        ceiling shows up through :meth:`priority_floor` (object-side),
        while the Aceil levels back the ``system_ceiling`` samples."""
        from repro.engine.kernel.tables import (
            FAMILY_IPCP,
            LEVEL_ACEIL,
            ProtocolTable,
        )

        return ProtocolTable(
            protocol=self.name,
            family=FAMILY_IPCP,
            level_source=LEVEL_ACEIL,
            select_readers=False,
            ceilings=self.ceilings,
            read_grant_rules=("ceiling-elevated",),
            conflict_reason="conflict blocking: item held (unexpected under IPCP)",
        )
