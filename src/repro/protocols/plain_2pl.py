"""Plain two-phase locking: no priority management at all.

The null baseline.  A blocked high-priority transaction waits without
boosting anyone, so priority inversion is unbounded — exactly the failure
mode that motivates the whole protocol family.  Deadlocks are possible and
are resolved by the simulator's configured action (recommended:
``deadlock_action="abort_lowest"``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.interfaces import ConcurrencyControlProtocol, Deny, Grant, InstallPolicy
from repro.model.spec import LockMode
from repro.protocols.base import register_protocol
from repro.protocols.pip_2pl import classical_conflicts

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@register_protocol
class Plain2PL(ConcurrencyControlProtocol):
    """Two-phase locking without inheritance, ceilings, or aborts."""

    name = "2pl"
    install_policy = InstallPolicy.AT_COMMIT
    can_deadlock = True

    def decide(self, job: "Job", item: str, mode: LockMode):
        conflicting = classical_conflicts(self, job, item, mode)
        if not conflicting:
            return Grant("compatible")
        return Deny(
            conflicting,
            "conflict blocking: classical r/w conflict (no inheritance)",
            inherit=False,
        )
