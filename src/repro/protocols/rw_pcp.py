"""RW-PCP — the read/write priority ceiling protocol (Sha, Rajkumar, Son,
Chang), the first extension of the original PCP to transactions in hard
RTDBS and the paper's principal comparator.

Rules (paper, Section 3):

* each item has two static ceilings: ``Wceil(x)`` and ``Aceil(x)``;
* at runtime the *r/w priority ceiling* ``rwceil(x)`` is ``Aceil(x)`` while
  ``x`` is write-locked and ``Wceil(x)`` while it is (only) read-locked;
* ``T_i`` may take any lock iff its priority is strictly higher than
  ``Sysceil_i`` — the highest ``rwceil`` among items locked by transactions
  other than ``T_i``;
* on denial, the transaction holding the ceiling-setting item inherits the
  requester's priority;
* two-phase locking: all locks are held until commit.

RW-PCP assumes the update-in-place model; writes are installed when the
write operation executes (which is observationally safe because no other
transaction can hold any lock on a write-locked item).

The combination of the ceiling test and the ceiling definitions subsumes
explicit conflict checks: a write-locked item has ``rwceil = Aceil ≥``
every potential accessor's priority, and a read-locked item has ``rwceil =
Wceil ≥`` every potential writer's priority.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.engine.interfaces import Deny, Grant, InstallPolicy
from repro.engine.lock_table import CeilingIndex
from repro.model.spec import DUMMY_PRIORITY, LockMode
from repro.protocols.base import CeilingProtocolBase, register_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.engine.lock_table import LockEntry


@register_protocol
class RWPCP(CeilingProtocolBase):
    """Read/write priority ceiling protocol."""

    name = "rw-pcp"
    install_policy = InstallPolicy.AT_WRITE
    can_deadlock = False
    _index_kind = "rwceil"

    def _make_ceiling_index(self) -> CeilingIndex:
        aceil = self.ceilings.aceil
        wceil = self.ceilings.wceil

        def level_of(item: str, entry: "LockEntry") -> Optional[int]:
            # The runtime r/w ceiling: Aceil while write-locked, Wceil
            # while (only) read-locked; ceiling-free items drop out.
            level = aceil(item) if entry.writers else wceil(item)
            return None if level == DUMMY_PRIORITY else level

        return CeilingIndex(self._index_kind, level_of)

    # ------------------------------------------------------------------
    # Runtime ceilings
    # ------------------------------------------------------------------
    def rwceil(self, item: str) -> Optional[int]:
        """Current r/w ceiling of ``item``; ``None`` when unlocked."""
        if self.table.writers_of(item):
            return self.ceilings.aceil(item)
        if self.table.readers_of(item):
            return self.ceilings.wceil(item)
        return None

    def _sysceil_and_holders(
        self, exclude: "Optional[Job]"
    ) -> Tuple[int, Tuple["Job", ...]]:
        """``Sysceil`` w.r.t. ``exclude`` and the jobs holding it."""
        fast = self._scan_sysceil_and_holders(exclude)
        if fast is not None:
            return fast
        return self._sysceil_and_holders_rescan(exclude)

    def _sysceil_and_holders_rescan(
        self, exclude: "Optional[Job]"
    ) -> Tuple[int, Tuple["Job", ...]]:
        """From-scratch reference (and no-index fallback) for
        :meth:`_sysceil_and_holders`."""
        level = DUMMY_PRIORITY
        per_item: List[Tuple[str, int]] = []
        for item in self.table.locked_items(exclude=exclude):
            holders = self.table.holders_of(item) - ({exclude} if exclude else set())
            if not holders:
                continue
            # rwceil from the perspective of "locked by others": a write
            # lock by anyone (including exclude) dominates, but the item
            # only counts if someone else holds a lock on it.
            ceil = self.rwceil(item)
            assert ceil is not None
            per_item.append((item, ceil))
            level = max(level, ceil)
        if level == DUMMY_PRIORITY:
            return level, ()
        holders: List["Job"] = []
        for item, ceil in per_item:
            if ceil == level:
                for job in self.table.holders_of(item):
                    if job is not exclude and job not in holders:
                        holders.append(job)
        return level, tuple(sorted(holders, key=lambda j: j.seq))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(self, job: "Job", item: str, mode: LockMode):
        sysceil, holders = self._sysceil_and_holders(job)
        if job.running_priority > sysceil:
            return Grant("P>Sysceil")
        # Classify the blocking for the trace: conflict blocking when the
        # requested item itself is locked by another transaction, ceiling
        # blocking otherwise.
        item_holders = self.table.holders_of(item) - {job}
        if item_holders:
            reason = "conflict blocking: item locked and P <= Sysceil"
        else:
            reason = "ceiling blocking: P <= Sysceil"
        return Deny(holders, reason)

    def system_ceiling(self, exclude: "Optional[Job]" = None) -> int:
        level, _ = self._sysceil_and_holders(exclude)
        return level

    def compile_table(self):
        """RW-PCP for the array kernel: the runtime r/w ceiling (Aceil
        while write-locked, Wceil otherwise) under the P>Sysceil rule.
        CCP inherits this table — its early-unlock hook stays object-side
        and only changes *when* locks are released, not the admission."""
        from repro.engine.kernel.tables import LEVEL_RW

        return self._compile_sysceil_table(
            LEVEL_RW, "conflict blocking: item locked and P <= Sysceil"
        )
