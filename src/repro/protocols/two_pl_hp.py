"""2PL-HP — two-phase locking with high-priority conflict resolution
(Abbott & Garcia-Molina).

The abort-based alternative the paper's Section 2 discusses: on a
conflict, if the requester's priority is higher than *every* conflicting
holder's, the holders are aborted and restarted and the requester proceeds;
otherwise the requester waits.  Priority inversion is avoided without
ceilings, but at the cost of wasted (re-executed) work — and, as the paper
notes, restarts make worst-case schedulability analysis intractable
because the number of restarts of a low-priority transaction is unbounded.

Deadlock-free: a transaction only ever waits for strictly-higher-priority
holders (priorities compared on *base* priority; there is no inheritance in
2PL-HP), so wait-for edges always point up the priority order and cannot
cycle.  Instances of the same transaction share a base priority, but they
request items in identical program order, which also precludes mutual
waiting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.interfaces import (
    AbortAndGrant,
    ConcurrencyControlProtocol,
    Deny,
    Grant,
    InstallPolicy,
)
from repro.model.spec import LockMode
from repro.protocols.base import register_protocol
from repro.protocols.pip_2pl import classical_conflicts

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@register_protocol
class TwoPLHP(ConcurrencyControlProtocol):
    """High-priority two-phase locking (abort-based)."""

    name = "2pl-hp"
    install_policy = InstallPolicy.AT_COMMIT
    can_deadlock = False
    #: The no-deadlock argument (every wait is on a strictly
    #: higher-priority holder) needs a scheduler to serialize
    #: equal-priority instances of the same transaction; with truly
    #: concurrent clients (repro.service) two same-priority instances can
    #: hold-and-wait on each other, so the service resolves such cycles
    #: by victim abort.
    deadlock_free_requires_scheduler = True

    def decide(self, job: "Job", item: str, mode: LockMode):
        conflicting = classical_conflicts(self, job, item, mode)
        if not conflicting:
            return Grant("compatible")
        if all(h.base_priority < job.base_priority for h in conflicting):
            return AbortAndGrant(conflicting, "high-priority abort")
        return Deny(
            conflicting,
            "conflict blocking: waiting for higher-priority holder",
            inherit=False,
        )
