"""The original priority ceiling protocol (Sha, Rajkumar, Lehoczky),
treating every data item as an exclusively-locked resource.

This is the protocol the paper's Section 1/2 positions as the starting
point: deadlock-free, single-blocking, but blind to read/write semantics —
concurrent readers are impossible, so it blocks even more than RW-PCP.
Included as the most conservative baseline of the family.

Rule: one static ceiling per item, ``ceil(x) = Aceil(x)``; ``T_i`` may lock
``x`` (in either mode — both are exclusive here) iff its priority is
strictly higher than the highest ceiling among items locked by other
transactions.  Because ``T_i`` accesses ``x``, ``ceil(x) >= P_i``, so the
ceiling test also subsumes the direct-conflict check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.engine.interfaces import Deny, Grant, InstallPolicy
from repro.engine.lock_table import CeilingIndex
from repro.model.spec import DUMMY_PRIORITY, LockMode
from repro.protocols.base import CeilingProtocolBase, register_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.engine.lock_table import LockEntry


@register_protocol
class OriginalPCP(CeilingProtocolBase):
    """Single-ceiling, exclusive-access PCP."""

    name = "pcp"
    install_policy = InstallPolicy.AT_WRITE
    can_deadlock = False
    _index_kind = "aceil"

    def _make_ceiling_index(self) -> CeilingIndex:
        aceil = self.ceilings.aceil

        def level_of(item: str, entry: "LockEntry") -> Optional[int]:
            level = aceil(item)
            return None if level == DUMMY_PRIORITY else level

        return CeilingIndex(self._index_kind, level_of)

    def _sysceil_and_holders(
        self, exclude: "Optional[Job]"
    ) -> Tuple[int, Tuple["Job", ...]]:
        fast = self._scan_sysceil_and_holders(exclude)
        if fast is not None:
            return fast
        return self._sysceil_and_holders_rescan(exclude)

    def _sysceil_and_holders_rescan(
        self, exclude: "Optional[Job]"
    ) -> Tuple[int, Tuple["Job", ...]]:
        level = DUMMY_PRIORITY
        per_item: List[Tuple[str, int]] = []
        for item in self.table.locked_items(exclude=exclude):
            ceil = self.ceilings.aceil(item)
            per_item.append((item, ceil))
            level = max(level, ceil)
        if level == DUMMY_PRIORITY:
            return level, ()
        holders: List["Job"] = []
        for item, ceil in per_item:
            if ceil == level:
                for job in self.table.holders_of(item):
                    if job is not exclude and job not in holders:
                        holders.append(job)
        return level, tuple(sorted(holders, key=lambda j: j.seq))

    def decide(self, job: "Job", item: str, mode: LockMode):
        sysceil, holders = self._sysceil_and_holders(job)
        if job.running_priority > sysceil:
            return Grant("P>Sysceil")
        item_holders = self.table.holders_of(item) - {job}
        reason = (
            "conflict blocking: item locked (exclusive access)"
            if item_holders
            else "ceiling blocking: P <= Sysceil"
        )
        return Deny(holders, reason)

    def system_ceiling(self, exclude: "Optional[Job]" = None) -> int:
        level, _ = self._sysceil_and_holders(exclude)
        return level

    def compile_table(self):
        """Original PCP for the array kernel: every lock is exclusive and
        raises ``Aceil`` under the P>Sysceil rule."""
        from repro.engine.kernel.tables import LEVEL_ACEIL

        return self._compile_sysceil_table(
            LEVEL_ACEIL, "conflict blocking: item locked (exclusive access)"
        )
