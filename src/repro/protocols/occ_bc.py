"""OCC-BC — optimistic concurrency control with broadcast commit.

The abort-based alternative family the paper's Section 2 points to ([18,
19, 21]): transactions never block — every read and (deferred) write
proceeds against the private workspace — and conflicts are resolved at
commit by *forward validation*: when a transaction commits, every active
transaction that has read an item the committer is about to overwrite is
restarted immediately ("broadcast commit").

Properties, as the paper notes for this family: no priority inversion at
all (nothing ever waits for a lock), serializable histories (equivalent to
the commit order), but re-execution overhead that is unbounded in the
worst case — "some cannot even provide the schedulability analysis since
they cannot bound the number of abortions that a lower priority
transaction may experience".  That trade-off is exactly what the
protocol-comparison benchmark measures against PCP-DA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.engine.interfaces import ConcurrencyControlProtocol, Grant, InstallPolicy
from repro.model.spec import LockMode
from repro.protocols.base import register_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@register_protocol
class OCCBroadcastCommit(ConcurrencyControlProtocol):
    """Forward-validation OCC: never block, abort conflicting readers."""

    name = "occ-bc"
    install_policy = InstallPolicy.AT_COMMIT
    can_deadlock = False

    def decide(self, job: "Job", item: str, mode: LockMode):
        return Grant("optimistic")

    def before_commit(self, job: "Job") -> "Tuple[Job, ...]":
        """Broadcast commit: restart every active transaction whose reads
        intersect the committer's actual (buffered) writes."""
        written = set(job.workspace.pending_writes)
        if not written:
            return ()
        # OCC grants every request, so the lock table's reader sets are
        # exactly "active transactions that read the item".
        victims = []
        seen = set()
        for item in written:
            for reader in self.table.readers_of(item):
                if reader is job or reader in seen:
                    continue
                if not reader.state.active:
                    continue
                if item in reader.data_read:
                    seen.add(reader)
                    victims.append(reader)
        return tuple(sorted(victims, key=lambda j: j.seq))
