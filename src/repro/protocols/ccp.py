"""CCP — the convex ceiling protocol (Nakazato & Son), approximated.

The paper cites CCP as the other ceiling-based comparator: "CCP reduces the
transaction blocking by unlocking the data item with the highest priority
ceiling before the end of the transaction.  It checks the priority ceiling
of those data items to be unlocked when a transaction does not need them
any more.  If the transaction will not lock any data items with a higher
priority ceiling, these data items are unlocked immediately."

Our reconstruction (documented in DESIGN.md §2.5): RW-PCP's admission rule
and runtime ceilings, plus early unlock constrained by the *two-phase*
guard — a lock is released the moment both hold:

1. the transaction has passed its **lock point** (every remaining operation
   already holds the lock it needs), so no future acquisition exists — in
   particular none with a higher priority ceiling, which makes the quoted
   CCP condition hold vacuously; and
2. the item is past its last use in the transaction's program.

The guard is what our property-based fuzzing showed to be necessary: a
literal "no future lock with a higher ceiling" rule (without the two-phase
guard) admits non-serializable histories — a transaction that releases a
read lock and *later* acquires an unrelated lower-ceiling lock can be
serialized both before (rw on the released item) and after (wr/rw on the
later item) a peer, closing a cycle in ``SG(H)``.  With the guard, CCP is
basic (non-strict) two-phase locking and conflict serializability holds by
the classical 2PL theorem, while the highest-ceiling items are still
unlocked before commit — shortening ceiling blockings relative to RW-PCP's
strict 2PL, which is the behaviour the paper attributes to CCP.

Writes remain update-in-place, so an early-released write is visible to
subsequent readers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.engine.interfaces import InstallPolicy
from repro.model.spec import LockMode, OpKind, TransactionSpec
from repro.protocols.base import register_protocol
from repro.protocols.rw_pcp import RWPCP

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


@register_protocol
class CCP(RWPCP):
    """Convex ceiling protocol: RW-PCP admission + post-lock-point unlock."""

    name = "ccp"
    install_policy = InstallPolicy.AT_WRITE
    can_deadlock = False

    def _last_use_index(self, spec: TransactionSpec, item: str) -> int:
        """Index of the last operation of ``spec`` touching ``item``."""
        last = -1
        for idx, op in enumerate(spec.operations):
            if op.item == item:
                last = idx
        return last

    def _past_lock_point(self, job: "Job", op_index: int) -> bool:
        """True when no operation after ``op_index`` needs a lock the job
        does not already hold (the 2PL growing phase is over)."""
        for idx in range(op_index + 1, len(job.spec.operations)):
            op = job.spec.operations[idx]
            mode = op.lock_mode
            if mode is None:
                continue
            assert op.item is not None
            if self.table.holds(job, op.item, mode):
                continue
            if mode is LockMode.READ and self.table.holds(
                job, op.item, LockMode.WRITE
            ):
                continue  # read satisfiable under the held write lock
            return False
        return True

    def after_operation(
        self, job: "Job", op_index: int
    ) -> Tuple[Tuple[str, LockMode], ...]:
        """Early-unlock decision after ``job`` finished operation ``op_index``."""
        if not self._past_lock_point(job, op_index):
            return ()
        releases: List[Tuple[str, LockMode]] = []
        for item, modes in sorted(self.table.items_held_by(job).items()):
            if self._last_use_index(job.spec, item) > op_index:
                continue  # still needed later
            for mode in sorted(modes, key=lambda m: m.value):
                releases.append((item, mode))
        return tuple(releases)
