"""Protocol registry and shared helpers for ceiling-based baselines."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Type

from repro.core.ceilings import CeilingTable
from repro.engine.interfaces import ConcurrencyControlProtocol
from repro.engine.lock_table import CeilingIndex
from repro.exceptions import ProtocolError, UnknownProtocolError
from repro.model.spec import DUMMY_PRIORITY, LockMode, TaskSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job
    from repro.engine.lock_table import LockTable

_REGISTRY: Dict[str, Callable[[], ConcurrencyControlProtocol]] = {}


def register_protocol(
    cls: Type[ConcurrencyControlProtocol],
) -> Type[ConcurrencyControlProtocol]:
    """Class decorator: register ``cls`` under its ``name`` attribute."""
    if not cls.name:
        raise ProtocolError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY:
        raise ProtocolError(f"protocol name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def make_protocol(name: str, **kwargs) -> ConcurrencyControlProtocol:
    """Instantiate a registered protocol by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownProtocolError(name, tuple(sorted(_REGISTRY))) from None
    return factory(**kwargs)


def available_protocols() -> Tuple[str, ...]:
    """Registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


class CeilingProtocolBase(ConcurrencyControlProtocol):
    """Shared machinery for protocols that use static ceiling tables."""

    #: Kind tag of the :class:`CeilingIndex` this protocol's ``Sysceil``
    #: queries can be answered from (``None``: no index acceleration).
    #: The tag guards against fast-pathing an index with the *wrong*
    #: level semantics — only the protocol family that attached an index
    #: of its own kind will consult it.
    _index_kind: Optional[str] = None

    def __init__(self) -> None:
        super().__init__()
        self._ceilings: Optional[CeilingTable] = None

    def bind(self, taskset: TaskSet, table: "LockTable") -> None:
        super().bind(taskset, table)
        self._ceilings = CeilingTable(taskset)
        index = self._make_ceiling_index()
        if index is not None:
            table.attach_ceiling_index(index)

    @property
    def ceilings(self) -> CeilingTable:
        assert self._ceilings is not None, "protocol used before bind()"
        return self._ceilings

    def _make_ceiling_index(self) -> Optional[CeilingIndex]:
        """Build this protocol's incremental ceiling index (``None`` when
        the protocol has no ceiling queries worth accelerating)."""
        return None

    # ------------------------------------------------------------------
    # Array-kernel compilation
    # ------------------------------------------------------------------
    def _compile_sysceil_table(
        self, level_source: int, conflict_reason: str
    ):
        """Shared ``compile_table()`` body for the P>Sysceil family
        (RW-PCP, CCP, original PCP): only the level semantics and the
        conflict-denial text differ between them."""
        from repro.engine.kernel.tables import FAMILY_SYSCEIL, ProtocolTable

        return ProtocolTable(
            protocol=self.name,
            family=FAMILY_SYSCEIL,
            level_source=level_source,
            select_readers=False,
            ceilings=self.ceilings,
            read_grant_rules=("P>Sysceil",),
            conflict_reason=conflict_reason,
            ceiling_reason="ceiling blocking: P <= Sysceil",
        )

    def _scan_sysceil_and_holders(
        self, exclude: "Optional[Job]"
    ) -> Optional[Tuple[int, Tuple["Job", ...]]]:
        """``(Sysceil, holders)`` answered from the attached index, or
        ``None`` when no index of this protocol's kind is attached
        (callers then fall back to their from-scratch rescan)."""
        index = self.table.ceiling_index
        if index is None or index.kind != self._index_kind:
            return None
        excluded = frozenset() if exclude is None else frozenset({exclude})
        level, items = index.scan(excluded)
        if level is None:
            return DUMMY_PRIORITY, ()
        # Membership via a set: the ``job not in holders`` list scan this
        # replaces was quadratic in the holder count.
        seen: "set" = set()
        holders: "List[Job]" = []
        for item in items:
            for job in self.table.holders_of(item):
                if job is not exclude and job not in seen:
                    seen.add(job)
                    holders.append(job)
        return level, tuple(sorted(holders, key=lambda j: j.seq))


# Register PCP-DA here (its module lives in repro.core and must not import
# the registry, to keep core free of protocol-package dependencies).
from repro.core.pcp_da import PCPDA  # noqa: E402  (import placement intended)

register_protocol(PCPDA)
