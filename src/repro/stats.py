"""Batch experiment helpers: seeded sweeps with summary statistics.

The benchmarks and example scripts all follow the same pattern — run many
seeded workloads under several protocols and aggregate a few metrics.
This module factors that pattern into one reusable runner:

    rows = run_batch(
        protocols=["pcp-da", "rw-pcp"],
        workloads=[WorkloadConfig(seed=s, target_utilization=0.6)
                   for s in range(20)],
    )
    table = summarize(rows, by=("protocol",), metric="total_blocking_time")

plus small, dependency-free summary statistics (mean, standard deviation,
and a normal-approximation confidence interval — fine at the sample sizes
the harness uses).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.workloads.generator import WorkloadConfig, generate_taskset


@dataclass(frozen=True)
class BatchRow:
    """One (workload, protocol) simulation outcome."""

    protocol: str
    seed: int
    utilization: float
    total_blocking_time: float
    max_blocking_time: float
    miss_ratio: float
    restarts: int
    mean_response_time: Optional[float]

    def metric(self, name: str) -> float:
        """Look a metric field up by name (KeyError when unavailable)."""
        value = getattr(self, name)
        if value is None:
            raise KeyError(f"metric {name!r} is unavailable on this row")
        return float(value)


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one metric over one group."""

    n: int
    mean: float
    stdev: float
    ci95_half_width: float

    @property
    def ci95(self) -> Tuple[float, float]:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def render(self) -> str:
        """``mean ± ci (n=..)`` one-liner."""
        return f"{self.mean:.3f} ± {self.ci95_half_width:.3f} (n={self.n})"


def summarize_values(values: Sequence[float]) -> Summary:
    """Mean / stdev / 95% CI (normal approximation) of a sample."""
    n = len(values)
    if n == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = statistics.mean(values)
    stdev = statistics.stdev(values) if n > 1 else 0.0
    half_width = 1.96 * stdev / math.sqrt(n) if n > 1 else 0.0
    return Summary(n=n, mean=mean, stdev=stdev, ci95_half_width=half_width)


def _batch_rows_for_workload(unit) -> List["BatchRow"]:
    """All protocol rows of one workload: ``(workload, protocols, config)``.

    Module-level (hence picklable) so :func:`run_batch` can fan workloads
    across a process pool.  One workload is the unit of parallelism — the
    generated task set is reused across protocols within the worker, so
    comparisons stay paired exactly as in the serial path.
    """
    workload, protocols, sim_config = unit
    taskset = generate_taskset(workload)
    rows: List[BatchRow] = []
    for protocol in protocols:
        result = Simulator(
            taskset, make_protocol(protocol), sim_config
        ).run()
        metrics = compute_metrics(result)
        rows.append(
            BatchRow(
                protocol=protocol,
                seed=workload.seed,
                utilization=taskset.total_utilization(),
                total_blocking_time=metrics.total_blocking_time,
                max_blocking_time=metrics.max_blocking_time,
                miss_ratio=metrics.miss_ratio,
                restarts=metrics.total_restarts,
                mean_response_time=metrics.mean_response_time,
            )
        )
    return rows


def run_batch(
    protocols: Sequence[str],
    workloads: Sequence[WorkloadConfig],
    *,
    config: Optional[SimConfig] = None,
    jobs: int = 1,
    retry=None,
) -> List[BatchRow]:
    """Simulate every workload under every protocol.

    The same generated task set is reused across protocols for each seed,
    so comparisons are paired.  ``jobs`` fans workloads across worker
    processes (each worker runs all protocols for its workload, keeping
    the pairing); row order and content are identical for every ``jobs``
    value because every simulation is deterministic.  ``retry`` (a
    :class:`~repro.experiments.retry.RetryPolicy`) adds per-workload
    timeouts and bounded retries for long unattended sweeps — identical
    rows, fault-tolerant wall clock.
    """
    # Imported lazily: repro.experiments.parallel imports this module.
    from repro.experiments.parallel import parallel_map

    sim_config = config or SimConfig(deadlock_action="abort_lowest")
    units = [(workload, tuple(protocols), sim_config) for workload in workloads]
    per_workload = parallel_map(
        _batch_rows_for_workload, units, jobs=jobs, retry=retry
    )
    return [row for rows in per_workload for row in rows]


def summarize(
    rows: Iterable[BatchRow],
    *,
    metric: str,
    by: Sequence[str] = ("protocol",),
) -> Dict[Tuple, Summary]:
    """Group rows by the given fields and summarise one metric per group."""
    groups: Dict[Tuple, List[float]] = {}
    for row in rows:
        key = tuple(getattr(row, field_name) for field_name in by)
        groups.setdefault(key, []).append(row.metric(metric))
    return {key: summarize_values(values) for key, values in groups.items()}


def paired_difference(
    rows: Iterable[BatchRow],
    *,
    metric: str,
    baseline: str,
    contender: str,
) -> Summary:
    """Per-seed paired differences ``baseline - contender`` of a metric.

    A positive mean means the contender improves on the baseline.  Pairing
    by seed removes the across-workload variance that would otherwise
    swamp the comparison.
    """
    per_seed: Dict[int, Dict[str, float]] = {}
    for row in rows:
        per_seed.setdefault(row.seed, {})[row.protocol] = row.metric(metric)
    diffs = [
        values[baseline] - values[contender]
        for values in per_seed.values()
        if baseline in values and contender in values
    ]
    if not diffs:
        raise ValueError(
            f"no seeds carry both {baseline!r} and {contender!r} rows"
        )
    return summarize_values(diffs)
