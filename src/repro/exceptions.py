"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Simulation-level anomalies that are *detected
conditions* rather than programming errors (deadlock, deadline overrun with a
strict policy) have their own subclasses carrying structured context.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SpecificationError(ReproError):
    """A transaction specification or task set is malformed.

    Raised during validation, e.g. for a non-positive period, an operation
    with a negative duration, duplicate transaction names, or a priority
    assignment that is not a total order.
    """


class ProtocolError(ReproError):
    """A concurrency-control protocol was used incorrectly.

    Examples: releasing a lock that is not held, registering two protocols
    with the same name, or a protocol returning an inconsistent decision.
    """


class UnknownProtocolError(ProtocolError):
    """Lookup of a protocol name in the registry failed."""

    def __init__(self, name: str, available: "tuple[str, ...]" = ()) -> None:
        self.name = name
        self.available = tuple(available)
        msg = f"unknown protocol {name!r}"
        if self.available:
            msg += f"; available: {', '.join(self.available)}"
        super().__init__(msg)


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class DeadlockError(SimulationError):
    """A deadlock (cycle in the wait-for graph) was detected.

    Only protocols outside PCP-DA's guarantees can raise this (e.g. plain
    2PL, or the deliberately weakened variant from the paper's Example 5).

    Attributes:
        cycle: the job names forming the wait-for cycle, in order.
        time: simulation time at which the cycle was detected.
    """

    def __init__(self, cycle, time: float) -> None:
        self.cycle = tuple(cycle)
        self.time = time
        names = " -> ".join(self.cycle + (self.cycle[0],)) if self.cycle else "?"
        super().__init__(f"deadlock detected at t={time}: {names}")


class SerializationViolation(ReproError):
    """A committed history failed the conflict-serializability check.

    Attributes:
        cycle: transaction names forming a cycle in the serialization graph.
    """

    def __init__(self, cycle) -> None:
        self.cycle = tuple(cycle)
        names = " -> ".join(self.cycle + (self.cycle[0],)) if self.cycle else "?"
        super().__init__(f"serialization graph contains a cycle: {names}")


class InvariantViolation(ReproError):
    """A protocol invariant asserted by the paper was violated at runtime.

    Used by the verification oracles in :mod:`repro.verify` — e.g. the
    single-blocking property (Theorem 1) or the no-restart guarantee of
    PCP-DA.
    """


class AnalysisError(ReproError):
    """Schedulability analysis was asked an ill-posed question."""


class FaultSpecError(ReproError):
    """A fault-injection spec is malformed or targets an unknown job.

    Raised by :meth:`repro.experiments.faults.FaultPlan.parse` and
    ``FaultPlan.resolve`` so the CLI can turn a bad ``--inject-faults``
    string into a clean one-line error instead of a traceback.
    """


class SweepResumeError(ReproError):
    """A sweep cannot be resumed from its on-disk manifest.

    Raised when ``--resume`` is requested but the manifest is missing,
    unreadable, or was written for a different job batch (stale), or when
    resuming without the result cache that holds the completed reports.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the live lock-manager service.

    Every service error carries a stable ``kind`` string that the wire
    protocol ships to remote clients, so the TCP transport can re-raise the
    matching exception class on the client side (see
    :mod:`repro.service.wire`).
    """

    kind = "service"


class AdmissionError(ServiceError):
    """The service refused to open a session (backpressure).

    Raised when the configured ``max_sessions`` limit is reached; clients
    are expected to back off and retry (docs/SERVICE.md, "Admission and
    backpressure").
    """

    kind = "admission"


class SessionStateError(ServiceError):
    """An operation was issued against a session in the wrong state.

    Examples: reading on a committed session, committing twice, issuing a
    second operation while one is still waiting for a lock, or touching a
    data item outside the transaction's declared access sets.
    """

    kind = "session-state"


class TransactionAborted(ServiceError):
    """The session's transaction was aborted by the service.

    Carries the reason ("deadlock", "validation", "shutdown", ...).  The
    client may open a fresh session and retry; PCP-DA itself never aborts
    (zero restarts), so under ``--protocol pcp-da`` this surfaces only for
    explicit client aborts and service shutdown.
    """

    kind = "aborted"


class DeadlineExceeded(ServiceError):
    """A session overran its deadline and was aborted by the service.

    The service enforces firm deadlines: an expired session is aborted at
    its next operation boundary (or while waiting in the grant queue), its
    locks released and its workspace discarded — mirroring the simulator's
    ``on_miss="abort"`` policy.
    """

    kind = "deadline"


class ProtocolVersionError(ServiceError):
    """The client and server speak incompatible wire-protocol eras.

    Raised by the ``hello`` negotiation when the major versions differ —
    e.g. a ``repro-service/1`` client against an event-frame-capable
    ``repro-service/2`` shard host.  The message names both versions so
    operators know which side to upgrade.
    """

    kind = "version"
