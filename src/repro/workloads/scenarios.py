"""Canonical micro-scenarios: named access patterns for tests and docs.

Each scenario is a small task-set builder exhibiting one qualitative
locking situation.  The protocol conformance kit runs all of them against
every protocol; they are exported here so users developing a new protocol
can smoke-test it against the same patterns
(``for name, build in all_scenarios().items(): simulate(build(), ...)``).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, compute, read, write


def upgrade_scenario() -> TaskSet:
    """Two transactions that each read-then-write the same item (lock
    upgrades under contention)."""
    return assign_by_order([
        TransactionSpec("H", (read("z", 1.0), write("z", 1.0)), offset=1.0),
        TransactionSpec("L", (read("z", 1.0), write("z", 1.0)), offset=0.0),
    ])


def zero_duration_scenario() -> TaskSet:
    """Zero-length data operations (lock/unlock without CPU demand)."""
    return assign_by_order([
        TransactionSpec("H", (read("a", 0.0), compute(1.0)), offset=0.5),
        TransactionSpec("L", (write("a", 0.0), compute(2.0)), offset=0.0),
    ])


def same_item_storm_scenario() -> TaskSet:
    """Three transactions hammering one item in mixed modes."""
    return assign_by_order([
        TransactionSpec("T1", (read("a", 1.0), write("a", 1.0)), offset=2.0),
        TransactionSpec("T2", (write("a", 1.0), read("a", 1.0)), offset=1.0),
        TransactionSpec("T3", (read("a", 2.0),), offset=0.0),
    ])


def disjoint_items_scenario() -> TaskSet:
    """No sharing at all: a protocol must add zero blocking here."""
    return assign_by_order([
        TransactionSpec("T1", (read("a", 1.0), write("b", 1.0)), offset=0.0),
        TransactionSpec("T2", (read("c", 1.0), write("d", 1.0)), offset=0.5),
    ])


def crossed_pattern_scenario() -> TaskSet:
    """The Example 5 shape: H reads what L writes and vice versa — the
    classic deadlock seed."""
    return assign_by_order([
        TransactionSpec("H", (read("y", 1.0), write("x", 1.0)), offset=1.0),
        TransactionSpec("L", (read("x", 2.0), write("y", 1.0)), offset=0.0),
    ])


def chain_scenario() -> TaskSet:
    """A four-link read-write chain (chained-blocking bait for PIP-2PL)."""
    return assign_by_order([
        TransactionSpec("T1", (read("a", 1.0),), offset=3.0),
        TransactionSpec("T2", (read("a", 1.0), write("b", 1.0)), offset=2.0),
        TransactionSpec("T3", (read("b", 1.0), write("c", 1.0)), offset=1.0),
        TransactionSpec("T4", (read("c", 1.0), write("a", 1.0)), offset=0.0),
    ])


def convoy_scenario() -> TaskSet:
    """Many readers of one hot item released back to back."""
    return assign_by_order([
        TransactionSpec(f"R{i}", (read("hot", 1.0), compute(0.5)),
                        offset=float(i) * 0.5)
        for i in range(5)
    ] + [
        TransactionSpec("W", (write("hot", 1.0),), offset=2.25),
    ])


def all_scenarios() -> Dict[str, Callable[[], TaskSet]]:
    """Name -> builder for every canonical scenario."""
    return {
        "upgrade": upgrade_scenario,
        "zero_duration": zero_duration_scenario,
        "same_item_storm": same_item_storm_scenario,
        "disjoint_items": disjoint_items_scenario,
        "crossed_pattern": crossed_pattern_scenario,
        "chain": chain_scenario,
        "convoy": convoy_scenario,
    }
