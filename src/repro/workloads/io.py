"""Task-set serialisation: define workloads in JSON files.

The format is a direct mirror of :class:`~repro.model.spec.TransactionSpec`::

    {
      "transactions": [
        {
          "name": "T1",
          "priority": 2,            // optional if "priority_policy" is set
          "period": 5.0,            // optional (one-shot when absent)
          "offset": 1.0,
          "deadline": null,
          "operations": [
            {"op": "read",    "item": "x", "duration": 1.0},
            {"op": "compute", "duration": 2.0},
            {"op": "write",   "item": "y", "duration": 1.0}
          ]
        }
      ],
      "priority_policy": "rate-monotonic"   // or "by-order" or "explicit"
    }

``load_taskset`` / ``dump_taskset`` round-trip exactly; the CLI's
``simulate`` command consumes the same format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.exceptions import SpecificationError
from repro.model.priorities import assign_by_order, assign_rate_monotonic
from repro.model.spec import (
    OpKind,
    Operation,
    TaskSet,
    TransactionSpec,
    compute,
    read,
    write,
)

_POLICIES = ("explicit", "by-order", "rate-monotonic")


def _operation_from_dict(entry: Dict[str, Any], context: str) -> Operation:
    try:
        op = entry["op"]
    except KeyError:
        raise SpecificationError(f"{context}: operation missing 'op' field") from None
    duration = float(entry.get("duration", 1.0))
    if op == "read":
        return read(str(entry["item"]), duration)
    if op == "write":
        return write(str(entry["item"]), duration)
    if op == "compute":
        return compute(duration)
    raise SpecificationError(f"{context}: unknown operation kind {op!r}")


def _operation_to_dict(op: Operation) -> Dict[str, Any]:
    out: Dict[str, Any] = {"op": op.kind.value, "duration": op.duration}
    if op.item is not None:
        out["item"] = op.item
    return out


def taskset_from_dict(doc: Dict[str, Any]) -> TaskSet:
    """Build a :class:`TaskSet` from a parsed JSON document."""
    try:
        entries: List[Dict[str, Any]] = doc["transactions"]
    except (KeyError, TypeError):
        raise SpecificationError("document must contain a 'transactions' list") from None
    policy = doc.get("priority_policy", "explicit")
    if policy not in _POLICIES:
        raise SpecificationError(
            f"unknown priority_policy {policy!r}; choose from {_POLICIES}"
        )

    specs = []
    for entry in entries:
        name = str(entry.get("name", ""))
        context = f"transaction {name or '<unnamed>'}"
        ops = tuple(
            _operation_from_dict(op_entry, context)
            for op_entry in entry.get("operations", ())
        )
        priority = entry.get("priority")
        if policy != "explicit" and priority is not None:
            raise SpecificationError(
                f"{context}: explicit priority conflicts with "
                f"priority_policy={policy!r}"
            )
        specs.append(
            TransactionSpec(
                name=name,
                operations=ops,
                priority=int(priority) if priority is not None else None,
                period=(
                    float(entry["period"]) if entry.get("period") is not None else None
                ),
                offset=float(entry.get("offset", 0.0)),
                deadline=(
                    float(entry["deadline"])
                    if entry.get("deadline") is not None
                    else None
                ),
            )
        )

    if policy == "by-order":
        return assign_by_order(specs)
    taskset = TaskSet(specs)
    if policy == "rate-monotonic":
        return assign_rate_monotonic(taskset)
    if not taskset.has_priorities:
        raise SpecificationError(
            "priority_policy='explicit' requires a priority on every transaction"
        )
    return taskset


def taskset_to_dict(taskset: TaskSet) -> Dict[str, Any]:
    """Serialise a task set (always with explicit priorities)."""
    return {
        "priority_policy": "explicit",
        "transactions": [
            {
                "name": spec.name,
                "priority": spec.priority,
                "period": spec.period,
                "offset": spec.offset,
                "deadline": spec.deadline,
                "operations": [_operation_to_dict(op) for op in spec.operations],
            }
            for spec in taskset
        ],
    }


def load_taskset(path: str) -> TaskSet:
    """Load a task set from a JSON file."""
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SpecificationError(f"{path}: invalid JSON ({exc})") from exc
    return taskset_from_dict(doc)


def dump_taskset(taskset: TaskSet, path: str) -> None:
    """Write a task set to a JSON file (round-trips with :func:`load_taskset`)."""
    with open(path, "w") as handle:
        json.dump(taskset_to_dict(taskset), handle, indent=2)
        handle.write("\n")
