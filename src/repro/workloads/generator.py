"""Random periodic transaction-set generation.

Used by the Section 9 schedulability experiments and the protocol
comparison benchmarks.  The generator mirrors the paper's transaction
model: periodic transactions with rate-monotonic priorities over a
memory-resident database, each transaction a straight-line sequence of
read/write/compute operations with a statically declared access set.

Generation is fully deterministic given the config's ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import SpecificationError
from repro.model.priorities import assign_rate_monotonic
from repro.model.spec import Operation, TaskSet, TransactionSpec, compute, read, write


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a random workload.

    Attributes:
        n_transactions: number of periodic transactions.
        n_items: database size (items are named ``d0..d{n-1}``).
        ops_per_txn: inclusive range of data operations per transaction.
        write_probability: chance each data operation is a write.
        op_duration: inclusive range of each operation's CPU time (integer
            grid; the periods are integral so hyperperiods stay finite).
        period_choices: candidate periods (sampled per transaction).  The
            defaults are harmonic-ish values that keep hyperperiods small.
        target_utilization: when set, operation durations are scaled so the
            set's total utilisation approximates it (still on the integer
            grid when possible).
        compute_fraction: chance of inserting a pure-compute operation
            between data operations.
        rmw_probability: chance a write is preceded by a read of the same
            item (a read-modify-write pair, exercising lock upgrades).
        hot_fraction: fraction of the database treated as a hot set.
        hot_access_probability: chance a data operation touches the hot set
            (data contention knob).
        seed: PRNG seed.
    """

    n_transactions: int = 5
    n_items: int = 10
    ops_per_txn: Tuple[int, int] = (2, 4)
    write_probability: float = 0.3
    op_duration: Tuple[float, float] = (1.0, 2.0)
    period_choices: Tuple[float, ...] = (40.0, 80.0, 120.0, 160.0, 240.0, 480.0)
    target_utilization: Optional[float] = None
    compute_fraction: float = 0.25
    rmw_probability: float = 0.0
    hot_fraction: float = 0.2
    hot_access_probability: float = 0.5
    seed: int = 0

    def fingerprint(self) -> str:
        """Stable identity string covering every generation parameter.

        Two configs with equal fingerprints generate identical task sets
        (generation is pure in the config), so the string is safe to use
        as cache-key material for sweep results
        (:func:`repro.experiments.cache.spec_key` ``params``).
        """
        fields = (
            self.n_transactions, self.n_items, self.ops_per_txn,
            self.write_probability, self.op_duration, self.period_choices,
            self.target_utilization, self.compute_fraction,
            self.rmw_probability, self.hot_fraction,
            self.hot_access_probability, self.seed,
        )
        return "workload:" + repr(fields)

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise SpecificationError("need at least one transaction")
        if self.n_items < 1:
            raise SpecificationError("need at least one data item")
        lo, hi = self.ops_per_txn
        if not (1 <= lo <= hi):
            raise SpecificationError("ops_per_txn must satisfy 1 <= lo <= hi")
        if not (0.0 <= self.write_probability <= 1.0):
            raise SpecificationError("write_probability must be in [0, 1]")
        if not (0.0 <= self.rmw_probability <= 1.0):
            raise SpecificationError("rmw_probability must be in [0, 1]")
        if self.target_utilization is not None and self.target_utilization <= 0:
            raise SpecificationError("target_utilization must be positive")


def _pick_item(rng: random.Random, config: WorkloadConfig) -> str:
    """Sample an item, biased toward the hot set."""
    n_hot = max(1, int(config.n_items * config.hot_fraction))
    if rng.random() < config.hot_access_probability:
        idx = rng.randrange(n_hot)
    else:
        idx = rng.randrange(config.n_items)
    return f"d{idx}"


def _random_operations(
    rng: random.Random, config: WorkloadConfig
) -> List[Operation]:
    lo, hi = config.ops_per_txn
    n_data_ops = rng.randint(lo, hi)
    dur_lo, dur_hi = config.op_duration
    ops: List[Operation] = []
    touched_write: set = set()
    touched_read: set = set()
    for _ in range(n_data_ops):
        if ops and rng.random() < config.compute_fraction:
            ops.append(compute(rng.uniform(dur_lo, dur_hi)))
        item = _pick_item(rng, config)
        duration = rng.uniform(dur_lo, dur_hi)
        if rng.random() < config.write_probability:
            if item in touched_write:
                continue  # one write per item is enough
            touched_write.add(item)
            if (
                item not in touched_read
                and rng.random() < config.rmw_probability
            ):
                # Read-modify-write: the read precedes the write, so the
                # transaction performs a lock upgrade on the item.
                touched_read.add(item)
                ops.append(read(item, rng.uniform(dur_lo, dur_hi)))
            ops.append(write(item, duration))
        else:
            if item in touched_read or item in touched_write:
                continue  # re-reads add nothing under lock-until-commit
            touched_read.add(item)
            ops.append(read(item, duration))
    if not ops:
        ops.append(read(_pick_item(rng, config), rng.uniform(dur_lo, dur_hi)))
    return ops


def generate_taskset(config: WorkloadConfig) -> TaskSet:
    """Generate a rate-monotonic periodic task set per ``config``."""
    rng = random.Random(config.seed)
    specs: List[TransactionSpec] = []
    periods = sorted(
        rng.choice(config.period_choices) for _ in range(config.n_transactions)
    )
    for i, period in enumerate(periods):
        ops = _random_operations(rng, config)
        specs.append(
            TransactionSpec(
                name=f"T{i + 1}",
                operations=tuple(ops),
                period=period,
                offset=0.0,
            )
        )
    taskset = assign_rate_monotonic(TaskSet(specs))

    if config.target_utilization is not None:
        current = taskset.total_utilization()
        if current <= 0:
            raise SpecificationError("generated set has zero utilisation")
        factor = config.target_utilization / current
        taskset = taskset.scaled(factor)
        # Scaling can push a C_i past its period; clamp by rescaling down.
        worst = max(s.execution_time / s.period for s in taskset)  # type: ignore[operator]
        if worst > 0.95:
            taskset = taskset.scaled(0.95 / worst)
    return taskset
