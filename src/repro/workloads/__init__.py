"""Workloads: the paper's worked examples and a parametric generator.

* :mod:`repro.workloads.examples` — Examples 1, 3, 4, 5 from the paper,
  encoded with the arrival times and operation durations that reproduce
  Figures 1-5 (the reconstruction of the durations is documented in
  DESIGN.md §2);
* :mod:`repro.workloads.generator` — random periodic transaction sets over
  a synthetic database, parameterised by size, utilisation, and read/write
  mix, for the Section 9 schedulability experiments and the protocol
  comparison benchmarks.
"""

from repro.workloads.examples import (
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset
from repro.workloads.io import (
    dump_taskset,
    load_taskset,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.workloads.open_system import (
    OpenSystemConfig,
    generate_open_system,
    offered_load,
)
from repro.workloads.scenarios import all_scenarios

__all__ = [
    "OpenSystemConfig",
    "WorkloadConfig",
    "all_scenarios",
    "dump_taskset",
    "example1_taskset",
    "example3_taskset",
    "example4_taskset",
    "example5_taskset",
    "generate_open_system",
    "generate_taskset",
    "load_taskset",
    "offered_load",
    "taskset_from_dict",
    "taskset_to_dict",
]
