"""The paper's worked examples as ready-to-simulate task sets.

Arrival times come straight from the paper's narration; operation durations
are reconstructed so that the narrated timelines are reproduced exactly
under both PCP-DA and RW-PCP (DESIGN.md §2 records the reconstruction).
All examples use explicit priorities in the paper's convention —
``T_1`` highest — via :func:`repro.model.priorities.assign_by_order`.
"""

from __future__ import annotations

from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, compute, read, write


def example1_taskset() -> TaskSet:
    """Example 1 (Section 3; Figure 1).

    Three one-shot transactions, descending priority T1 > T2 > T3::

        T1: Read(x)   arrives t=2, C=1
        T2: Read(y)   arrives t=1, C=1
        T3: Write(x)  arrives t=0, C=3

    Under RW-PCP, ``Aceil(x) = P1`` so once T3 write-locks x: T2 suffers a
    *ceiling blocking* at t=1 (y is free!) and T1 a *conflict blocking* at
    t=2; both wait until T3 completes at t=3.  Under PCP-DA neither blocks.
    """
    t1 = TransactionSpec("T1", (read("x", 1.0),), offset=2.0)
    t2 = TransactionSpec("T2", (read("y", 1.0),), offset=1.0)
    t3 = TransactionSpec("T3", (write("x", 1.0), compute(2.0)), offset=0.0)
    return assign_by_order([t1, t2, t3])


def example3_taskset() -> TaskSet:
    """Example 3 (Section 6; Figures 2 and 3).

    Two transactions, T1 higher priority::

        T1: Read(x), Read(y)          period 5, first arrival t=1, C=2
        T2: Write(x) ... Write(y)     one-shot, arrival t=0, C=5
                                      (Wlock x at offset 0, Wlock y at 3)

    ``Wceil(x) = Wceil(y) = P2``.  Under PCP-DA T1 is never blocked
    (completions at 3 and 8; T2 at 9).  Under RW-PCP T1's first instance is
    conflict-blocked from t=1 until T2 completes at t=5 and misses its
    deadline at t=6.
    """
    t1 = TransactionSpec(
        "T1", (read("x", 1.0), read("y", 1.0)), period=5.0, offset=1.0
    )
    t2 = TransactionSpec(
        "T2", (write("x", 1.0), compute(2.0), write("y", 2.0)), offset=0.0
    )
    return assign_by_order([t1, t2])


def example4_taskset() -> TaskSet:
    """Example 4 (Section 6; Figures 4 and 5).

    Four one-shot transactions, descending priority T1 > T2 > T3 > T4::

        T1: Read(x)             arrives t=4, C=2
        T2: Write(y)            arrives t=9, C=2
        T3: Read(z), Write(z)   arrives t=1, C=2
        T4: Read(y), Write(x)   arrives t=0, C=5 (Wlock x at offset 1)

    ``Wceil(x) = P1``, ``Wceil(y) = P2``, ``Wceil(z) = P3``.  Under PCP-DA
    T3 read-locks z at t=1 through **LC4** (T* = T4, z ∉ WriteSet(T4)) and
    T1 read-locks the write-locked x at t=4 through **LC2**; nobody blocks,
    and the global ceiling never exceeds P2 (dummy again after t=9).  Under
    RW-PCP T3 is ceiling-blocked for 4 units and T1 conflict-blocked for 1,
    and the global ceiling reaches P1.
    """
    t1 = TransactionSpec("T1", (read("x", 1.0), compute(1.0)), offset=4.0)
    t2 = TransactionSpec("T2", (write("y", 1.0), compute(1.0)), offset=9.0)
    t3 = TransactionSpec("T3", (read("z", 1.0), write("z", 1.0)), offset=1.0)
    t4 = TransactionSpec(
        "T4", (read("y", 1.0), write("x", 1.0), compute(3.0)), offset=0.0
    )
    return assign_by_order([t1, t2, t3, t4])


def example5_taskset() -> TaskSet:
    """Example 5 (Section 7): the deadlock under naive condition (2).

    Two one-shot transactions, T_H higher priority::

        T_L: Read(x), Write(y)   arrives t=0
        T_H: Read(y), Write(x)   arrives t=1

    ``Wceil(x) = P_H``, ``Wceil(y) = P_L``.  T_L's read runs for 2 units so
    that T_H arrives while T_L holds *only* the read lock on x, as the
    example requires.  Under the weakened protocol
    (:class:`repro.protocols.weak_pcp_da.WeakPCPDA`): T_L read-locks x
    (condition 1), T_H preempts and read-locks y (condition 2), T_H blocks
    writing x (read-locked by T_L), T_L inherits, resumes, and blocks
    writing y (read-locked by T_H) — deadlock.  Real PCP-DA denies T_H's
    read of y instead (LC3 fails: y ∈ WriteSet(T*) with T* = T_L; LC4
    fails: P_H ≠ HPW(y)) and no deadlock occurs.
    """
    th = TransactionSpec("TH", (read("y", 1.0), write("x", 1.0)), offset=1.0)
    tl = TransactionSpec("TL", (read("x", 2.0), write("y", 1.0)), offset=0.0)
    return assign_by_order([th, tl])
