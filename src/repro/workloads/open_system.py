"""Open-system workloads: Poisson arrivals with slack-based deadlines.

The paper's experimental lineage (RTDBS simulation studies of the early
90s) evaluated protocols in an *open* system: transactions arrive in a
Poisson stream, each carries a firm deadline ``arrival + slack_factor *
execution_time``, and the metric is the miss ratio as the arrival rate
grows.  This module generates such workloads on top of the periodic
engine: every arrival becomes a one-shot :class:`TransactionSpec` with an
explicit offset and deadline.

Priorities: earliest-deadline ordering is the norm in that literature, but
the ceiling protocols need *static* per-transaction priorities for their
ceilings.  We therefore draw each arrival's priority from its transaction
*class* (shorter transactions = higher priority, a common surrogate), and
break ties by arrival order.  Determinism: everything is derived from the
config's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import SpecificationError
from repro.model.spec import Operation, TaskSet, TransactionSpec, compute, read, write


@dataclass(frozen=True)
class OpenSystemConfig:
    """Parameters of an open-system (Poisson) workload.

    Attributes:
        arrival_rate: mean arrivals per time unit (lambda).
        duration: length of the arrival window; transactions arriving
            after it are not generated.
        n_items: database size.
        ops_per_txn: inclusive range of data operations per transaction.
        write_probability: chance a data operation is a write.
        op_duration: inclusive range of per-operation CPU time.
        slack_factor: deadline = arrival + slack_factor * execution_time.
        n_classes: number of transaction classes; shorter-class
            transactions get higher priorities.
        hot_fraction / hot_access_probability: contention knobs, as in the
            closed-system generator.
        seed: PRNG seed.
    """

    arrival_rate: float = 0.1
    duration: float = 200.0
    n_items: int = 10
    ops_per_txn: Tuple[int, int] = (2, 4)
    write_probability: float = 0.3
    op_duration: Tuple[float, float] = (0.5, 1.5)
    slack_factor: float = 4.0
    n_classes: int = 3
    hot_fraction: float = 0.2
    hot_access_probability: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise SpecificationError("arrival_rate must be positive")
        if self.duration <= 0:
            raise SpecificationError("duration must be positive")
        if self.slack_factor <= 0:
            raise SpecificationError("slack_factor must be positive")
        if self.n_classes < 1:
            raise SpecificationError("need at least one transaction class")


def _pick_item(rng: random.Random, config: OpenSystemConfig) -> str:
    n_hot = max(1, int(config.n_items * config.hot_fraction))
    if rng.random() < config.hot_access_probability:
        return f"d{rng.randrange(n_hot)}"
    return f"d{rng.randrange(config.n_items)}"


def _operations(rng: random.Random, config: OpenSystemConfig) -> List[Operation]:
    lo, hi = config.ops_per_txn
    dur_lo, dur_hi = config.op_duration
    ops: List[Operation] = []
    used: set = set()
    for __ in range(rng.randint(lo, hi)):
        item = _pick_item(rng, config)
        is_write = rng.random() < config.write_probability
        if (item, is_write) in used:
            continue
        used.add((item, is_write))
        duration = rng.uniform(dur_lo, dur_hi)
        ops.append(write(item, duration) if is_write else read(item, duration))
    if not ops:
        ops.append(read(_pick_item(rng, config), rng.uniform(dur_lo, dur_hi)))
    return ops


def generate_open_system(config: OpenSystemConfig) -> TaskSet:
    """Generate the arrival stream as a task set of one-shot transactions.

    Returns a :class:`TaskSet` whose transactions carry explicit offsets
    (their arrival instants), deadlines (slack-based), and priorities
    (by class: shorter expected length = higher priority; arrival order
    breaks ties).  Simulate with ``SimConfig(on_miss="abort",
    horizon=...)`` for the firm-deadline open-system semantics.
    """
    rng = random.Random(config.seed)

    # Poisson process: exponential inter-arrival times.
    arrivals: List[float] = []
    t = rng.expovariate(config.arrival_rate)
    while t < config.duration:
        arrivals.append(t)
        t += rng.expovariate(config.arrival_rate)
    if not arrivals:
        arrivals.append(config.duration / 2.0)

    drafts = []
    for index, arrival in enumerate(arrivals):
        ops = _operations(rng, config)
        execution = sum(op.duration for op in ops)
        deadline = config.slack_factor * execution
        drafts.append((index, arrival, tuple(ops), execution, deadline))

    # Class-based priorities: split the execution-time range into
    # n_classes buckets; shorter bucket = higher priority band.  Within a
    # band, earlier arrivals get higher priority (total order required).
    executions = sorted(d[3] for d in drafts)
    boundaries = [
        executions[min(len(executions) - 1, (len(executions) * (k + 1)) // config.n_classes - 1)]
        for k in range(config.n_classes)
    ]

    def class_of(execution: float) -> int:
        for k, bound in enumerate(boundaries):
            if execution <= bound + 1e-12:
                return k
        return config.n_classes - 1

    # Sort for priority assignment: lower class first (higher priority),
    # then earlier arrival.
    ordered = sorted(drafts, key=lambda d: (class_of(d[3]), d[1], d[0]))
    n = len(ordered)
    specs = []
    for rank, (index, arrival, ops, execution, deadline) in enumerate(ordered):
        specs.append(
            TransactionSpec(
                name=f"J{index + 1}",
                operations=ops,
                priority=n - rank,
                offset=arrival,
                deadline=deadline,
                period=None,
            )
        )
    return TaskSet(specs)


def offered_load(taskset: TaskSet, duration: float) -> float:
    """Total CPU demand divided by the window length (an open-system
    utilisation figure)."""
    total = sum(spec.execution_time for spec in taskset)
    return total / duration
