"""Executable versions of the paper's Lemmas (Section 7).

:class:`LemmaCheckingPCPDA` behaves exactly like
:class:`~repro.core.pcp_da.PCPDA` but verifies, at every decision point and
priority recomputation, the intermediate facts the paper's proofs rest on:

* **Lemma 1** — an item that is only write-locked never causes a denial
  (write operations are preemptable);
* **Lemma 2** — every transaction blamed for a denial holds at least one
  read lock at that moment;
* **Lemma 3** — a transaction's inherited priority never exceeds the
  highest ``Wceil`` among the items it has read-locked;
* **Lemma 4** — every lower-priority transaction blamed for blocking
  ``T_H`` has read-locked an item with ``Wceil ≥ P_H``;
* **Lemma 5** — when a job requests a lock, at most one transaction of
  lower priority holds a read lock on an item with ``Wceil ≥`` the
  requester's priority;
* **Lemma 6** — when LC2 fails, the ceiling-holder ``T*`` is unique.

A violation raises :class:`~repro.exceptions.InvariantViolation`
immediately, with the offending state in the message.  The test suite runs
random workloads under this protocol; if our reconstruction of the locking
conditions were wrong in a way that breaks the proofs, these monitors are
where it would surface first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.locking_conditions import ceiling_holders, system_ceiling
from repro.core.pcp_da import PCPDA
from repro.engine.interfaces import Deny, Grant
from repro.exceptions import InvariantViolation
from repro.model.spec import DUMMY_PRIORITY, LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.job import Job


class LemmaCheckingPCPDA(PCPDA):
    """PCP-DA with the paper's lemmas asserted at runtime.

    Registered separately so it can be requested by name in stress tests:
    ``make_protocol("pcp-da-checked")``.
    """

    name = "pcp-da-checked"

    def compile_table(self):
        """Opt out of the array kernel: the whole point of this protocol
        is that ``decide()`` runs the lemma assertions, so the engine must
        not route decisions around it."""
        return None

    # ------------------------------------------------------------------
    # Helpers over the live lock table
    # ------------------------------------------------------------------
    def _read_locked_items_of(self, job: "Job") -> Tuple[str, ...]:
        return tuple(
            item
            for item, modes in self.table.items_held_by(job).items()
            if LockMode.READ in modes
        )

    def _max_read_ceiling_of(self, job: "Job") -> int:
        return max(
            (self.ceilings.wceil(item) for item in self._read_locked_items_of(job)),
            default=DUMMY_PRIORITY,
        )

    # ------------------------------------------------------------------
    # Lemma checks
    # ------------------------------------------------------------------
    def _check_lemma_1_and_2(self, decision: Deny, requester: "Job") -> None:
        for blocker in decision.blockers:
            held = self.table.items_held_by(blocker)
            read_locked = [
                item for item, modes in held.items() if LockMode.READ in modes
            ]
            if not read_locked:
                raise InvariantViolation(
                    f"Lemma 1/2 violated: {blocker.name} blocks "
                    f"{requester.name} while holding only write locks "
                    f"({sorted(held)})"
                )

    def _check_lemma_3(self) -> None:
        for job in self._jobs_seen:
            if not job.state.active:
                continue
            ceiling = self._max_read_ceiling_of(job)
            limit = max(job.base_priority, ceiling)
            if job.running_priority > limit:
                raise InvariantViolation(
                    f"Lemma 3 violated: {job.name} runs at "
                    f"{job.running_priority} > max(base={job.base_priority}, "
                    f"max Wceil of read-locked items={ceiling})"
                )

    def _check_lemma_4(self, decision: Deny, requester: "Job") -> None:
        p_h = requester.running_priority
        for blocker in decision.blockers:
            if blocker.base_priority >= requester.base_priority:
                continue  # the lemma concerns lower-priority blockers
            items = self._read_locked_items_of(blocker)
            if not any(self.ceilings.wceil(item) >= p_h for item in items):
                raise InvariantViolation(
                    f"Lemma 4 violated: lower-priority {blocker.name} blocks "
                    f"{requester.name} (P={p_h}) without read-locking any "
                    f"item with Wceil >= {p_h}; it read-locks {items} with "
                    f"ceilings {[self.ceilings.wceil(i) for i in items]}"
                )

    def _check_lemma_5(self, requester: "Job") -> None:
        p_i = requester.running_priority
        culprits = set()
        for item in self.table.read_locked_items(exclude=requester):
            if self.ceilings.wceil(item) < p_i:
                continue
            for holder in self.table.readers_of(item):
                if holder is requester:
                    continue
                if holder.base_priority < requester.base_priority:
                    culprits.add(holder)
        if len(culprits) > 1:
            raise InvariantViolation(
                f"Lemma 5 violated: {sorted(j.name for j in culprits)} all "
                f"read-lock items with Wceil >= P({requester.name})={p_i}"
            )

    def _check_lemma_6(self, requester: "Job") -> None:
        sysceil = system_ceiling(self.table, self.ceilings, requester)
        if requester.running_priority > sysceil:
            return  # LC2 holds; T* is not consulted
        tstar = ceiling_holders(self.table, self.ceilings, requester)
        lower = [t for t in tstar if t.base_priority < requester.base_priority]
        if len(lower) > 1:
            raise InvariantViolation(
                f"Lemma 6 violated: T* is not unique for {requester.name}: "
                f"{sorted(j.name for j in lower)}"
            )

    # ------------------------------------------------------------------
    # Instrumented decide
    # ------------------------------------------------------------------
    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._jobs_seen: "set[Job]" = set()
        self.checks_performed = 0

    def decide(self, job: "Job", item: str, mode: LockMode):
        self._jobs_seen.add(job)
        if mode is LockMode.READ:
            self._check_lemma_5(job)
            self._check_lemma_6(job)
        decision = super().decide(job, item, mode)
        if isinstance(decision, Deny):
            self._check_lemma_1_and_2(decision, job)
            self._check_lemma_4(decision, job)
        self._check_lemma_3()
        self.checks_performed += 1
        return decision

    # NOTE: no check in ``on_release_all`` — the engine calls it while a
    # commit is mid-transition (locks already released, inheritance not yet
    # recomputed), where Lemma 3 transiently "fails" by construction.  The
    # decide-time checks observe only settled states.


# Make the checked variant constructible by name.
from repro.protocols.base import register_protocol  # noqa: E402

register_protocol(LemmaCheckingPCPDA)
