"""Runtime checks of the properties the paper proves for PCP-DA."""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.db.serializability import check_serializable
from repro.engine.job import Job, JobState
from repro.engine.simulator import SimulationResult
from repro.exceptions import InvariantViolation


def lower_priority_blockers(result: SimulationResult, job: Job) -> FrozenSet[str]:
    """Names of *transactions* (not instances) with a base priority lower
    than ``job``'s that ever blocked ``job``.

    This is the quantity Theorem 1 bounds.  Being blocked by (or preempted
    for) a higher-priority transaction is ordinary interference, not
    "blocking" in the priority-inversion sense, so higher-priority blockers
    are excluded.
    """
    base_priorities: Dict[str, int] = {
        s.name: s.priority or 0 for s in result.taskset
    }
    out: Set[str] = set()
    for interval in job.block_intervals:
        for blocker in interval.blockers:
            transaction = blocker.split("#", 1)[0]
            if base_priorities.get(transaction, 0) < job.base_priority:
                out.add(transaction)
    return frozenset(out)


def assert_single_blocking(result: SimulationResult) -> None:
    """Theorem 1: each job is blocked by at most one lower-priority
    transaction over its whole execution."""
    for job in result.jobs:
        blockers = lower_priority_blockers(result, job)
        if len(blockers) > 1:
            raise InvariantViolation(
                f"single-blocking violated: {job.name} was blocked by "
                f"{sorted(blockers)} (protocol {result.protocol_name})"
            )


def assert_deadlock_free(result: SimulationResult) -> None:
    """Theorem 2: the run completed without a wait-for cycle.

    A run that deadlocked either raised :class:`DeadlockError` during
    :meth:`Simulator.run` (``deadlock_action="raise"``) or carries the
    cycle in ``result.deadlock`` (``"halt"``); restarts caused by
    deadlock-resolution aborts also count as evidence of a cycle.
    """
    if result.deadlock is not None:
        raise InvariantViolation(
            f"deadlock at t={result.deadlock.time}: "
            f"{' -> '.join(result.deadlock.cycle)} "
            f"(protocol {result.protocol_name})"
        )


def assert_no_restarts(result: SimulationResult) -> None:
    """PCP-DA never aborts/restarts a transaction (Section 4's design goal)."""
    if result.aborted_restarts:
        raise InvariantViolation(
            f"{result.aborted_restarts} restart(s) under "
            f"{result.protocol_name}, which promises none"
        )


def assert_serializable(result: SimulationResult) -> None:
    """Theorem 3: the committed history is conflict serializable."""
    check_serializable(result.history)


def assert_all_committed(result: SimulationResult) -> None:
    """Every released job committed (use for one-shot workloads or runs
    whose horizon covers all work)."""
    stuck = [j.name for j in result.jobs if j.state is not JobState.COMMITTED]
    if stuck:
        raise InvariantViolation(
            f"jobs never committed by t={result.end_time}: {stuck} "
            f"(protocol {result.protocol_name})"
        )


def verify_pcp_da_run(result: SimulationResult) -> None:
    """All of Theorems 1-3 plus the no-restart guarantee, in one call."""
    assert_deadlock_free(result)
    assert_no_restarts(result)
    assert_single_blocking(result)
    assert_serializable(result)
