"""Decision-level parity: one workload, four executions, identical decisions.

The paper's protocol is implemented three times over — the object-path
engine, the compiled array kernel, and the live asyncio service (plain
and sharded).  Where their semantics *promise* agreement, this module
proves it: under **single-client sequential replay** (one transaction
live at a time, operations in program order) every execution must make
the same grant/block/abort decision with the same rule/reason string for
every operation.  Sequential isolation is exactly the regime where the
concurrency deltas the service documents (commit gate, order guard,
service-level deadlock victims) cannot fire — the lock table never holds
another transaction's locks at decision time — so any divergence is an
implementation bug, not a semantic one.

Four executions are compared per workload:

* the simulator with ``kernel=True`` (compiled decision tables);
* the simulator with ``kernel=False`` (the object reference path);
* the in-process :class:`~repro.service.manager.LockManager`;
* the sharded coordinator (1 shard by default — decision-equivalent to
  the plain manager by construction — or N shards, where sequential
  isolation still promises identical decisions in arrival order).

Decision capture uses the manager's ``decision_listeners`` hook (and the
coordinator's :meth:`add_decision_listener`, which observes all shards in
true global order); the simulator side reads the finished run's
:class:`~repro.trace.recorder.TraceRecorder`.  Records are normalised to
``(type, instance, item, mode, outcome, rule)`` — job naming differs
between the engines (``"S3@7#0"`` vs ``"S3#7"``), numeric priorities
differ by construction (the simulator needs one unique priority per
instance), but the decision surface itself carries no numerics: every
rule/reason string in :mod:`repro.core.locking_conditions` is fixed text.

The workload comes from :mod:`repro.verify.stress` (same seeded catalog
generator, Zipf skew and all); only the arrival *order* matters here.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvariantViolation
from repro.model.spec import TaskSet
from repro.trace.recorder import LockEvent
from repro.verify.stress import (
    CEILING_FAMILY,
    StressSpec,
    build_taskset,
    iter_arrivals,
    make_catalog,
)

#: One normalised decision: (type, instance, item, mode, outcome, rule).
DecisionRecord = Tuple[str, int, str, str, str, str]


class ParityError(InvariantViolation):
    """Two executions of the same workload made different decisions."""


def _normalise(event: LockEvent) -> DecisionRecord:
    """One lock event as an engine-independent decision record.

    Accepts both naming schemes: simulator jobs are ``"S3@7#0"`` (spec
    ``"S3@7"`` built by :func:`repro.verify.stress.build_taskset`,
    instance 0), service jobs are ``"S3#7"`` (catalog type ``"S3"``,
    instance 7).  Both normalise to ``("S3", 7, ...)``.
    """
    base, _, tail = event.job.rpartition("#")
    if "@" in base:
        txn, _, instance_text = base.rpartition("@")
    else:
        txn, instance_text = base, tail
    return (
        txn,
        int(instance_text),
        event.item,
        event.mode.value,
        event.outcome.value,
        event.rule,
    )


def simulator_decisions(
    spec: StressSpec, protocol: str, *, kernel: bool
) -> List[DecisionRecord]:
    """Decision sequence of the sequential replay in the simulator.

    The workload's arrivals become one-shot specs spaced so far apart
    that each job commits before the next is released
    (:func:`sequential_taskset`); the finished trace's lock events, in
    order, are the decision sequence.
    """
    from repro.engine.simulator import SimConfig, Simulator
    from repro.protocols import make_protocol

    taskset = sequential_taskset(spec)
    result = Simulator(
        taskset, make_protocol(protocol), SimConfig(kernel=kernel)
    ).run()
    return [_normalise(e) for e in result.trace.lock_events]


def sequential_taskset(spec: StressSpec) -> TaskSet:
    """The workload's arrivals as strictly non-overlapping one-shot specs.

    Reuses :func:`repro.verify.stress.build_taskset` for naming and
    priority assignment, but replaces every offset with ``seq × gap``
    where ``gap`` exceeds any program's total execution time — so in
    virtual time at most one job is ever live, which is the sequential
    regime decision parity quantifies over.
    """
    catalog = make_catalog(spec)
    gap = max(
        sum(op.duration for op in catalog[name].operations)
        for name in catalog.names
    ) + 1.0
    return build_taskset(spec, sequential_gap=gap)


async def _drive_sequential(
    manager: Any, catalog: TaskSet, order: Sequence[str]
) -> None:
    """Run the arrival order through a manager, one transaction at a time."""
    for name in order:
        session = await manager.begin(name)
        for op in catalog[name].operations:
            kind = op.kind.value
            if kind == "read":
                await manager.read(session, op.item)
            elif kind == "write":
                await manager.write(
                    session, op.item, f"{session.name}@{op.item}"
                )
        await manager.commit(session)


def service_decisions(
    spec: StressSpec, protocol: str, *, kernel: bool = True
) -> List[DecisionRecord]:
    """Decision sequence of the sequential replay through a LockManager."""
    from repro.service import LockManager, ServiceConfig

    catalog = make_catalog(spec)
    order = [a.name for a in iter_arrivals(spec)]
    captured: List[DecisionRecord] = []

    async def run() -> None:
        manager = LockManager(
            catalog, protocol, ServiceConfig(kernel=kernel)
        )
        manager.decision_listeners.append(
            lambda event: captured.append(_normalise(event))
        )
        try:
            await _drive_sequential(manager, catalog, order)
        finally:
            await manager.shutdown()

    asyncio.run(run())
    return captured


def coordinator_decisions(
    spec: StressSpec,
    protocol: str,
    *,
    shards: int = 1,
    partitioner: str = "hash",
    kernel: bool = True,
) -> List[DecisionRecord]:
    """Decision sequence of the sequential replay through the coordinator."""
    from repro.service import ServiceConfig, ShardedLockManager

    catalog = make_catalog(spec)
    order = [a.name for a in iter_arrivals(spec)]
    captured: List[DecisionRecord] = []

    async def run() -> None:
        manager = ShardedLockManager(
            catalog,
            protocol,
            ServiceConfig(kernel=kernel),
            shards=shards,
            partitioner=partitioner,
        )
        manager.add_decision_listener(
            lambda event: captured.append(_normalise(event))
        )
        try:
            await _drive_sequential(manager, catalog, order)
        finally:
            await manager.shutdown()

    asyncio.run(run())
    return captured


def procs_coordinator_decisions(
    spec: StressSpec,
    protocol: str,
    *,
    shard_procs: int = 4,
    partitioner: str = "hash",
) -> List[DecisionRecord]:
    """Decision sequence of the sequential replay through a multi-process
    deployment: N ``repro shard-host`` children behind the coordinator.

    The decisions themselves are made host-side; they reach the capture
    listener as v2 event frames through each shard's
    :class:`~repro.service.sharding.procs.proxy.RemoteShardProxy`.
    Because frames are emitted synchronously during dispatch and
    delivered before the triggering operation's response on the same
    connection, a sequential driver observes them in exact decision
    order — so this path must agree record-for-record with the
    in-process executions, proving the wire (serialization, event
    frames, mirrors) adds no semantic drift.
    """
    from repro.service.sharding.procs import start_proc_deployment

    catalog = make_catalog(spec)
    order = [a.name for a in iter_arrivals(spec)]
    captured: List[DecisionRecord] = []

    async def run() -> None:
        supervisor, manager = await start_proc_deployment(
            catalog, protocol, shards=shard_procs, partitioner=partitioner
        )
        manager.add_decision_listener(
            lambda event: captured.append(_normalise(event))
        )
        try:
            await _drive_sequential(manager, catalog, order)
        finally:
            await manager.shutdown()
            await supervisor.stop()

    asyncio.run(run())
    return captured


@dataclass(frozen=True)
class ParityReport:
    """Outcome of one decision-parity comparison.

    Attributes:
        protocol: the protocol compared.
        executions: labels of the compared executions, in order.
        decisions: length of the (agreed) decision sequence.
        workload: the generating :class:`StressSpec`.
    """

    protocol: str
    executions: Tuple[str, ...]
    decisions: int
    workload: StressSpec


def _first_divergence(
    label_a: str,
    seq_a: List[DecisionRecord],
    label_b: str,
    seq_b: List[DecisionRecord],
) -> str:
    """Human-readable description of where two sequences part ways."""
    limit = min(len(seq_a), len(seq_b))
    for i in range(limit):
        if seq_a[i] != seq_b[i]:
            context = seq_a[max(0, i - 2):i]
            return (
                f"decision {i} differs:\n"
                f"  {label_a}: {seq_a[i]}\n"
                f"  {label_b}: {seq_b[i]}\n"
                f"  shared prefix tail: {context}"
            )
    return (
        f"lengths differ: {label_a} made {len(seq_a)} decisions, "
        f"{label_b} made {len(seq_b)}"
    )


def check_decision_parity(
    spec: StressSpec,
    protocol: str,
    *,
    coordinator_shards: int = 1,
    coordinator_procs: int = 0,
    extra_executions: Optional[
        Dict[str, Callable[[], List[DecisionRecord]]]
    ] = None,
) -> ParityReport:
    """Assert all executions of one workload agree decision-for-decision.

    Runs the four standard executions (simulator kernel/object, plain
    service, coordinator at ``coordinator_shards``), plus — when
    ``coordinator_procs`` > 0 — a fifth: the coordinator over that many
    shard-host *processes* (real sockets, decisions streamed back as
    event frames), plus any ``extra_executions`` (label → thunk), and
    compares the normalised decision sequences pairwise against the
    kernel-simulator reference.

    Returns:
        A :class:`ParityReport` on agreement.

    Raises:
        ParityError: naming the first diverging decision (or the length
            mismatch) between the reference and the offending execution.
    """
    executions: Dict[str, Callable[[], List[DecisionRecord]]] = {
        "simulator[kernel]": lambda: simulator_decisions(
            spec, protocol, kernel=True
        ),
        "simulator[object]": lambda: simulator_decisions(
            spec, protocol, kernel=False
        ),
        "service": lambda: service_decisions(spec, protocol),
        f"coordinator[{coordinator_shards}sh]": lambda: coordinator_decisions(
            spec, protocol, shards=coordinator_shards
        ),
    }
    if coordinator_procs:
        executions[f"coordinator[{coordinator_procs}proc]"] = (
            lambda: procs_coordinator_decisions(
                spec, protocol, shard_procs=coordinator_procs
            )
        )
    if extra_executions:
        executions.update(extra_executions)
    sequences = {label: run() for label, run in executions.items()}
    labels = list(sequences)
    reference_label = labels[0]
    reference = sequences[reference_label]
    if not reference:
        raise ParityError(
            f"{protocol}: reference execution made no decisions — "
            "the workload is empty"
        )
    for label in labels[1:]:
        if sequences[label] != reference:
            raise ParityError(
                f"{protocol}: {label} diverges from {reference_label} — "
                + _first_divergence(
                    reference_label, reference, label, sequences[label]
                )
            )
    return ParityReport(
        protocol=protocol,
        executions=tuple(labels),
        decisions=len(reference),
        workload=spec,
    )


def parity_battery(
    *,
    seeds: Sequence[int],
    protocols: Sequence[str] = CEILING_FAMILY,
    transactions: int = 25,
    coordinator_shards: int = 1,
    coordinator_procs: int = 0,
    **spec_overrides: Any,
) -> List[ParityReport]:
    """Run decision parity over a seed × protocol grid.

    The acceptance battery: every seed builds one workload
    (:class:`StressSpec` with ``spec_overrides`` applied), and every
    protocol must pass :func:`check_decision_parity` on it.  Returns the
    reports; raises :class:`ParityError` on the first divergence.
    """
    reports = []
    for seed in seeds:
        spec = StressSpec(
            seed=seed, transactions=transactions, **spec_overrides
        )
        for protocol in protocols:
            reports.append(check_decision_parity(
                spec, protocol,
                coordinator_shards=coordinator_shards,
                coordinator_procs=coordinator_procs,
            ))
    return reports


__all__ = [
    "DecisionRecord",
    "ParityError",
    "ParityReport",
    "check_decision_parity",
    "coordinator_decisions",
    "parity_battery",
    "procs_coordinator_decisions",
    "sequential_taskset",
    "service_decisions",
    "simulator_decisions",
]
