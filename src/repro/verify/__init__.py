"""Verification oracles for the paper's theorems.

Each oracle takes a finished :class:`~repro.engine.simulator.SimulationResult`
and raises :class:`~repro.exceptions.InvariantViolation` (or
:class:`~repro.exceptions.SerializationViolation`) when the corresponding
property fails:

* Theorem 1 — single blocking: :func:`assert_single_blocking`;
* Theorem 2 — deadlock freedom: :func:`assert_deadlock_free`;
* Theorem 3 — serializability: :func:`assert_serializable`;
* PCP-DA's design goal — no restarts: :func:`assert_no_restarts`.

:func:`verify_pcp_da_run` bundles all four; the property-based tests run it
over thousands of random workloads.
"""

from repro.verify.invariants import (
    assert_all_committed,
    assert_deadlock_free,
    assert_no_restarts,
    assert_serializable,
    assert_single_blocking,
    lower_priority_blockers,
    verify_pcp_da_run,
)
from repro.verify.lemmas import LemmaCheckingPCPDA
from repro.verify.value_replay import assert_value_replay_consistent

__all__ = [
    "LemmaCheckingPCPDA",
    "assert_value_replay_consistent",
    "assert_all_committed",
    "assert_deadlock_free",
    "assert_no_restarts",
    "assert_serializable",
    "assert_single_blocking",
    "lower_priority_blockers",
    "verify_pcp_da_run",
]
