"""Verification oracles for the paper's theorems.

Each oracle takes a finished :class:`~repro.engine.simulator.SimulationResult`
and raises :class:`~repro.exceptions.InvariantViolation` (or
:class:`~repro.exceptions.SerializationViolation`) when the corresponding
property fails:

* Theorem 1 — single blocking: :func:`assert_single_blocking`;
* Theorem 2 — deadlock freedom: :func:`assert_deadlock_free`;
* Theorem 3 — serializability: :func:`assert_serializable`;
* PCP-DA's design goal — no restarts: :func:`assert_no_restarts`.

:func:`verify_pcp_da_run` bundles all four; the property-based tests run it
over thousands of random workloads.

Two harness modules build on the oracles (docs/TESTING.md):

* :mod:`repro.verify.parity` — decision-level parity: one seeded workload
  replayed sequentially through the simulator (both kernel modes), the
  in-process service, and the sharded coordinator must produce identical
  grant/block/abort decisions with identical rule strings;
* :mod:`repro.verify.stress` — invariant-level parity under true
  concurrency: overload traces with bursts and chaos knobs, checked for
  serializability, conservation, and abort attribution.
"""

from repro.verify.invariants import (
    assert_all_committed,
    assert_deadlock_free,
    assert_no_restarts,
    assert_serializable,
    assert_single_blocking,
    lower_priority_blockers,
    verify_pcp_da_run,
)
from repro.verify.lemmas import LemmaCheckingPCPDA
from repro.verify.parity import (
    ParityError,
    ParityReport,
    check_decision_parity,
    parity_battery,
)
from repro.verify.stress import (
    CEILING_FAMILY,
    StressReport,
    StressSpec,
    run_stress,
    simulator_stress_check,
)
from repro.verify.value_replay import assert_value_replay_consistent

__all__ = [
    "CEILING_FAMILY",
    "LemmaCheckingPCPDA",
    "ParityError",
    "ParityReport",
    "StressReport",
    "StressSpec",
    "assert_value_replay_consistent",
    "check_decision_parity",
    "parity_battery",
    "run_stress",
    "simulator_stress_check",
    "assert_all_committed",
    "assert_deadlock_free",
    "assert_no_restarts",
    "assert_serializable",
    "assert_single_blocking",
    "lower_priority_blockers",
    "verify_pcp_da_run",
]
