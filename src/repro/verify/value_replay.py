"""Final-state serializability: replay the committed history serially.

:func:`assert_value_replay_consistent` takes a finished run of a
*deferred-update* protocol (PCP-DA, 2PL-HP, OCC-BC, ...) and re-executes
its committed jobs **sequentially**, in a serialization order derived from
``SG(H)``, against a fresh database:

1. each replayed job reads the current replay value of every item its
   surviving execution read from a committed version;
2. it writes :func:`repro.db.values.write_digest` of those reads — the
   exact function the engine used at commit time;
3. after the last job, the replay database must equal the simulation's
   final database, value for value.

For a conflict-serializable history with correct version binding this is
a theorem (in any topological order of ``SG(H)``, the latest preceding
writer of an item is exactly the reads-from writer).  As an *oracle* it is
strictly stronger than acyclicity alone: a bug in read binding, install
ordering, workspace discard on restart, or the wait/grant machinery shows
up as a concrete value mismatch naming the item and the diverging inputs.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.db.serializability import serialization_order
from repro.db.values import write_digest
from repro.engine.interfaces import InstallPolicy
from repro.engine.simulator import SimulationResult
from repro.exceptions import InvariantViolation


def assert_value_replay_consistent(result: SimulationResult) -> None:
    """Serially replay the committed history and compare final states.

    Only meaningful for deferred-update runs (the digest function applies
    at commit); raises :class:`InvariantViolation` when handed an
    update-in-place run, or when the replay diverges.
    """
    installs = result.history.installs()
    if installs:
        # Deferred-update runs stamp digest values (they contain "(...)");
        # in-place runs stamp "job@time" tokens.  Probe one install rather
        # than trusting the protocol object.
        first = installs[0]
        sample = next(
            v for v in result.database[first.item].versions
            if v.seq == first.version_seq
        )
        if "(" not in str(sample.value):
            raise InvariantViolation(
                "value replay requires a deferred-update (AT_COMMIT) run; "
                f"found in-place value {sample.value!r}"
            )

    order = serialization_order(result.history)

    replay_db: Dict[str, Any] = {}
    jobs_by_name = {job.name: job for job in result.jobs}
    for job_name in order:
        job = jobs_by_name[job_name]
        observed_reads = job.workspace.external_reads()
        replay_reads = {
            item: replay_db.get(item) for item in observed_reads
        }
        # The reads themselves must match what the simulation observed —
        # this is where a wrong reads-from binding surfaces.
        for item, replay_value in replay_reads.items():
            if replay_value != observed_reads[item]:
                raise InvariantViolation(
                    f"value replay diverged at {job_name}'s read of {item!r}: "
                    f"simulation observed {observed_reads[item]!r}, replay "
                    f"produced {replay_value!r} (order: {order})"
                )
        for item in sorted(job.workspace.pending_writes):
            replay_db[item] = write_digest(job_name, item, replay_reads)

    committed = set(result.history.commit_order())
    for item in result.database.item_names:
        final = result.database.read_committed(item)
        if final.writer is None or final.writer not in committed:
            continue
        if replay_db.get(item) != final.value:
            raise InvariantViolation(
                f"final state mismatch on {item!r}: simulation has "
                f"{final.value!r}, serial replay has {replay_db.get(item)!r}"
            )
