"""Heavy-traffic stress harness: one seeded overload workload, checked runs.

This module is one half of the parity-and-stress tentpole (the other is
:mod:`repro.verify.parity`).  It generates **one deterministic workload**
— a seeded catalog with Zipf-skewed item access plus an open-system
arrival schedule with bursts and a configurable overload factor — and
drives it through a live deployment (:class:`~repro.service.manager.LockManager`
or the sharded coordinator at N shards) under true concurrency.  The run
is then *proved* correct rather than eyeballed:

* **serializability** — the service's observable history replays through
  :func:`repro.db.serializability.check_serializable_fast` (the sparse,
  near-linear variant of the Theorem 3 oracle, so 100k+-transaction
  traces verify in seconds);
* **conservation** — every transaction the driver started is accounted
  for exactly once: ``begun = committed + client aborts + forced aborts
  + deadline misses`` on both the driver's and the service's counters,
  and no session is left live;
* **deadlock bounds** — under a ceiling-family protocol every forced
  abort must be attributable to a service-resolved wait cycle (the
  gate/guard cycles docs/SERVICE.md documents as the price of dropping
  the single-CPU assumption) or a sharded cascade; unattributed forced
  aborts fail the run.

A bounded prefix of the same arrival schedule can also be replayed in the
virtual-time simulator (:func:`simulator_stress_check`), where the
scheduler's guarantees are strongest: both kernel modes must emit
byte-identical traces, and the per-protocol verification oracles
(Theorems 1–3) run on the result.

Scale: arrivals stream from a generator (O(1) memory per arrival), so
``transactions`` can be hundreds of thousands to millions; concurrency is
bounded by admission control, not by materialising the schedule.

Reports convert to ``repro-bench/1`` trend rows (committed transactions
per second) so ``make stress`` appends throughput history to the same
ledger ``benchmarks/bench_compare.py`` gates with its >10% regression
rule.
"""

from __future__ import annotations

import asyncio
import bisect
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.db.serializability import check_serializable_fast
from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    SerializationViolation,
    SpecificationError,
    TransactionAborted,
)
from repro.model.spec import TaskSet, TransactionSpec, read, write

#: Protocols whose admissions are driven by priority ceilings — the family
#: the parity acceptance criterion quantifies over.  ``pcp-da-checked``
#: and ``rw-pcp-abort`` are the kernel force-opt-out members (their
#: ``compile_table`` returns ``None``), so including them keeps the
#: fallback path under the same battery.
CEILING_FAMILY: Tuple[str, ...] = (
    "pcp-da", "pcp-da-checked", "weak-pcp-da", "rw-pcp", "rw-pcp-abort",
    "ccp", "pcp", "ipcp",
)

#: The subset of :data:`CEILING_FAMILY` the paper proves deadlock-free
#: (``weak-pcp-da`` is the deliberately broken Example 5 variant).
DEADLOCK_FREE_CEILING: Tuple[str, ...] = (
    "pcp-da", "pcp-da-checked", "rw-pcp", "rw-pcp-abort", "ccp", "pcp",
    "ipcp",
)


@dataclass(frozen=True)
class StressSpec:
    """One deterministic stress workload, fully determined by its fields.

    Attributes:
        seed: master RNG seed; catalog and arrival schedule derive
            sub-seeds from it, so equal specs generate equal workloads.
        transactions: number of arrivals in the open-system schedule.
        txn_types: catalog size (transaction types ``S1..Sn`` with
            distinct priorities, highest first).
        items: database size; access frequency is Zipf-skewed over it.
        min_ops / max_ops: per-type program length range; each program
            touches distinct items (no same-item re-access), so decision
            sequences are insensitive to early-release policy.
        write_probability: chance each program step is a write.
        zipf_s: Zipf exponent for item popularity (0 = uniform; larger
            concentrates traffic on a hot set — the contention knob).
        arrival_rate_hz: base offered load of the open-system schedule.
        overload: multiplies the offered rate — >1 deliberately outruns
            the service so in-flight work piles up (admission control
            sheds the excess; rejects are part of conservation).
        burst_factor: rate multiplier during the burst phase of each
            cycle (1 = no bursts).
        burst_period_s: burst cycle length in schedule seconds.
        burst_duty: fraction of each cycle spent at the burst rate.
        abort_probability: chaos knob — chance an arrival deliberately
            aborts after running its program instead of committing.
    """

    seed: int = 0
    transactions: int = 1000
    txn_types: int = 8
    items: int = 24
    min_ops: int = 2
    max_ops: int = 5
    write_probability: float = 0.3
    zipf_s: float = 1.1
    arrival_rate_hz: float = 2000.0
    overload: float = 1.0
    burst_factor: float = 4.0
    burst_period_s: float = 0.5
    burst_duty: float = 0.25
    abort_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.transactions < 1:
            raise SpecificationError("transactions must be >= 1")
        if self.txn_types < 1:
            raise SpecificationError("txn_types must be >= 1")
        if self.items < 2:
            raise SpecificationError("items must be >= 2")
        if not 1 <= self.min_ops <= self.max_ops:
            raise SpecificationError("need 1 <= min_ops <= max_ops")
        if self.max_ops > self.items:
            raise SpecificationError("max_ops cannot exceed items")
        if not 0.0 <= self.write_probability <= 1.0:
            raise SpecificationError("write_probability must be in [0, 1]")
        if self.zipf_s < 0:
            raise SpecificationError("zipf_s must be >= 0")
        if self.arrival_rate_hz <= 0 or self.overload <= 0:
            raise SpecificationError("arrival rate and overload must be > 0")
        if self.burst_factor < 1.0:
            raise SpecificationError("burst_factor must be >= 1")
        if self.burst_period_s <= 0:
            raise SpecificationError("burst_period_s must be > 0")
        if not 0.0 < self.burst_duty < 1.0:
            raise SpecificationError("burst_duty must be in (0, 1)")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise SpecificationError("abort_probability must be in [0, 1]")


@dataclass(frozen=True)
class Arrival:
    """One open-system transaction arrival.

    Attributes:
        seq: global arrival index (0-based).
        at_s: schedule time of the arrival, in seconds from run start.
        name: catalog transaction type to instantiate.
        chaos_abort: when true the driver aborts after the program instead
            of committing (the ``abort_probability`` chaos knob, decided
            at generation time so every execution sees the same choice).
    """

    seq: int
    at_s: float
    name: str
    chaos_abort: bool


def zipf_weights(n: int, s: float) -> List[float]:
    """Unnormalised Zipf weights ``1/k^s`` for ranks ``1..n``."""
    return [1.0 / (k ** s) for k in range(1, n + 1)]


def _weighted_sample_distinct(
    rng: random.Random, population: List[str], weights: List[float], k: int
) -> List[str]:
    """Draw ``k`` distinct elements, each by one weighted draw.

    Uses cumulative-weight inversion with rejection of repeats — the
    skewed draws keep their bias (hot items stay hot) while programs
    never touch the same item twice.
    """
    cumulative: List[float] = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)
    chosen: List[str] = []
    taken = set()
    while len(chosen) < k:
        index = bisect.bisect_left(cumulative, rng.random() * total)
        item = population[min(index, len(population) - 1)]
        if item not in taken:
            taken.add(item)
            chosen.append(item)
    return chosen


def make_catalog(spec: StressSpec) -> TaskSet:
    """The deterministic catalog of one stress workload.

    ``txn_types`` one-shot transaction types named ``S1..Sn`` with
    distinct priorities (``S1`` highest), programs of ``min_ops..max_ops``
    steps over Zipf-favoured distinct items.  The same catalog serves the
    live deployments directly and, instanced per arrival, the simulator
    (:func:`build_taskset`).
    """
    rng = random.Random(spec.seed * 1_000_003 + 1)
    items = [f"x{i}" for i in range(1, spec.items + 1)]
    weights = zipf_weights(spec.items, spec.zipf_s)
    specs = []
    for t in range(1, spec.txn_types + 1):
        k = rng.randint(spec.min_ops, spec.max_ops)
        ops = []
        for item in _weighted_sample_distinct(rng, items, weights, k):
            if rng.random() < spec.write_probability:
                ops.append(write(item))
            else:
                ops.append(read(item))
        if not any(op.kind.value == "write" for op in ops):
            # Guarantee at least one installing type so a committed run
            # always has history installs (and the oracle has edges).
            ops[-1] = write(ops[-1].item)
        specs.append(TransactionSpec(
            name=f"S{t}",
            operations=tuple(ops),
            priority=spec.txn_types - t + 1,
        ))
    return TaskSet(specs)


def iter_arrivals(spec: StressSpec) -> Iterator[Arrival]:
    """Stream the open-system arrival schedule (O(1) memory).

    Gaps are exponential at the *current* rate; the rate alternates
    between ``burst_factor × base`` (for ``burst_duty`` of each
    ``burst_period_s`` cycle) and ``base``, with
    ``base = arrival_rate_hz × overload``.  Transaction types are drawn
    uniformly; the chaos-abort flag is pre-drawn per arrival so every
    replay of the schedule sees identical choices.
    """
    rng = random.Random(spec.seed * 1_000_003 + 2)
    names = [f"S{t}" for t in range(1, spec.txn_types + 1)]
    base = spec.arrival_rate_hz * spec.overload
    burst_until = spec.burst_period_s * spec.burst_duty
    t = 0.0
    for seq in range(spec.transactions):
        phase = t % spec.burst_period_s
        rate = base * (spec.burst_factor if phase < burst_until else 1.0)
        t += rng.expovariate(rate)
        yield Arrival(
            seq=seq,
            at_s=t,
            name=names[rng.randrange(len(names))],
            chaos_abort=rng.random() < spec.abort_probability,
        )


def build_taskset(
    spec: StressSpec,
    limit: Optional[int] = None,
    *,
    sequential_gap: Optional[float] = None,
) -> TaskSet:
    """Instance the arrival schedule as a one-shot simulator task set.

    Each of the first ``limit`` arrivals becomes its own spec named
    ``"<type>@<k>"`` (``k`` = per-type occurrence index, matching the
    instance numbers the service's per-type counters assign), released at
    its arrival time — or, with ``sequential_gap``, at ``seq × gap`` so
    consecutive jobs never overlap (the parity harness's sequential
    regime).  Priorities are unique, ordered by (type priority, arrival
    order) — ties in the catalog's type priority cannot exist, so earlier
    instances of a type outrank later ones and every instance of a higher
    type outranks every instance of a lower one.
    """
    catalog = make_catalog(spec)
    arrivals = []
    per_type: Dict[str, int] = {}
    for arrival in iter_arrivals(spec):
        if limit is not None and arrival.seq >= limit:
            break
        k = per_type.get(arrival.name, 0)
        per_type[arrival.name] = k + 1
        arrivals.append((arrival, k))
    ranked = sorted(
        arrivals,
        key=lambda pair: (-catalog[pair[0].name].priority, pair[0].seq),
    )
    priority_of = {
        (pair[0].seq): len(ranked) - rank
        for rank, pair in enumerate(ranked)
    }
    specs = []
    for arrival, k in arrivals:
        base = catalog[arrival.name]
        offset = (
            arrival.at_s if sequential_gap is None
            else arrival.seq * sequential_gap
        )
        specs.append(TransactionSpec(
            name=f"{arrival.name}@{k}",
            operations=base.operations,
            priority=priority_of[arrival.seq],
            offset=offset,
        ))
    return TaskSet(specs)


@dataclass
class StressReport:
    """Counters and verdicts of one concurrent stress run."""

    spec: StressSpec
    protocol: str
    shards: int
    #: Shard-host *processes* (0 = in-process deployment).  When set it
    #: equals ``shards`` — one shard per process — and the trend row key
    #: becomes ``proto@Nproc`` so process scaling diffs independently of
    #: in-process shard scaling.
    procs: int = 0
    wall_s: float = 0.0
    begun: int = 0
    committed: int = 0
    client_aborts: int = 0
    forced_aborts: int = 0
    deadline_misses: int = 0
    admission_rejects: int = 0
    serializable: bool = True
    violation: str = ""
    conservation_ok: bool = True
    conservation_detail: str = ""
    bounds_ok: bool = True
    bounds_detail: str = ""
    history_events: int = 0
    stats_doc: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The run's overall verdict (all three checks passed)."""
        return self.serializable and self.conservation_ok and self.bounds_ok

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per wall-clock second."""
        return self.committed / self.wall_s if self.wall_s > 0 else 0.0

    def render(self) -> str:
        """Multi-line text summary (the ``repro stress`` report body)."""
        deployment = (
            f"shard-procs={self.procs}" if self.procs
            else f"shards={self.shards}"
        )
        lines = [
            f"stress: protocol={self.protocol} {deployment} "
            f"arrivals={self.spec.transactions} "
            f"overload={self.spec.overload:g} "
            f"burst={self.spec.burst_factor:g}x wall={self.wall_s:.2f}s",
            f"  begun={self.begun} committed={self.committed} "
            f"({self.throughput_tps:,.0f} txn/s) "
            f"client_aborts={self.client_aborts} "
            f"forced_aborts={self.forced_aborts} "
            f"deadline_misses={self.deadline_misses} "
            f"admission_rejects={self.admission_rejects}",
            f"  serializability: "
            + ("OK" if self.serializable else f"VIOLATION — {self.violation}")
            + f" ({self.history_events} history events)",
            f"  conservation: "
            + ("OK" if self.conservation_ok
               else f"FAIL — {self.conservation_detail}"),
            f"  abort bounds: "
            + ("OK" if self.bounds_ok else f"FAIL — {self.bounds_detail}"),
        ]
        return "\n".join(lines)

    def trend_row(self) -> Dict[str, Any]:
        """This run as one ``repro-bench/1`` result row.

        ``events`` counts committed transactions, so ``events_per_sec``
        is committed throughput — the quantity whose regression the
        ``bench_compare`` gate should catch across PRs.  The shard count
        rides in the protocol key so 1-shard and N-shard trends diff
        independently.
        """
        wall = max(self.wall_s, 1e-9)
        key = (
            f"{self.protocol}@{self.procs}proc" if self.procs
            else f"{self.protocol}@{self.shards}sh"
        )
        return {
            "benchmark": "stress_loadgen",
            "protocol": key,
            "runs": 1,
            "events": self.committed,
            "wall_s": wall,
            "events_per_sec": self.committed / wall,
            "ns_per_event": (wall / self.committed) * 1e9
            if self.committed else 0.0,
        }


async def run_stress(
    spec: StressSpec,
    protocol: str = "pcp-da",
    *,
    shards: int = 1,
    partitioner: str = "hash",
    max_sessions: Optional[int] = 512,
    kernel: bool = True,
    shard_procs: int = 0,
) -> StressReport:
    """Drive one stress workload through a live deployment and check it.

    Builds the deployment in-process (socket-free), streams the arrival
    schedule against the wall clock — falling behind is expected under
    overload; the driver then fires arrivals as fast as the loop allows —
    and, after every transaction resolved, replays the observable history
    through the sparse serializability oracle and audits conservation and
    abort attribution.  The returned report carries verdicts, not
    assertions; callers gate on :attr:`StressReport.ok`.

    ``shard_procs=N`` (N > 1) replaces the in-process deployment with N
    ``repro shard-host`` child processes behind the same coordinator —
    real sockets, real process boundaries; ``shards`` is ignored.
    """
    from repro.service import LockManager, ServiceConfig, ShardedLockManager

    catalog = make_catalog(spec)
    config = ServiceConfig(max_sessions=max_sessions, kernel=kernel)
    supervisor = None
    if shard_procs > 1:
        from repro.service.sharding.procs import start_proc_deployment

        shards = shard_procs
        supervisor, manager = await start_proc_deployment(
            catalog, protocol, shards=shard_procs,
            config=config, partitioner=partitioner,
        )
    elif shards > 1:
        manager = ShardedLockManager(
            catalog, protocol, config, shards=shards, partitioner=partitioner
        )
    else:
        manager = LockManager(catalog, protocol, config)
    report = StressReport(
        spec=spec, protocol=protocol, shards=shards, procs=shard_procs
    )
    programs = {name: catalog[name].operations for name in catalog.names}

    async def one(arrival: Arrival) -> None:
        try:
            session = await manager.begin(arrival.name)
        except AdmissionError:
            report.admission_rejects += 1
            return
        report.begun += 1
        try:
            for op in programs[arrival.name]:
                if op.kind.value == "read":
                    await manager.read(session, op.item)
                elif op.kind.value == "write":
                    await manager.write(
                        session, op.item, f"{session.name}@{op.item}"
                    )
            if arrival.chaos_abort:
                await manager.abort(session, "loadgen-chaos")
                report.client_aborts += 1
            else:
                await manager.commit(session)
                report.committed += 1
        except DeadlineExceeded:
            report.deadline_misses += 1
        except TransactionAborted:
            report.forced_aborts += 1

    loop = asyncio.get_running_loop()
    started = loop.time()
    inflight: set = set()
    try:
        for arrival in iter_arrivals(spec):
            delay = started + arrival.at_s - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            task = asyncio.ensure_future(one(arrival))
            inflight.add(task)
            task.add_done_callback(inflight.discard)
        if inflight:
            await asyncio.gather(*inflight)
        report.wall_s = loop.time() - started

        # --- the oracle: replay the observable history ------------------
        from repro.service.loadgen import history_from_events

        events = manager.history_events()
        if asyncio.iscoroutine(events):  # remote shards: wire fetch
            events = await events
        report.history_events = len(events)
        history = history_from_events(events)
        try:
            check_serializable_fast(history)
        except SerializationViolation as exc:
            report.serializable = False
            report.violation = str(exc)

        stats_doc = manager.stats_document()
        if asyncio.iscoroutine(stats_doc):
            stats_doc = await stats_doc
        report.stats_doc = stats_doc
        _audit_conservation(report, manager)
        _audit_bounds(report)
    finally:
        await manager.shutdown()
        if supervisor is not None:
            await supervisor.stop()
    return report


def _audit_conservation(report: StressReport, manager: Any) -> None:
    """Exact begun = committed + aborted accounting, driver vs service."""
    doc = report.stats_doc
    problems: List[str] = []
    driver_total = (
        report.committed + report.client_aborts + report.forced_aborts
        + report.deadline_misses
    )
    if report.begun != driver_total:
        problems.append(
            f"driver: begun={report.begun} != resolved={driver_total}"
        )
    service_total = (
        doc["commits"] + doc["client_aborts"] + doc["forced_aborts"]
    )
    if doc["sessions_started"] != service_total:
        problems.append(
            f"service: sessions_started={doc['sessions_started']} != "
            f"commits+aborts={service_total}"
        )
    if doc["sessions_started"] != report.begun:
        problems.append(
            f"driver begun={report.begun} != "
            f"service sessions_started={doc['sessions_started']}"
        )
    if doc["commits"] != report.committed:
        problems.append(
            f"driver committed={report.committed} != "
            f"service commits={doc['commits']}"
        )
    live = manager.live_sessions()
    if live:
        problems.append(f"{len(live)} session(s) still live after the run")
    if problems:
        report.conservation_ok = False
        report.conservation_detail = "; ".join(problems)


def _audit_bounds(report: StressReport) -> None:
    """Every forced abort must be attributable to a documented cause.

    Under a deadlock-free ceiling protocol the live service aborts only
    as a deadlock victim of a gate/guard cycle (one victim per resolved
    cycle, counted in ``deadlocks`` / ``cross_shard_deadlocks``) or as a
    sharded cascade of such a victim's other legs (``cascade_aborts``).
    A forced abort beyond that budget means the service invented an abort
    the protocol's documentation does not allow.
    """
    if report.protocol not in DEADLOCK_FREE_CEILING:
        return
    doc = report.stats_doc
    budget = doc.get("deadlocks", 0)
    coordinator = doc.get("coordinator") or {}
    budget += coordinator.get("cross_shard_deadlocks", 0)
    budget += coordinator.get("cascade_aborts", 0)
    if report.forced_aborts > budget:
        report.bounds_ok = False
        report.bounds_detail = (
            f"forced_aborts={report.forced_aborts} exceeds the "
            f"deadlock/cascade budget {budget}"
        )


def simulator_stress_check(
    spec: StressSpec,
    protocol: str = "pcp-da",
    *,
    limit: Optional[int] = 500,
) -> "Any":
    """Replay a schedule prefix in the simulator and run the oracles.

    The virtual-time execution is where the paper's scheduler-dependent
    guarantees hold exactly, so this leg asserts the strongest battery:
    both kernel modes must produce byte-identical traces, the history
    must be serializable (Theorem 3), deadlock-free protocols must not
    deadlock (Theorem 2), and PCP-DA runs additionally get the
    single-blocking and no-restart oracles (Theorem 1).  Returns the
    kernel-mode :class:`~repro.engine.simulator.SimulationResult`.

    Raises:
        InvariantViolation: a kernel/object divergence or a failed
            Theorem 1/2 oracle.
        SerializationViolation: a failed Theorem 3 oracle.
    """
    from repro.engine.simulator import SimConfig, Simulator
    from repro.exceptions import InvariantViolation
    from repro.protocols import make_protocol
    from repro.trace.export import result_to_json
    from repro.verify.invariants import (
        assert_deadlock_free,
        assert_serializable,
        verify_pcp_da_run,
    )

    taskset = build_taskset(spec, limit=limit)
    results = {}
    payloads = {}
    for kernel in (True, False):
        config = SimConfig(kernel=kernel)
        result = Simulator(
            taskset, make_protocol(protocol), config
        ).run()
        results[kernel] = result
        payloads[kernel] = result_to_json(result)
    if payloads[True] != payloads[False]:
        raise InvariantViolation(
            f"kernel/object trace divergence under {protocol} on the "
            f"stress schedule (seed={spec.seed})"
        )
    result = results[True]
    if protocol in ("pcp-da", "pcp-da-checked"):
        verify_pcp_da_run(result)
    else:
        assert_serializable(result)
        if protocol in DEADLOCK_FREE_CEILING:
            assert_deadlock_free(result)
    return result


def append_trend_rows(
    path: Any, rows: List[Dict[str, Any]], *, validate: bool = True
) -> Dict[str, Any]:
    """Append stress trend rows to a ``repro-bench/1`` ledger file.

    Creates the ledger (``mode="stress"``) when ``path`` does not exist;
    otherwise loads it, appends the rows, and recomputes the totals so
    the document stays schema-valid.  Returns the written document.
    """
    import datetime
    import json
    import pathlib
    import platform

    SCHEMA = "repro-bench/1"
    try:  # the validator lives with the bench tooling at the repo root
        from benchmarks.perf_report import validate_bench_document
    except ImportError:  # installed elsewhere: totals math keeps us valid
        validate = False
        validate_bench_document = None  # type: ignore[assignment]

    path = pathlib.Path(path)
    if path.exists():
        doc = json.loads(path.read_text())
        if validate:
            validate_bench_document(doc)
    else:
        doc = {
            "schema": SCHEMA,
            "generated_at": "",
            "mode": "stress",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "results": [],
            "totals": {},
        }
    doc["generated_at"] = (
        datetime.datetime.now(datetime.timezone.utc).isoformat()
    )
    doc["results"] = list(doc["results"]) + list(rows)
    total_events = sum(r["events"] for r in doc["results"])
    total_wall = sum(r["wall_s"] for r in doc["results"])
    doc["totals"] = {
        "events": total_events,
        "wall_s": total_wall,
        "events_per_sec": total_events / total_wall if total_wall else 0.0,
        "ns_per_event": (total_wall / total_events) * 1e9
        if total_events else 0.0,
    }
    if validate:
        validate_bench_document(doc)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


__all__ = [
    "Arrival",
    "CEILING_FAMILY",
    "DEADLOCK_FREE_CEILING",
    "StressReport",
    "StressSpec",
    "append_trend_rows",
    "build_taskset",
    "iter_arrivals",
    "make_catalog",
    "run_stress",
    "simulator_stress_check",
    "zipf_weights",
]
