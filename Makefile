# Verification entry points. `make verify` is the PR gate: the tier-1
# test suite, a 2-job smoke sweep through the parallel runner and a
# throwaway result cache, and a perf-harness smoke run that validates
# the BENCH document schema. See docs/PERFORMANCE.md. `make verify-faults`
# runs the full fault-injection battery, including the full-ledger soak
# cases tier-1 excludes. See docs/RELIABILITY.md. `make verify-service`
# runs the in-process service suites plus the TCP/loadgen soak battery
# (the only target that opens sockets). See docs/SERVICE.md.
# `make verify-sharding` runs the sharded-deployment suites (partitioner,
# coordinator, 1-shard decision equivalence, 4-shard replay) socket-free;
# SOAK=1 adds the multi-shard TCP soaks. See docs/SHARDING.md.
#
# `make bench` is the standing perf-regression harness: the
# pytest-benchmark suites (whole-run throughput + per-event
# microbenchmarks) followed by benchmarks/perf_report.py, which writes
# BENCH_<date>.json — the ledger perf PRs are judged against.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify verify-faults verify-service verify-sharding test smoke \
	bench bench-smoke bench-all

verify: test smoke bench-smoke verify-service verify-sharding

verify-faults:
	$(PYTHON) -m pytest -q -m faults

# The in-process service battery (no sockets): manager semantics, the
# simulator differential, wire dispatch, and the loadgen driven through
# the in-process transport. The TCP soak runs only when SOAK=1.
verify-service:
	$(PYTHON) -m pytest -q tests/test_service_manager.py \
		tests/test_service_differential.py tests/test_service_wire.py \
		tests/test_service_loadgen.py
	$(if $(SOAK),$(PYTHON) -m pytest -q -m service_soak --override-ini \
		'addopts=-q',)

# The sharded-deployment battery (no sockets): partitioners, coordinator
# semantics (routing, gate, guard, cascades, cross-shard deadlock), the
# 1-shard decision-equivalence differential, and the 4-shard replay
# acceptance run. The multi-shard TCP soak runs only when SOAK=1.
verify-sharding:
	$(PYTHON) -m pytest -q tests/test_sharding_partitioner.py \
		tests/test_sharding_coordinator.py \
		tests/test_sharding_equivalence.py tests/test_sharding_replay.py
	$(if $(SOAK),$(PYTHON) -m pytest -q -m sharding_soak --override-ini \
		'addopts=-q',)

test:
	$(PYTHON) -m pytest -x -q

smoke:
	CACHE_DIR=$$(mktemp -d) && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	rm -rf $$CACHE_DIR

bench:
	$(PYTHON) -m pytest benchmarks/bench_simulator_throughput.py \
		benchmarks/bench_event_microbench.py --benchmark-only -q \
		-k "not ledger"
	$(PYTHON) benchmarks/perf_report.py --out BENCH_$$(date +%F).json

# Tiny deterministic perf run (seconds): exercises the same measurement
# and validation code as `make bench` without the full grid.
bench-smoke:
	OUT=$$(mktemp -u) && \
	$(PYTHON) benchmarks/perf_report.py --smoke --out $$OUT && \
	rm -f $$OUT

# Every benchmark, including the slow full-ledger comparison cases.
bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
	$(PYTHON) benchmarks/perf_report.py --out BENCH_$$(date +%F).json
