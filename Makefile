# Verification entry points. `make verify` is the PR gate: the tier-1
# test suite, a 2-job smoke sweep through the parallel runner and a
# throwaway result cache, and a perf-harness smoke run that validates
# the BENCH document schema. See docs/PERFORMANCE.md. `make verify-faults`
# runs the full fault-injection battery, including the full-ledger soak
# cases tier-1 excludes. See docs/RELIABILITY.md.
#
# `make bench` is the standing perf-regression harness: the
# pytest-benchmark suites (whole-run throughput + per-event
# microbenchmarks) followed by benchmarks/perf_report.py, which writes
# BENCH_<date>.json — the ledger perf PRs are judged against.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify verify-faults test smoke bench bench-smoke bench-all

verify: test smoke bench-smoke

verify-faults:
	$(PYTHON) -m pytest -q -m faults

test:
	$(PYTHON) -m pytest -x -q

smoke:
	CACHE_DIR=$$(mktemp -d) && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	rm -rf $$CACHE_DIR

bench:
	$(PYTHON) -m pytest benchmarks/bench_simulator_throughput.py \
		benchmarks/bench_event_microbench.py --benchmark-only -q \
		-k "not ledger"
	$(PYTHON) benchmarks/perf_report.py --out BENCH_$$(date +%F).json

# Tiny deterministic perf run (seconds): exercises the same measurement
# and validation code as `make bench` without the full grid.
bench-smoke:
	OUT=$$(mktemp -u) && \
	$(PYTHON) benchmarks/perf_report.py --smoke --out $$OUT && \
	rm -f $$OUT

# Every benchmark, including the slow full-ledger comparison cases.
bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
	$(PYTHON) benchmarks/perf_report.py --out BENCH_$$(date +%F).json
