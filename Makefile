# Verification entry points. `make verify` is the PR gate: the tier-1
# test suite, a 2-job smoke sweep through the parallel runner and a
# throwaway result cache, and a perf-harness smoke run that validates
# the BENCH document schema. See docs/PERFORMANCE.md. `make verify-faults`
# runs the full fault-injection battery, including the full-ledger soak
# cases tier-1 excludes. See docs/RELIABILITY.md. `make verify-service`
# runs the in-process service suites plus the TCP/loadgen soak battery
# (the only target that opens sockets). See docs/SERVICE.md.
# `make verify-sharding` runs the sharded-deployment suites (partitioner,
# coordinator, 1-shard decision equivalence, 4-shard replay) socket-free;
# SOAK=1 adds the multi-shard TCP soaks. See docs/SHARDING.md.
#
# `make bench` is the standing perf-regression harness: the
# pytest-benchmark suites (whole-run throughput + per-event
# microbenchmarks) followed by benchmarks/perf_report.py, which writes
# BENCH_<date>.json — the ledger perf PRs are judged against.
# `make bench-compare BASE=old.json HEAD=new.json` diffs two ledgers and
# fails on a >10% events/s drop — the review gate for perf PRs.
# `make kernel-smoke` pins the array kernel to the object reference path
# on a corpus slice (socket-free, seconds); part of `make verify`.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify verify-faults verify-service verify-sharding verify-procs \
	test smoke kernel-smoke bench bench-smoke bench-compare bench-all \
	stress stress-smoke stress-procs

verify: test smoke kernel-smoke bench-smoke stress-smoke verify-service \
	verify-sharding verify-procs

verify-faults:
	$(PYTHON) -m pytest -q -m faults

# The in-process service battery (no sockets): manager semantics, the
# simulator differential, wire dispatch, and the loadgen driven through
# the in-process transport. The TCP soak runs only when SOAK=1.
verify-service:
	$(PYTHON) -m pytest -q tests/test_service_manager.py \
		tests/test_service_differential.py tests/test_service_wire.py \
		tests/test_service_loadgen.py
	$(if $(SOAK),$(PYTHON) -m pytest -q -m service_soak --override-ini \
		'addopts=-q',)

# The sharded-deployment battery (no sockets): partitioners, coordinator
# semantics (routing, gate, guard, cascades, cross-shard deadlock), the
# 1-shard decision-equivalence differential, and the 4-shard replay
# acceptance run. The multi-shard TCP soak runs only when SOAK=1.
verify-sharding:
	$(PYTHON) -m pytest -q tests/test_sharding_partitioner.py \
		tests/test_sharding_coordinator.py \
		tests/test_sharding_equivalence.py tests/test_sharding_replay.py
	$(if $(SOAK),$(PYTHON) -m pytest -q -m sharding_soak --override-ini \
		'addopts=-q',)

# The multi-process deployment battery: wire v2 negotiation and frames,
# the remote shard proxy over in-memory streams, the supervisor with an
# injected spawner, and the orphan-hygiene regression (the one tier-1
# case that spawns real children, to prove none survive their parent).
# SOAK=1 adds real shard-host subprocesses over TCP: the five-way parity
# battery and a concurrent stress run through a 4-process deployment.
verify-procs:
	$(PYTHON) -m pytest -q tests/test_procs_wire.py \
		tests/test_procs_proxy.py tests/test_procs_supervisor.py \
		tests/test_procs_orphans.py
	$(if $(SOAK),$(PYTHON) -m pytest -q -m procs_soak --override-ini \
		'addopts=-q',)

test:
	$(PYTHON) -m pytest -x -q

smoke:
	CACHE_DIR=$$(mktemp -d) && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	rm -rf $$CACHE_DIR

# Array-kernel equivalence smoke: representative corpus cases through
# kernel and object paths must emit byte-identical traces.
kernel-smoke:
	$(PYTHON) -m tests.kernel_smoke

bench:
	$(PYTHON) -m pytest benchmarks/bench_simulator_throughput.py \
		benchmarks/bench_event_microbench.py --benchmark-only -q \
		-k "not ledger"
	$(PYTHON) benchmarks/perf_report.py --out BENCH_$$(date +%F).json

# Tiny deterministic perf run (seconds): exercises the same measurement
# and validation code as `make bench` without the full grid, then diffs
# the result against the checked-in smoke baseline with a loose 50%
# threshold — loose enough to ride out container noise, tight enough to
# catch an order-of-magnitude regression on every `make verify`.
bench-smoke:
	OUT=$$(mktemp -u) && \
	$(PYTHON) benchmarks/perf_report.py --smoke --out $$OUT && \
	$(PYTHON) benchmarks/bench_compare.py \
		benchmarks/BENCH_smoke_baseline.json $$OUT \
		--threshold 0.5 --total-only && \
	rm -f $$OUT

# Diff two BENCH ledgers (review gate for perf PRs): non-zero exit when
# any protocol row or the total drops >10% events/s vs BASE.
# Usage: make bench-compare BASE=BENCH_old.json HEAD=BENCH_new.json
bench-compare:
	$(PYTHON) benchmarks/bench_compare.py $(BASE) $(HEAD) \
		$(if $(THRESHOLD),--threshold $(THRESHOLD),)

# Heavy-traffic parity harness (docs/TESTING.md), all phases socket-free:
# sequential decision parity across every execution path, the virtual-time
# simulator oracle, then a >=100k-arrival overload trace with bursts and
# chaos against live 1-shard and 4-shard deployments — serializability,
# conservation, and abort-attribution checked. Appends committed-throughput
# trend rows to BENCH_stress_<date>.json (diffable via make bench-compare).
# Usage: make stress [STRESS_TXNS=200000] [STRESS_LEDGER=path.json]
stress:
	$(PYTHON) -m repro stress \
		--transactions $(if $(STRESS_TXNS),$(STRESS_TXNS),100000) \
		--ledger $(if $(STRESS_LEDGER),$(STRESS_LEDGER),BENCH_stress_$$(date +%F).json)

# Small deterministic slice of the same harness (seconds); part of
# `make verify`. Writes a throwaway ledger so the shard-scaling gate can
# assert the 4-shard smoke run commits at least as much throughput as
# the 1-shard run (tolerance via bench_compare --threshold).
stress-smoke:
	tmp=$$(mktemp -u /tmp/stress_smoke_XXXXXX.json) && \
	$(PYTHON) -m repro stress --smoke --ledger $$tmp && \
	$(PYTHON) benchmarks/bench_compare.py $$tmp --shard-scaling; \
	status=$$?; rm -f $$tmp; exit $$status

# The 100k-arrival overload workload against a real 4-process
# deployment, with the in-process 1-shard run as the ledger baseline.
# Appends @1sh and @4proc trend rows, then prints the shard-scaling
# table. The table here is a report, not a gate (`|| true`): @Nproc
# rows are informational by design (on a single-core box the ratio
# measures socket overhead, not scaling — docs/PERFORMANCE.md), and a
# full trend ledger mixes rows from runs with different workload
# profiles; the enforced scaling gate is `make stress-smoke`, which
# grades a single fresh run. The target still fails when the stress
# run itself fails (serializability, conservation, abort bounds).
# Usage: make stress-procs [STRESS_TXNS=100000] [STRESS_LEDGER=path.json]
stress-procs:
	ledger=$(if $(STRESS_LEDGER),$(STRESS_LEDGER),BENCH_stress_$$(date +%F).json) && \
	$(PYTHON) -m repro stress \
		--transactions $(if $(STRESS_TXNS),$(STRESS_TXNS),100000) \
		--shards 1 --shard-procs 4 --ledger $$ledger && \
	{ $(PYTHON) benchmarks/bench_compare.py $$ledger --shard-scaling || true; }

# Every benchmark, including the slow full-ledger comparison cases.
bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
	$(PYTHON) benchmarks/perf_report.py --out BENCH_$$(date +%F).json
