# Verification entry points. `make verify` is the PR gate: the tier-1
# test suite plus a 2-job smoke sweep through the parallel runner and a
# throwaway result cache, so the fan-out and cache paths are exercised
# on every change. See docs/PERFORMANCE.md. `make verify-faults` runs
# the full fault-injection battery, including the full-ledger soak cases
# tier-1 excludes. See docs/RELIABILITY.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify verify-faults test smoke bench

verify: test smoke

verify-faults:
	$(PYTHON) -m pytest -q -m faults

test:
	$(PYTHON) -m pytest -x -q

smoke:
	CACHE_DIR=$$(mktemp -d) && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	$(PYTHON) -m repro reproduce --jobs 2 --cache-dir $$CACHE_DIR && \
	rm -rf $$CACHE_DIR

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
