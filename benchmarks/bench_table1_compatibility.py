"""Table 1 — the lock compatibility table under dynamic adjustment of
serialization order.

Regenerates the table from the implementation (not from a hard-coded copy)
and checks every cell against the paper:

=============  ===========  ===========
T_L holds      T_H: read    T_H: write
=============  ===========  ===========
read lock      OK           NOK
write lock     OK*          OK
=============  ===========  ===========

``*`` under the condition ``DataRead(T_L) ∩ WriteSet(T_H) = ∅``.
"""

from benchmarks.conftest import banner
from repro.core.compatibility import (
    compatibility_table,
    render_compatibility_table,
)


def test_table1_lock_compatibility(benchmark):
    rows = benchmark(compatibility_table)

    print(banner("Table 1: lock compatibility (regenerated)"))
    print(render_compatibility_table())

    outcomes = {(held, req, cond): ok for held, req, cond, ok in rows}
    # The four unconditional cells.
    assert outcomes[("read", "read", "-")] is True
    assert outcomes[("read", "write", "-")] is False      # Case 2
    assert outcomes[("write", "write", "-")] is True      # Case 3
    # The conditional cell, both ways.
    assert outcomes[("write", "read", "DataRead(T_L) ∩ WriteSet(T_H) = ∅")] is True
    assert outcomes[("write", "read", "DataRead(T_L) ∩ WriteSet(T_H) ≠ ∅")] is False
    assert len(rows) == 5
