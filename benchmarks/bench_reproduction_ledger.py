"""The complete reproduction ledger as a single benchmark.

Runs every paper-vs-measured check (Table 1, Figures 1-5, Example 5,
Section 9, plus the extension experiments) and prints the summary — the
same artifact as ``repro reproduce --extended``.
"""

from benchmarks.conftest import banner
from repro.experiments import render_summary, run_all


def test_reproduction_ledger(benchmark):
    reports = benchmark.pedantic(
        lambda: run_all(extended=True), rounds=1, iterations=1
    )

    print(banner("Reproduction ledger (paper vs measured)"))
    print(render_summary(reports))

    total = sum(len(r.checks) for r in reports)
    passed = sum(r.n_passed for r in reports)
    assert passed == total, render_summary(reports)
    assert total >= 60  # the ledger only ever grows
