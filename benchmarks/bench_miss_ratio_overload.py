"""Deadline-miss ratio under overload (extension).

The classic RTDBS evaluation figure the paper's Section 1 motivates:
sweep the offered load past the schedulable region and measure the
fraction of transaction instances that miss (firm deadlines: a late job is
dropped at its deadline, as a hard/firm RTDBS would).

Expected shapes:

* every protocol is clean in the underloaded region and degrades as load
  grows;
* PCP-DA's curve sits at or below RW-PCP's (fewer unnecessary blockings
  translate into fewer misses);
* the abort-based protocols (2PL-HP, OCC-BC, RW-PCP-A) protect
  high-priority transactions but burn capacity on re-execution, which
  shows up as restarts and, under heavy load, as misses of their own.

Only deferred-update protocols can run with firm deadlines (dropping a
transaction whose writes were installed in place would need undo), so the
update-in-place baselines (rw-pcp, ccp, pcp) run with the soft "record"
policy here; their miss ratios count late completions instead of drops,
which is the same quantity for the shapes asserted.
"""

import statistics

from benchmarks.conftest import banner
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.workloads.generator import WorkloadConfig, generate_taskset

FIRM = ("pcp-da", "2pl-hp", "occ-bc", "rw-pcp-abort")
SOFT = ("rw-pcp", "ccp", "pcp")
LOADS = (0.6, 0.8, 0.95, 1.1)
SEEDS = range(15)


def _miss_sweep():
    table = {}
    for load in LOADS:
        per_protocol = {}
        for protocol in FIRM + SOFT:
            misses, restarts = [], 0
            for seed in SEEDS:
                taskset = generate_taskset(
                    WorkloadConfig(
                        n_transactions=6, n_items=8,
                        write_probability=0.4,
                        hot_access_probability=0.8,
                        target_utilization=load, seed=seed,
                    )
                )
                config = SimConfig(
                    on_miss="abort" if protocol in FIRM else "record",
                    deadlock_action="abort_lowest",
                )
                result = Simulator(
                    taskset, make_protocol(protocol), config
                ).run()
                metrics = compute_metrics(result)
                misses.append(metrics.miss_ratio)
                restarts += metrics.total_restarts
            per_protocol[protocol] = (statistics.mean(misses), restarts)
        table[load] = per_protocol
    return table


def test_miss_ratio_under_overload(benchmark):
    table = benchmark.pedantic(_miss_sweep, rounds=1, iterations=1)

    print(banner("Deadline-miss ratio vs offered load (15 workloads/point)"))
    header = f"{'load':<6}" + "".join(f"{p:>14}" for p in FIRM + SOFT)
    print(header)
    for load, per_protocol in table.items():
        row = f"{load:<6}"
        for protocol in FIRM + SOFT:
            miss, restarts = per_protocol[protocol]
            row += f"{100 * miss:>9.1f}%/{restarts:<4}"
        print(row)
    print("(cells are miss% / total restarts)")

    # Underloaded region: everyone is clean (or nearly).
    for protocol in FIRM + SOFT:
        assert table[0.6][protocol][0] <= 0.02

    # Misses grow with load for every protocol.
    for protocol in FIRM + SOFT:
        assert table[1.1][protocol][0] >= table[0.6][protocol][0]
    # Overload produces real misses somewhere.
    assert max(table[1.1][p][0] for p in FIRM + SOFT) > 0.05

    # PCP-DA never does worse than RW-PCP on average at any load point.
    for load in LOADS:
        assert table[load]["pcp-da"][0] <= table[load]["rw-pcp"][0] + 0.02

    # The ceiling family never restarts; abort-based protocols do (at
    # contention-heavy loads).
    assert table[1.1]["pcp-da"][1] == 0
    assert table[1.1]["rw-pcp"][1] == 0
    assert table[1.1]["2pl-hp"][1] + table[1.1]["occ-bc"][1] > 0
