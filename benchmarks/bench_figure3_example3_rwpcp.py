"""Figure 3 — Example 3 under RW-PCP.

The paper: "the worst case effective blocking time of T1 by T2 is 4 time
units ... The first instance of T1 is blocked by T2 from time 1 to 5 and
T1 misses its deadline at time 6."  T2 runs continuously (inheriting P1)
and commits at 5; T1's second instance meets its deadline.
"""

from benchmarks.conftest import banner, simulate
from repro.engine.simulator import SimConfig
from repro.trace.gantt import render_gantt
from repro.trace.metrics import compute_metrics
from repro.workloads.examples import example3_taskset


def _run():
    return simulate(
        example3_taskset(), "rw-pcp", SimConfig(horizon=11.0, max_instances=2)
    )


def test_figure3_example3_rw_pcp(benchmark):
    result = benchmark(_run)

    print(banner("Figure 3: Example 3 under RW-PCP"))
    print(render_gantt(result))

    t1 = result.job("T1#0")
    assert (t1.block_intervals[0].start, t1.block_intervals[0].end) == (1.0, 5.0)
    assert t1.total_blocking_time() == 4.0
    assert t1.absolute_deadline == 6.0
    assert t1.finish_time == 7.0
    assert t1.missed_deadline

    assert result.job("T2#0").finish_time == 5.0
    assert not result.job("T1#1").missed_deadline

    # Shape claim vs Figure 2: the miss exists only under RW-PCP.
    da = simulate(
        example3_taskset(), "pcp-da", SimConfig(horizon=11.0, max_instances=2)
    )
    assert compute_metrics(da).missed_jobs == 0
    assert compute_metrics(result).missed_jobs == 1
