"""Figure 2 — Example 3 under PCP-DA.

The paper's Section 6 narration: T2 write-locks x at 0 (LC1); T1 preempts
at 1 and read-locks x and y through LC2 despite x being write-locked,
completing at 3; T2 write-locks y at 5; T1's second instance runs 6..8;
T2 completes at 9.  No transaction is ever blocked and no deadline is
missed.
"""

from benchmarks.conftest import banner, simulate
from repro.engine.simulator import SimConfig
from repro.trace.gantt import render_gantt
from repro.trace.metrics import compute_metrics
from repro.verify import verify_pcp_da_run
from repro.workloads.examples import example3_taskset


def _run():
    return simulate(
        example3_taskset(), "pcp-da", SimConfig(horizon=11.0, max_instances=2)
    )


def test_figure2_example3_pcp_da(benchmark):
    result = benchmark(_run)

    print(banner("Figure 2: Example 3 under PCP-DA"))
    print(render_gantt(result))

    grants = [(g.time, g.job, g.item, g.rule) for g in result.trace.lock_events]
    print("grants:", grants)

    assert result.trace.grants_for("T2#0")[0].rule == "LC1"
    assert [(g.time, g.item, g.rule) for g in result.trace.grants_for("T1#0")] == [
        (1.0, "x", "LC2"), (2.0, "y", "LC2"),
    ]
    assert result.job("T1#0").finish_time == 3.0
    assert result.trace.grants_for("T2#0")[1].time == 5.0
    assert result.job("T1#1").finish_time == 8.0
    assert result.job("T2#0").finish_time == 9.0

    metrics = compute_metrics(result)
    assert metrics.total_blocking_time == 0.0
    assert metrics.missed_jobs == 0
    verify_pcp_da_run(result)
