"""Per-event microbenchmarks of the engine's incremental hot paths.

Where ``bench_simulator_throughput`` times whole simulations, these time
the individual operations the incremental fast path optimised — calendar
push/pop with rank-at-push, lock grant/release driving the ceiling index,
``Sysceil`` queries answered from the index, and dispatch-heavy
simulation — so a regression can be attributed to the specific structure
that caused it.

Run via ``make bench`` (or directly:
``PYTHONPATH=src:. pytest benchmarks/bench_event_microbench.py --benchmark-only``).
"""

from repro.engine.event_queue import EventQueue
from repro.engine.job import Job
from repro.engine.lock_table import LockTable
from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import LockMode, TransactionSpec, read, write
from repro.protocols import make_protocol
from repro.workloads.generator import WorkloadConfig, generate_taskset

_N_EVENTS = 2_000


def test_event_queue_push_pop_cycle(benchmark):
    """Rank-at-push calendar churn: the floor under every other number."""

    def churn():
        q = EventQueue()
        for i in range(_N_EVENTS):
            q.push(float(i % 97), ("op_done", "arrival", "deadline")[i % 3], i)
        total = 0
        while q:
            total += q.pop().payload
        return total

    assert benchmark(churn) == sum(range(_N_EVENTS))


def _locking_fixture():
    specs = [
        TransactionSpec("T1", (read("a"), write("b"))),
        TransactionSpec("T2", (write("a"), read("c"))),
        TransactionSpec("T3", (read("b"), write("c"), read("d"))),
        TransactionSpec("T4", (read("a"), read("d"))),
    ]
    taskset = assign_by_order(specs)
    jobs = tuple(Job(spec, 0, 0.0) for spec in taskset)
    protocol = make_protocol("rw-pcp")
    table = LockTable()
    protocol.bind(taskset, table)
    return table, jobs, protocol


def test_grant_release_with_ceiling_index(benchmark):
    """Lock-table mutation cost including incremental index maintenance."""
    table, jobs, _ = _locking_fixture()
    pairs = [
        (jobs[0], "a", LockMode.READ),
        (jobs[1], "c", LockMode.READ),
        (jobs[2], "b", LockMode.READ),
        (jobs[2], "c", LockMode.WRITE),
        (jobs[3], "d", LockMode.READ),
    ]

    def cycle():
        for job, item, mode in pairs:
            table.grant(job, item, mode)
        for job, item, mode in reversed(pairs):
            table.release(job, item, mode)

    benchmark(cycle)
    assert not table.all_entries()


def test_sysceil_query_from_index(benchmark):
    """The ``Sysceil`` query a ceiling protocol issues per lock request."""
    table, jobs, protocol = _locking_fixture()
    table.grant(jobs[0], "a", LockMode.READ)
    table.grant(jobs[2], "b", LockMode.READ)
    table.grant(jobs[2], "c", LockMode.WRITE)

    def query():
        return protocol.system_ceiling(jobs[1])

    level = benchmark(query)
    assert level == protocol.system_ceiling(jobs[1])


def test_dispatch_heavy_simulation(benchmark):
    """A contended workload where the ready heap and blocked set churn:
    per-event dispatch cost end to end."""
    taskset = generate_taskset(
        WorkloadConfig(
            n_transactions=8, n_items=6, write_probability=0.5,
            hot_access_probability=0.85, target_utilization=0.75, seed=11,
        )
    )
    config = SimConfig(deadlock_action="abort_lowest")

    def run():
        sim = Simulator(taskset, make_protocol("pcp-da"), config)
        sim.run()
        return sim

    sim = benchmark(run)
    assert sim.events_processed > 0


def test_priority_recompute_under_inheritance(benchmark):
    """Blocking chains force priority recomputation over the active set."""
    taskset = generate_taskset(
        WorkloadConfig(
            n_transactions=10, n_items=4, write_probability=0.6,
            hot_access_probability=0.9, target_utilization=0.8, seed=3,
        )
    )
    config = SimConfig(deadlock_action="abort_lowest")

    def run():
        sim = Simulator(taskset, make_protocol("pip-2pl"), config)
        sim.run()
        return sim

    sim = benchmark(run)
    assert sim.events_processed > 0
