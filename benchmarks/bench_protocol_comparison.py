"""Protocol comparison — quantifying Sections 3 and 6 across the family.

For randomly generated workloads at increasing data contention, simulate
the identical task set under every protocol and compare the runtime
quantities the paper argues about:

* total blocking time (PCP-DA avoids RW-PCP's two unnecessary classes),
* deadline miss ratio,
* transaction restarts (zero for the ceiling family, nonzero for 2PL-HP),
* the maximum system ceiling (Figure 4/5's push-down claim).
"""

import statistics

from benchmarks.conftest import banner
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOLS = ("pcp-da", "rw-pcp", "ccp", "pcp", "ipcp", "pip-2pl", "2pl-hp", "2pl")
SEEDS = range(25)
HOT_LEVELS = (0.3, 0.6, 0.9)


def _simulate_grid():
    """{hot_probability: {protocol: aggregated metrics}}."""
    grid = {}
    for hot in HOT_LEVELS:
        per_protocol = {}
        for protocol in PROTOCOLS:
            blocking, misses, restarts, ceilings = [], [], [], []
            for seed in SEEDS:
                taskset = generate_taskset(
                    WorkloadConfig(
                        n_transactions=6, n_items=8,
                        write_probability=0.4,
                        hot_access_probability=hot,
                        target_utilization=0.6, seed=seed,
                    )
                )
                result = Simulator(
                    taskset, make_protocol(protocol),
                    SimConfig(deadlock_action="abort_lowest"),
                ).run()
                metrics = compute_metrics(result)
                blocking.append(metrics.total_blocking_time)
                misses.append(metrics.miss_ratio)
                restarts.append(metrics.total_restarts)
                ceilings.append(metrics.max_sysceil)
            per_protocol[protocol] = {
                "blocking": statistics.mean(blocking),
                "miss_ratio": statistics.mean(misses),
                "restarts": sum(restarts),
                "max_sysceil": statistics.mean(ceilings),
            }
        grid[hot] = per_protocol
    return grid


def test_protocol_comparison(benchmark):
    grid = benchmark.pedantic(_simulate_grid, rounds=1, iterations=1)

    for hot, per_protocol in grid.items():
        print(banner(f"Protocol comparison at hot-set probability {hot}"))
        print(
            f"{'protocol':<10} {'blocking':>10} {'miss%':>8} "
            f"{'restarts':>9} {'maxceil':>8}"
        )
        for protocol in PROTOCOLS:
            m = per_protocol[protocol]
            print(
                f"{protocol:<10} {m['blocking']:>10.2f} "
                f"{100 * m['miss_ratio']:>7.1f}% {m['restarts']:>9} "
                f"{m['max_sysceil']:>8.2f}"
            )

    high = grid[HOT_LEVELS[-1]]

    # Shape claims at the highest contention level:
    # 1. PCP-DA blocks no more than RW-PCP, which blocks no more than the
    #    exclusive-lock original PCP.
    assert high["pcp-da"]["blocking"] <= high["rw-pcp"]["blocking"] + 1e-9
    assert high["rw-pcp"]["blocking"] <= high["pcp"]["blocking"] + 1e-9
    # 2. The ceiling family never restarts; 2PL-HP pays in restarts.
    for protocol in ("pcp-da", "rw-pcp", "ccp", "pcp", "ipcp"):
        assert high[protocol]["restarts"] == 0
    # IPCP converts all lock blocking into dispatch interference.
    assert high["ipcp"]["blocking"] == 0.0
    assert high["2pl-hp"]["restarts"] > 0
    # 3. The Max_Sysceil push-down: PCP-DA's average ceiling is the lowest
    #    of the ceiling protocols.
    for protocol in ("rw-pcp", "pcp"):
        assert high["pcp-da"]["max_sysceil"] <= high[protocol]["max_sysceil"] + 1e-9
    # 4. Blocking grows with contention for the conservative protocols.
    assert grid[0.9]["pcp"]["blocking"] >= grid[0.3]["pcp"]["blocking"] - 1e-9
