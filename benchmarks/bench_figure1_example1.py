"""Figure 1 — Example 1 under RW-PCP: the two unnecessary blockings.

The paper's Section 3 narration: T3 write-locks x at t=0; T2 is
*ceiling-blocked* at t=1 although y is free; T1 is *conflict-blocked* at
t=2; both wait until T3 completes at t=3; T1 then completes at 4 and T2 at
5.  The PCP-DA counterpart (not drawn in the paper, but the section's
point) shows both blockings avoided.
"""

from benchmarks.conftest import banner, simulate
from repro.trace.gantt import render_gantt
from repro.trace.metrics import compute_metrics
from repro.workloads.examples import example1_taskset


def _run_both():
    taskset = example1_taskset()
    rw = simulate(taskset, "rw-pcp")
    da = simulate(taskset, "pcp-da")
    return rw, da


def test_figure1_example1(benchmark):
    rw, da = benchmark(_run_both)

    print(banner("Figure 1: Example 1 under RW-PCP"))
    print(render_gantt(rw))
    print(banner("Example 1 under PCP-DA (both blockings avoided)"))
    print(render_gantt(da))

    # --- RW-PCP: the paper's timeline -------------------------------
    assert rw.job("T3#0").finish_time == 3.0
    assert rw.job("T1#0").finish_time == 4.0
    assert rw.job("T2#0").finish_time == 5.0

    t2_denial = rw.trace.denials_for("T2#0")[0]
    assert t2_denial.time == 1.0 and "ceiling" in t2_denial.rule
    t1_denial = rw.trace.denials_for("T1#0")[0]
    assert t1_denial.time == 2.0 and "conflict" in t1_denial.rule

    rw_metrics = compute_metrics(rw)
    assert rw_metrics.blocking_of("T1") == 1.0
    assert rw_metrics.blocking_of("T2") == 2.0

    # --- PCP-DA: both blockings avoided ------------------------------
    da_metrics = compute_metrics(da)
    assert da_metrics.total_blocking_time == 0.0
    assert da.job("T1#0").finish_time == 3.0
    assert da.job("T2#0").finish_time == 2.0

    # Shape claim: PCP-DA strictly dominates on this example.
    assert da_metrics.total_blocking_time < rw_metrics.total_blocking_time
