"""Priority inversion vs interposing transactions — the Section 1 figure.

"The blocking delay due to priority inversion can be unbounded, which is
unacceptable in mission-critical real-time applications."  This benchmark
makes the sentence quantitative: a high-priority reader blocks on a
low-priority writer while N middle-priority compute transactions arrive.
Under plain 2PL the inversion grows linearly with N; priority inheritance
(PIP-2PL, RW-PCP) pins it to the blocker's remaining critical section; and
PCP-DA eliminates this particular inversion altogether (the reader
preempts through Case 1).
"""

from benchmarks.conftest import banner
from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.trace.metrics import priority_inversion_time

PROTOCOLS = ("2pl", "pip-2pl", "rw-pcp", "pcp-da")
MIDDLEMEN = (0, 1, 2, 4)


def _scenario(n_middlemen):
    specs = [TransactionSpec("H", (read("x", 1.0),), offset=1.0)]
    for i in range(n_middlemen):
        specs.append(
            TransactionSpec(f"M{i + 1}", (compute(5.0),), offset=2.0 + i)
        )
    specs.append(TransactionSpec("L", (write("x", 3.0),), offset=0.0))
    return assign_by_order(specs)


def _sweep():
    table = {}
    for n in MIDDLEMEN:
        per_protocol = {}
        for protocol in PROTOCOLS:
            result = Simulator(
                _scenario(n), make_protocol(protocol),
                SimConfig(deadlock_action="abort_lowest"),
            ).run()
            per_protocol[protocol] = priority_inversion_time(result, "H#0")
        table[n] = per_protocol
    return table


def test_priority_inversion_growth(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print(banner("Priority inversion of H vs interposing transactions"))
    print(f"{'middlemen':<10}" + "".join(f"{p:>10}" for p in PROTOCOLS))
    for n, per_protocol in table.items():
        print(
            f"{n:<10}" + "".join(f"{per_protocol[p]:>10.1f}" for p in PROTOCOLS)
        )

    # Plain 2PL: inversion grows with every middleman (unbounded).
    series = [table[n]["2pl"] for n in MIDDLEMEN]
    assert all(b > a for a, b in zip(series, series[1:]))

    # Inheritance protocols: pinned to the blocker's remaining critical
    # section (2 units here) regardless of N.
    for protocol in ("pip-2pl", "rw-pcp"):
        values = {table[n][protocol] for n in MIDDLEMEN}
        assert values == {2.0}, (protocol, values)

    # PCP-DA: this inversion does not exist (write preemptability).
    assert all(table[n]["pcp-da"] == 0.0 for n in MIDDLEMEN)
