"""Example 5 (Section 7) — why condition (2) alone deadlocks.

The paper derives LC3/LC4 by exhibiting a deadlock under the naive
conditions (1) ``P_i > Sysceil`` / (2) ``P_i >= HPW(x)``: T_L read-locks x,
T_H preempts and read-locks y via (2), then each blocks on the other's
read lock.  This benchmark runs the weakened protocol (deadlock, detected
as a wait-for cycle at t=3) and real PCP-DA (T_H is ceiling-blocked at t=1
instead; everything commits).
"""

from benchmarks.conftest import banner, simulate
from repro.engine.simulator import SimConfig
from repro.trace.gantt import render_gantt
from repro.verify import verify_pcp_da_run
from repro.workloads.examples import example5_taskset


def _run_both():
    weak = simulate(
        example5_taskset(), "weak-pcp-da", SimConfig(deadlock_action="halt")
    )
    real = simulate(example5_taskset(), "pcp-da")
    return weak, real


def test_example5_deadlock_demonstration(benchmark):
    weak, real = benchmark(_run_both)

    print(banner("Example 5 under weak-pcp-da (conditions (1)/(2) only)"))
    assert weak.deadlock is not None
    print(
        f"deadlock detected at t={weak.deadlock.time:g}: "
        f"{' -> '.join(weak.deadlock.cycle)}"
    )
    print(banner("Example 5 under pcp-da (LC3/LC4 prevent the cycle)"))
    print(render_gantt(real))

    # The weakened protocol deadlocks exactly as narrated.
    assert weak.deadlock.time == 3.0
    assert set(weak.deadlock.cycle) == {"TH#0", "TL#0"}
    th_grant = weak.trace.grants_for("TH#0")[0]
    assert th_grant.item == "y" and "cond(2)" in th_grant.rule

    # Real PCP-DA: no deadlock; T_H is blocked once, then both commit.
    assert real.deadlock is None
    assert real.job("TL#0").finish_time == 3.0
    assert real.job("TH#0").finish_time == 5.0
    denial = real.trace.denials_for("TH#0")[0]
    assert denial.item == "y" and "ceiling" in denial.rule
    verify_pcp_da_run(real)
