"""Paired statistical comparison: is PCP-DA's advantage significant?

Runs the same seeded workloads under PCP-DA and its comparators and
computes paired per-seed differences with 95% confidence intervals
(`repro.stats`).  Pairing removes across-workload variance, so the
intervals are tight enough to state the paper's comparative claims as
statistics rather than anecdotes:

* total blocking: RW-PCP minus PCP-DA is positive with a CI excluding 0;
* the same against the original PCP, with a larger margin.
"""

from benchmarks.conftest import banner
from repro.stats import paired_difference, run_batch, summarize
from repro.workloads.generator import WorkloadConfig

PROTOCOLS = ("pcp-da", "rw-pcp", "pcp", "ccp")
N_WORKLOADS = 30


def _collect():
    workloads = [
        WorkloadConfig(
            n_transactions=6, n_items=6, write_probability=0.5,
            hot_access_probability=0.9, target_utilization=0.7, seed=seed,
        )
        for seed in range(N_WORKLOADS)
    ]
    return run_batch(PROTOCOLS, workloads)


def test_paired_blocking_comparison(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    print(banner("Paired comparison: total blocking time (95% CI)"))
    means = summarize(rows, metric="total_blocking_time")
    for protocol in PROTOCOLS:
        print(f"{protocol:<8} {means[(protocol,)].render()}")

    print("\npaired differences (baseline - pcp-da):")
    for baseline in ("rw-pcp", "pcp"):
        diff = paired_difference(
            rows, metric="total_blocking_time",
            baseline=baseline, contender="pcp-da",
        )
        lo, hi = diff.ci95
        print(f"  {baseline:<8} {diff.render()}  CI=({lo:.3f}, {hi:.3f})")

    # The paper's claim as statistics: PCP-DA blocks less than RW-PCP and
    # PCP, with the paired 95% CI excluding zero.
    for baseline in ("rw-pcp", "pcp"):
        diff = paired_difference(
            rows, metric="total_blocking_time",
            baseline=baseline, contender="pcp-da",
        )
        assert diff.mean > 0
        assert diff.ci95[0] > 0, (
            f"{baseline}: CI {diff.ci95} does not exclude zero"
        )

    # Nobody in the ceiling family restarts anything.
    assert all(row.restarts == 0 for row in rows)
