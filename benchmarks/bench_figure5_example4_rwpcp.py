"""Figure 5 — Example 4 under RW-PCP, including the ``Max_Sysceil`` trace.

The paper: "T3 encounters ceiling blocking since its priority is not
higher than Sysceil ... T1 experiences conflict blocking since x has
already been write-locked by T4.  The effective blocking times of T1 and
T3 blocked by T4 are 1 and 4 time units respectively."  ``Max_Sysceil``
reaches P1 — strictly above PCP-DA's P2, the "push-down" the paper calls a
main advantage.
"""

from benchmarks.conftest import banner, simulate
from repro.trace.gantt import render_gantt
from repro.trace.metrics import compute_metrics
from repro.trace.sysceil import SysceilTrace
from repro.workloads.examples import example4_taskset


def _run():
    return simulate(example4_taskset(), "rw-pcp")


def test_figure5_example4_rw_pcp(benchmark):
    result = benchmark(_run)

    print(banner("Figure 5: Example 4 under RW-PCP"))
    print(render_gantt(result))
    trace = SysceilTrace.from_result(result)
    print(trace.render(label="Max_Sysceil"))

    # The two blockings, attributed to T4.
    t3 = result.job("T3#0")
    assert t3.total_blocking_time() == 4.0
    assert t3.block_intervals[0].blockers == ("T4#0",)
    assert "ceiling" in result.trace.denials_for("T3#0")[0].rule

    t1 = result.job("T1#0")
    assert t1.total_blocking_time() == 1.0
    assert t1.block_intervals[0].blockers == ("T4#0",)
    assert "conflict" in result.trace.denials_for("T1#0")[0].rule

    # Completion times.
    assert result.job("T4#0").finish_time == 5.0
    assert result.job("T1#0").finish_time == 7.0
    assert result.job("T3#0").finish_time == 9.0
    assert result.job("T2#0").finish_time == 11.0

    # Max_Sysceil reaches P1; PCP-DA's stays at P2 (the push-down claim).
    p1, p2 = 4, 3
    assert trace.max_level == p1
    da_trace = SysceilTrace.from_result(simulate(example4_taskset(), "pcp-da"))
    assert da_trace.max_level == p2 < trace.max_level

    # And the blockings simply do not exist under PCP-DA.
    da_metrics = compute_metrics(simulate(example4_taskset(), "pcp-da"))
    assert da_metrics.total_blocking_time == 0.0
