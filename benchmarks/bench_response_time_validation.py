"""Response-time analysis validation (extension).

The RTA extension of Section 9 (see ``repro.analysis.response_time``)
claims to upper-bound every transaction's worst-case response time under
PCP-DA.  This benchmark validates the claim empirically: random task sets
are released synchronously (offset 0 — the critical instant for the
highest-priority levels) and simulated over their hyperperiod; every
observed response time must be at most the analytical bound, and for the
highest-priority transaction the bound should be *reasonably tight*
(within its own C + B, not wildly pessimistic).
"""

from benchmarks.conftest import banner
from repro.analysis.response_time import response_times, rta_schedulable
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.workloads.generator import WorkloadConfig, generate_taskset

SEEDS = range(25)


def _validate():
    checked = 0
    violations = []
    slack_top = []
    for seed in SEEDS:
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=5, n_items=6, write_probability=0.4,
                hot_access_probability=0.8, target_utilization=0.6,
                seed=seed,
            )
        )
        if not rta_schedulable(taskset, "pcp-da"):
            continue
        bounds = response_times(taskset, "pcp-da")
        result = Simulator(
            taskset, make_protocol("pcp-da"), SimConfig()
        ).run()
        checked += 1
        observed = {}
        for job in result.jobs:
            if job.response_time is None:
                continue
            name = job.spec.name
            observed[name] = max(observed.get(name, 0.0), job.response_time)
        for name, worst in observed.items():
            if worst > bounds[name] + 1e-6:
                violations.append((seed, name, worst, bounds[name]))
        top = max(taskset, key=lambda s: s.priority or 0).name
        if top in observed and bounds[top] > 0:
            slack_top.append(observed[top] / bounds[top])
    return checked, violations, slack_top


def test_rta_upper_bounds_simulation(benchmark):
    checked, violations, slack_top = benchmark.pedantic(
        _validate, rounds=1, iterations=1
    )

    print(banner("RTA validation: observed worst response vs analytical bound"))
    print(f"task sets checked (RTA-schedulable): {checked}")
    print(f"bound violations: {len(violations)}")
    if slack_top:
        print(
            "highest-priority tightness (observed/bound): "
            f"min={min(slack_top):.2f} mean={sum(slack_top)/len(slack_top):.2f} "
            f"max={max(slack_top):.2f}"
        )

    assert checked >= 10
    assert violations == [], f"RTA bound violated: {violations[:3]}"
    # The top-priority bound is not absurdly loose: simulation reaches at
    # least half of it somewhere in the corpus.
    assert max(slack_top) >= 0.5
