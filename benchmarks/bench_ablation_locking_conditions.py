"""Ablation — what LC3, LC4, and write-preemptability each buy.

PCP-DA improves on RW-PCP through three mechanisms: write locks raise no
ceiling (Lemma 1), and the extra read-admission conditions LC3/LC4.  This
benchmark measures them separately:

* a random-workload sweep reports how often each locking condition fires
  and the blocking under each ablated variant (LC3/LC4 are *rare* on
  random workloads — LC4 in particular needs the requester's priority to
  equal ``HPW(x)`` exactly — so the aggregate effect is small; the
  dominant win over RW-PCP is write preemptability itself);
* two targeted scenarios demonstrate the strict effect of LC3 and LC4:
  the paper's Example 4 (whose t=1 grant is pure LC4) and the LC3
  admission pattern from Section 5.

All ablated variants must remain serializable and deadlock-free — the
conditions only *add* admissions; safety never depends on them.
"""

import random
import statistics
from collections import Counter

from benchmarks.conftest import banner, simulate
from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.verify import assert_deadlock_free, assert_serializable
from repro.workloads.examples import example4_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset

VARIANTS = {
    "full": {},
    "no-LC3": {"enable_lc3": False},
    "no-LC4": {"enable_lc4": False},
    "no-LC3/4": {"enable_lc3": False, "enable_lc4": False},
}
SEEDS = range(30)


def _jittered_taskset(seed: int) -> TaskSet:
    """Random workload with phase offsets (offsets maximise the mid-run
    preemptions that make LC3/LC4 reachable)."""
    base = generate_taskset(
        WorkloadConfig(
            n_transactions=8, n_items=5, write_probability=0.35,
            hot_access_probability=0.95, target_utilization=0.75,
            ops_per_txn=(3, 5), seed=seed,
        )
    )
    rng = random.Random(seed + 1000)
    return TaskSet([
        TransactionSpec(
            s.name, s.operations, priority=s.priority, period=s.period,
            offset=float(rng.randint(0, int(s.period or 2) // 2)),
        )
        for s in base
    ])


def _sweep():
    blocking = {label: [] for label in VARIANTS}
    rule_counts = {label: Counter() for label in VARIANTS}
    for label, kwargs in VARIANTS.items():
        for seed in SEEDS:
            taskset = _jittered_taskset(seed)
            result = Simulator(
                taskset, make_protocol("pcp-da", **kwargs), SimConfig()
            ).run()
            assert_serializable(result)
            assert_deadlock_free(result)
            blocking[label].append(compute_metrics(result).total_blocking_time)
            for event in result.trace.lock_events:
                rule_counts[label][event.rule.split(":")[0]] += 1
    rw = []
    for seed in SEEDS:
        result = Simulator(
            _jittered_taskset(seed), make_protocol("rw-pcp"), SimConfig()
        ).run()
        rw.append(compute_metrics(result).total_blocking_time)
    return blocking, rule_counts, rw


def test_ablation_random_workload_sweep(benchmark):
    blocking, rule_counts, rw = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )

    print(banner("Ablation: mean total blocking time per PCP-DA variant"))
    for label in VARIANTS:
        counts = rule_counts[label]
        print(
            f"{label:<10} blocking={statistics.mean(blocking[label]):7.3f}  "
            f"LC2={counts.get('LC2', 0):>5} LC3={counts.get('LC3', 0):>4} "
            f"LC4={counts.get('LC4', 0):>4}"
        )
    print(f"{'rw-pcp':<10} blocking={statistics.mean(rw):7.3f}  (reference)")

    # Each admission rule removes a blocking *locally*, but a grant can
    # reshuffle the downstream schedule (a classic scheduling anomaly), so
    # aggregate dominance only holds up to a small tolerance.  The strict
    # per-scenario effects are asserted by the two targeted benchmarks
    # below.  What must hold robustly: every variant (even LC1/LC2-only)
    # blocks far less than RW-PCP — write preemptability is the dominant
    # mechanism.
    full_mean = statistics.mean(blocking["full"])
    for label in ("no-LC3", "no-LC4", "no-LC3/4"):
        assert full_mean <= statistics.mean(blocking[label]) * 1.05 + 1e-9
    for label in VARIANTS:
        assert statistics.mean(blocking[label]) <= statistics.mean(rw) + 1e-9

    # LC3 fires on this corpus and vanishes when disabled.
    assert rule_counts["full"]["LC3"] > 0
    assert rule_counts["no-LC3"]["LC3"] == 0
    assert rule_counts["no-LC3/4"]["LC4"] == 0


def test_ablation_example4_needs_lc4(benchmark):
    """Example 4's t=1 grant is exactly LC4: removing it re-introduces the
    ceiling blocking the paper celebrates avoiding."""
    result = benchmark(
        lambda: simulate(example4_taskset(), "pcp-da", enable_lc4=False)
    )
    t3 = result.job("T3#0")
    print(banner("Ablation: Example 4 without LC4"))
    print(f"T3 blocking time without LC4: {t3.total_blocking_time():g} "
          "(0 with the full protocol)")
    assert t3.total_blocking_time() > 0.0
    full = simulate(example4_taskset(), "pcp-da")
    assert full.job("T3#0").total_blocking_time() == 0.0


def test_ablation_lc3_targeted_scenario(benchmark):
    """The LC3 admission pattern: a mid-priority reader passes LC3 while
    LC2 is held down by a low-priority reader's high write ceiling."""
    taskset = assign_by_order([
        TransactionSpec("H", (write("a", 1.0),), offset=9.0),
        TransactionSpec("M", (read("c", 1.0),), offset=1.0),
        TransactionSpec("L", (read("a", 2.0), compute(1.0)), offset=0.0),
    ])

    def run_pair():
        return (
            simulate(taskset, "pcp-da"),
            simulate(taskset, "pcp-da", enable_lc3=False),
        )

    full, ablated = benchmark(run_pair)
    print(banner("Ablation: targeted LC3 scenario"))
    print(f"M blocking with LC3:    {full.job('M#0').total_blocking_time():g}")
    print(f"M blocking without LC3: {ablated.job('M#0').total_blocking_time():g}")
    assert full.trace.grants_for("M#0")[0].rule == "LC3"
    assert full.job("M#0").total_blocking_time() == 0.0
    assert ablated.job("M#0").total_blocking_time() > 0.0
