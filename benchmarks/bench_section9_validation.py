"""Section 9 validation — the bound is *sufficient*: sets it accepts never
miss a deadline in simulation.

The paper's analysis is purely static.  This extension closes the loop: we
generate random task sets, keep those the PCP-DA RM bound accepts, simulate
each over its full hyperperiod under PCP-DA, and require zero deadline
misses.  (The converse need not hold — the bound is not necessary — which
the benchmark also demonstrates by counting bound-rejected sets that
nevertheless simulate cleanly.)
"""

from benchmarks.conftest import banner
from repro.analysis.rm_bound import rm_schedulable
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.workloads.generator import WorkloadConfig, generate_taskset

N_SETS = 30


def _generate(seed):
    return generate_taskset(
        WorkloadConfig(
            n_transactions=5,
            n_items=6,
            write_probability=0.5,
            hot_access_probability=0.8,
            target_utilization=0.55 + 0.3 * (seed % 5) / 5.0,
            seed=seed,
        )
    )


def _validate_accepted_sets():
    accepted = rejected = 0
    accepted_misses = 0
    rejected_but_clean = 0
    for seed in range(N_SETS):
        taskset = _generate(seed)
        result = Simulator(
            taskset, make_protocol("pcp-da"), SimConfig()
        ).run()
        misses = compute_metrics(result).missed_jobs
        if rm_schedulable(taskset, "pcp-da"):
            accepted += 1
            accepted_misses += misses
        else:
            rejected += 1
            if misses == 0:
                rejected_but_clean += 1
    return accepted, rejected, accepted_misses, rejected_but_clean


def test_section9_bound_is_sufficient(benchmark):
    accepted, rejected, accepted_misses, rejected_but_clean = (
        benchmark.pedantic(_validate_accepted_sets, rounds=1, iterations=1)
    )

    print(banner("Section 9 validation: RM bound vs hyperperiod simulation"))
    print(f"sets accepted by the bound : {accepted}")
    print(f"  deadline misses observed : {accepted_misses}")
    print(f"sets rejected by the bound : {rejected}")
    print(f"  of which simulate cleanly: {rejected_but_clean} "
          "(the bound is sufficient, not necessary)")

    assert accepted >= 5, "sweep produced too few accepted sets to be meaningful"
    assert accepted_misses == 0
