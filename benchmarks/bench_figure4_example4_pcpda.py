"""Figure 4 — Example 4 under PCP-DA, including the ``Max_Sysceil`` trace.

The paper's narration: T4 read-locks y at 0; T3 preempts at 1 and
read-locks z through **LC4** (T* = T4, z ∉ WriteSet(T4)), write-locks z at
2 (LC1), completes at 3; T4 resumes and write-locks x at 3 (LC1); T1
preempts at 4 and read-locks the write-locked x through **LC2**,
completing at 6; T4 completes at 9; T2 write-locks y at 9 and completes at
11.  The dotted ``Max_Sysceil`` line never exceeds P2 and drops to the
dummy level at t=9.
"""

from benchmarks.conftest import banner, simulate
from repro.model.spec import DUMMY_PRIORITY
from repro.trace.gantt import render_gantt
from repro.trace.sysceil import SysceilTrace
from repro.verify import verify_pcp_da_run
from repro.workloads.examples import example4_taskset


def _run():
    return simulate(example4_taskset(), "pcp-da")


def test_figure4_example4_pcp_da(benchmark):
    result = benchmark(_run)

    print(banner("Figure 4: Example 4 under PCP-DA"))
    print(render_gantt(result))
    trace = SysceilTrace.from_result(result)
    print(trace.render(label="Max_Sysceil"))

    # Grant instants and the conditions that fired.
    assert (
        [(g.time, g.item, g.rule) for g in result.trace.grants_for("T4#0")]
        == [(0.0, "y", "LC2"), (3.0, "x", "LC1")]
    )
    assert (
        [(g.time, g.item, g.rule) for g in result.trace.grants_for("T3#0")]
        == [(1.0, "z", "LC4"), (2.0, "z", "LC1")]
    )
    assert (
        [(g.time, g.item, g.rule) for g in result.trace.grants_for("T1#0")]
        == [(4.0, "x", "LC2")]
    )

    # Completion times.
    assert result.job("T3#0").finish_time == 3.0
    assert result.job("T1#0").finish_time == 6.0
    assert result.job("T4#0").finish_time == 9.0
    assert result.job("T2#0").finish_time == 11.0

    # Nobody blocks; Max_Sysceil stays at P2 and drops to dummy at 9.
    assert all(j.total_blocking_time() == 0.0 for j in result.jobs)
    p2 = 3
    assert trace.max_level == p2
    assert trace.level_at(8.9) == p2
    assert trace.level_at(9.5) == DUMMY_PRIORITY

    verify_pcp_da_run(result)
