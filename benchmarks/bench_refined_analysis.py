"""Refined blocking analysis — how much tighter than Section 9's bound?

The paper bounds ``B_i`` by the blocker's whole execution time; the
critical-section refinement (``repro.analysis.refined_blocking``) counts
only the acquisition-to-commit tail.  This benchmark quantifies the gap on
random workloads and shows the acceptance-rate gain when the refined terms
feed the same RM utilisation-bound test.
"""

import statistics

from benchmarks.conftest import banner
from repro.analysis.blocking import blocking_terms
from repro.analysis.refined_blocking import refined_blocking_terms
from repro.analysis.rm_bound import rm_schedulable
from repro.workloads.generator import WorkloadConfig, generate_taskset

SEEDS = range(40)
UTILIZATION = 0.7


def _study():
    ratios = []
    classic_accepted = refined_accepted = 0
    for seed in SEEDS:
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=6, write_probability=0.4,
                hot_access_probability=0.8, ops_per_txn=(2, 5),
                compute_fraction=0.5, target_utilization=UTILIZATION,
                seed=seed,
            )
        )
        classic = blocking_terms(taskset, "pcp-da")
        refined = refined_blocking_terms(taskset, "pcp-da")
        for name in taskset.names:
            if classic[name] > 0:
                ratios.append(refined[name] / classic[name])
        classic_accepted += rm_schedulable(taskset, blocking=classic)
        refined_accepted += rm_schedulable(taskset, blocking=refined)
    return ratios, classic_accepted, refined_accepted


def test_refined_blocking_tightness(benchmark):
    ratios, classic_accepted, refined_accepted = benchmark.pedantic(
        _study, rounds=1, iterations=1
    )

    print(banner("Refined vs whole-C blocking terms (PCP-DA analysis)"))
    print(f"nonzero blocking terms analysed: {len(ratios)}")
    print(
        f"refined/classic ratio: mean={statistics.mean(ratios):.3f} "
        f"min={min(ratios):.3f} max={max(ratios):.3f}"
    )
    print(
        f"RM-bound acceptance at utilisation {UTILIZATION}: "
        f"classic {classic_accepted}/{len(SEEDS)}, "
        f"refined {refined_accepted}/{len(SEEDS)}"
    )

    # Refinement is sound (never exceeds 1) and strictly helps somewhere.
    assert ratios and max(ratios) <= 1.0 + 1e-9
    assert min(ratios) < 1.0
    # The refined analysis never accepts fewer sets.
    assert refined_accepted >= classic_accepted
