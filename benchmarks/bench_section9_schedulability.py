"""Section 9 — worst-case schedulability analysis: PCP-DA vs RW-PCP vs PCP.

The paper's analytical result: ``BTS_i`` under PCP-DA is a subset of
RW-PCP's (write-only blockers drop out), so ``B_i`` shrinks and the
rate-monotonic condition admits strictly more task sets.  This benchmark
quantifies the claim three ways over randomly generated workloads:

1. per-transaction blocking terms on a contended example set,
2. the fraction of random task sets accepted by the RM bound as
   utilisation grows (the classic schedulable-fraction curve), and
3. mean breakdown utilisation per protocol.
"""

import statistics

from benchmarks.conftest import banner
from repro.analysis.blocking import blocking_terms
from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.report import schedulability_report
from repro.analysis.rm_bound import rm_schedulable
from repro.workloads.examples import example3_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOLS = ("pcp-da", "rw-pcp", "pcp")
UTILIZATIONS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
SETS_PER_POINT = 40


def _make_sets(target_utilization):
    return [
        generate_taskset(
            WorkloadConfig(
                n_transactions=6,
                n_items=8,
                write_probability=0.5,
                hot_access_probability=0.8,
                target_utilization=target_utilization,
                seed=seed,
            )
        )
        for seed in range(SETS_PER_POINT)
    ]


def _schedulable_fraction_sweep():
    rows = []
    for utilization in UTILIZATIONS:
        sets = _make_sets(utilization)
        fractions = {
            protocol: sum(rm_schedulable(ts, protocol) for ts in sets) / len(sets)
            for protocol in PROTOCOLS
        }
        rows.append((utilization, fractions))
    return rows


def test_section9_blocking_terms_example3(benchmark):
    """The concrete B_i reduction behind Figure 2 vs Figure 3."""
    ts = example3_taskset()
    # Give T2 a period so the RM analysis applies end to end.
    from repro.model.spec import TaskSet, TransactionSpec

    periodic = TaskSet([
        ts["T1"],
        TransactionSpec(
            name="T2", operations=ts["T2"].operations,
            priority=ts["T2"].priority, period=20.0,
        ),
    ])
    terms = benchmark(
        lambda: {p: blocking_terms(periodic, p) for p in PROTOCOLS}
    )
    print(banner("Section 9: blocking terms B_i for Example 3's transactions"))
    print(f"{'txn':<5}" + "".join(f"{p:>10}" for p in PROTOCOLS))
    for name in periodic.names:
        print(f"{name:<5}" + "".join(f"{terms[p][name]:>10g}" for p in PROTOCOLS))

    # Paper claim: T2 writes only, so it drops out of BTS_1 under PCP-DA.
    assert terms["pcp-da"]["T1"] == 0.0
    assert terms["rw-pcp"]["T1"] == 5.0
    assert terms["pcp"]["T1"] == 5.0


def test_section9_schedulable_fraction(benchmark):
    rows = benchmark.pedantic(
        _schedulable_fraction_sweep, rounds=1, iterations=1
    )

    print(banner(
        "Section 9: fraction of random sets accepted by the RM bound"
    ))
    print(f"{'util':<6}" + "".join(f"{p:>10}" for p in PROTOCOLS))
    for utilization, fractions in rows:
        print(
            f"{utilization:<6}"
            + "".join(f"{fractions[p]:>10.2f}" for p in PROTOCOLS)
        )

    # Shape claims: acceptance is monotone in protocol generality at every
    # load point, and PCP-DA strictly wins somewhere in the mid range.
    strictly_better = 0
    for __, fractions in rows:
        assert fractions["pcp-da"] >= fractions["rw-pcp"] >= fractions["pcp"]
        if fractions["pcp-da"] > fractions["rw-pcp"]:
            strictly_better += 1
    assert strictly_better >= 1

    # Acceptance decays with load for every protocol.
    for protocol in PROTOCOLS:
        series = [fractions[protocol] for __, fractions in rows]
        assert series[0] >= series[-1]


def test_section9_breakdown_utilization(benchmark):
    sets = _make_sets(0.4)

    def mean_breakdowns():
        return {
            protocol: statistics.mean(
                breakdown_utilization(ts, protocol) for ts in sets
            )
            for protocol in PROTOCOLS
        }

    means = benchmark.pedantic(mean_breakdowns, rounds=1, iterations=1)
    print(banner("Section 9: mean breakdown utilisation (RM bound)"))
    for protocol in PROTOCOLS:
        print(f"{protocol:<8} {means[protocol]:.4f}")
    assert means["pcp-da"] >= means["rw-pcp"] >= means["pcp"]
    assert means["pcp-da"] > means["pcp"]


def test_section9_example_report(benchmark):
    """The full per-transaction report on one contended workload."""
    ts = generate_taskset(
        WorkloadConfig(
            n_transactions=5, n_items=4, write_probability=0.5,
            hot_access_probability=0.9, target_utilization=0.5, seed=11,
        )
    )
    report = benchmark.pedantic(
        lambda: schedulability_report(ts), rounds=1, iterations=1
    )
    print(banner("Section 9: full schedulability report (seed 11)"))
    print(report.render())
    for name in report.taskset_names:
        assert (
            report.blocking_by_protocol["pcp-da"][name]
            <= report.blocking_by_protocol["rw-pcp"][name]
        )
