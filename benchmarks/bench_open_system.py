"""Open-system study: miss ratio vs arrival rate (extension).

The classic RTDBS evaluation the paper's motivation implies: Poisson
transaction arrivals, firm slack-based deadlines, miss ratio measured as
the arrival rate sweeps the system from light load to saturation.
Protocols that waste capacity (plain 2PL's inversions, the abort-based
protocols' re-execution) saturate earlier.
"""

import statistics

from benchmarks.conftest import banner
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.workloads.open_system import (
    OpenSystemConfig,
    generate_open_system,
    offered_load,
)

PROTOCOLS = ("pcp-da", "2pl-hp", "occ-bc", "rw-pcp-abort", "pip-2pl")
RATES = (0.1, 0.3, 0.5, 0.7)
SEEDS = range(8)


def _sweep():
    rows = []
    for rate in RATES:
        per_protocol = {}
        loads = []
        for protocol in PROTOCOLS:
            misses, restarts = [], 0
            for seed in SEEDS:
                config = OpenSystemConfig(
                    arrival_rate=rate, duration=200.0, seed=seed,
                    hot_access_probability=0.6,
                )
                taskset = generate_open_system(config)
                loads.append(offered_load(taskset, config.duration))
                result = Simulator(
                    taskset, make_protocol(protocol),
                    SimConfig(
                        horizon=500.0, on_miss="abort",
                        deadlock_action="abort_lowest",
                    ),
                ).run()
                metrics = compute_metrics(result)
                misses.append(metrics.miss_ratio)
                restarts += metrics.total_restarts
            per_protocol[protocol] = (statistics.mean(misses), restarts)
        rows.append((rate, statistics.mean(loads), per_protocol))
    return rows


def test_open_system_miss_ratio(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print(banner("Open system: miss ratio vs Poisson arrival rate"))
    print(
        f"{'rate':<6}{'load':>6}"
        + "".join(f"{p:>15}" for p in PROTOCOLS)
    )
    for rate, load, per_protocol in rows:
        row = f"{rate:<6}{load:>6.2f}"
        for protocol in PROTOCOLS:
            miss, restarts = per_protocol[protocol]
            row += f"{100 * miss:>10.1f}%/{restarts:<4}"
        print(row)
    print("(cells are miss% / total restarts)")

    # Light load: everyone is nearly clean.
    light = rows[0][2]
    for protocol in PROTOCOLS:
        assert light[protocol][0] <= 0.1

    # Misses never decrease from the lightest to the heaviest load.
    heavy = rows[-1][2]
    for protocol in PROTOCOLS:
        assert heavy[protocol][0] >= light[protocol][0] - 1e-9
    assert max(heavy[p][0] for p in PROTOCOLS) > 0.1  # saturation reached

    # Restart-based protocols burn re-executions as load grows.
    assert heavy["2pl-hp"][1] + heavy["occ-bc"][1] > 0
    # PCP-DA never restarts anything.
    assert all(row[2]["pcp-da"][1] == 0 for row in rows)
