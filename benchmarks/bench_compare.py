"""Diff two BENCH ledgers; fail on events/s regressions past a threshold.

This is the review gate for perf PRs (docs/PERFORMANCE.md): run
``make bench`` on the base and head commits, then::

    make bench-compare BASE=BENCH_old.json HEAD=BENCH_new.json

The tool matches result rows on ``(benchmark, protocol)``, prints a
per-benchmark delta table, and exits non-zero when any matched row — or
the aggregate total — is more than ``--threshold`` (default 10%) slower
in events/s than the base.  Rows present on only one side are listed but
never fail the gate (protocol grids may legitimately grow).

``make bench-smoke`` uses the same comparator with a loose threshold to
guard against order-of-magnitude regressions on every ``make verify``,
diffing a fresh ``--smoke`` run against the checked-in
``benchmarks/BENCH_smoke_baseline.json``.

Stress ledgers (``mode="stress"``, written by ``make stress`` /
``repro stress --ledger``) diff through the same gate: their rows carry
``benchmark="stress_loadgen"`` and a ``protocol@Nsh`` key, so committed
throughput per deployment shape is matched and thresholded exactly like
engine-throughput rows — one comparator for both trend families.

Usage::

    PYTHONPATH=src python benchmarks/bench_compare.py BASE HEAD \
        [--threshold 0.10]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Tuple

try:  # runnable both as a module and as a script from the repo root
    from benchmarks.perf_report import validate_bench_document
except ImportError:  # pragma: no cover
    from perf_report import validate_bench_document


def load_ledger(path: pathlib.Path) -> Dict[str, Any]:
    """Read and schema-validate one ``repro-bench/1`` document."""
    doc = json.loads(path.read_text())
    validate_bench_document(doc)
    return doc


def _rows_by_key(doc: Dict[str, Any]) -> Dict[Tuple[str, str], Dict[str, Any]]:
    return {(r["benchmark"], r["protocol"]): r for r in doc["results"]}


def compare(
    base: Dict[str, Any],
    head: Dict[str, Any],
    threshold: float = 0.10,
    total_only: bool = False,
) -> Dict[str, Any]:
    """Structured comparison of two BENCH documents.

    Returns a dict with ``rows`` (one entry per matched ``(benchmark,
    protocol)`` pair: base/head events-per-second, the relative delta,
    and whether it regressed past the threshold), ``only_base`` /
    ``only_head`` key lists, the totals delta, and the overall ``ok``
    verdict the CLI turns into an exit code.

    With ``total_only`` the verdict considers only the aggregate row —
    the smoke gate's mode, where each per-protocol wall time is a few
    milliseconds and its relative delta is dominated by timer noise.
    """
    base_rows = _rows_by_key(base)
    head_rows = _rows_by_key(head)
    rows: List[Dict[str, Any]] = []
    for key in sorted(base_rows.keys() & head_rows.keys()):
        b = base_rows[key]["events_per_sec"]
        h = head_rows[key]["events_per_sec"]
        delta = (h - b) / b if b else 0.0
        rows.append({
            "benchmark": key[0],
            "protocol": key[1],
            "base_events_per_sec": b,
            "head_events_per_sec": h,
            "delta": delta,
            "regressed": not total_only and delta < -threshold,
        })
    tb = base["totals"]["events_per_sec"]
    th = head["totals"]["events_per_sec"]
    total_delta = (th - tb) / tb if tb else 0.0
    totals = {
        "base_events_per_sec": tb,
        "head_events_per_sec": th,
        "delta": total_delta,
        "regressed": total_delta < -threshold,
    }
    return {
        "threshold": threshold,
        "total_only": total_only,
        "rows": rows,
        "only_base": sorted(base_rows.keys() - head_rows.keys()),
        "only_head": sorted(head_rows.keys() - base_rows.keys()),
        "totals": totals,
        "ok": not totals["regressed"]
        and not any(r["regressed"] for r in rows),
    }


def render(report: Dict[str, Any]) -> str:
    """Human-readable delta table for one comparison report."""
    lines = [
        f"{'benchmark':<24}{'protocol':<12}{'base ev/s':>12}"
        f"{'head ev/s':>12}{'delta':>9}",
    ]
    for row in report["rows"]:
        flag = "  REGRESSION" if row["regressed"] else ""
        lines.append(
            f"{row['benchmark']:<24}{row['protocol']:<12}"
            f"{row['base_events_per_sec']:>12,.0f}"
            f"{row['head_events_per_sec']:>12,.0f}"
            f"{row['delta']:>+8.1%}{flag}"
        )
    t = report["totals"]
    flag = "  REGRESSION" if t["regressed"] else ""
    lines.append(
        f"{'TOTAL':<24}{'':<12}{t['base_events_per_sec']:>12,.0f}"
        f"{t['head_events_per_sec']:>12,.0f}{t['delta']:>+8.1%}{flag}"
    )
    for side, keys in (("base", report["only_base"]),
                       ("head", report["only_head"])):
        for benchmark, protocol in keys:
            lines.append(f"only in {side}: {benchmark}/{protocol}")
    lines.append(
        f"gate: fail below -{report['threshold']:.0%} events/s -> "
        + ("OK" if report["ok"] else "FAIL")
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", metavar="BASE", type=pathlib.Path,
                        help="baseline BENCH JSON (the commit under review's parent)")
    parser.add_argument("head", metavar="HEAD", type=pathlib.Path,
                        help="candidate BENCH JSON (the commit under review)")
    parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="maximum tolerated events/s drop per row and in total "
             "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--total-only", action="store_true",
        help="gate on the aggregate row only (for smoke ledgers whose "
             "per-protocol timings are too short to be stable)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")
    report = compare(
        load_ledger(args.base), load_ledger(args.head), args.threshold,
        total_only=args.total_only,
    )
    print(render(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
