"""Diff two BENCH ledgers; fail on events/s regressions past a threshold.

This is the review gate for perf PRs (docs/PERFORMANCE.md): run
``make bench`` on the base and head commits, then::

    make bench-compare BASE=BENCH_old.json HEAD=BENCH_new.json

The tool matches result rows on ``(benchmark, protocol)``, prints a
per-benchmark delta table, and exits non-zero when any matched row — or
the aggregate total — is more than ``--threshold`` (default 10%) slower
in events/s than the base.  Rows present on only one side are listed but
never fail the gate (protocol grids may legitimately grow).

``make bench-smoke`` uses the same comparator with a loose threshold to
guard against order-of-magnitude regressions on every ``make verify``,
diffing a fresh ``--smoke`` run against the checked-in
``benchmarks/BENCH_smoke_baseline.json``.

Stress ledgers (``mode="stress"``, written by ``make stress`` /
``repro stress --ledger``) diff through the same gate: their rows carry
``benchmark="stress_loadgen"`` and a ``protocol@Nsh`` key, so committed
throughput per deployment shape is matched and thresholded exactly like
engine-throughput rows — one comparator for both trend families.

``--shard-scaling`` is a *single-ledger* mode for stress ledgers: it
groups ``stress_loadgen`` rows by protocol base name and fails when any
``@Nsh`` (N > 1) row commits fewer transactions per second than
``(1 - threshold) ×`` its ``@1sh`` baseline — scale-out that loses to a
single shard is a regression, not a deployment choice.  ``make
stress-smoke`` runs it against a fresh smoke ledger on every ``make
verify``.

Usage::

    PYTHONPATH=src python benchmarks/bench_compare.py BASE HEAD \
        [--threshold 0.10]
    PYTHONPATH=src python benchmarks/bench_compare.py LEDGER \
        --shard-scaling [--threshold 0.10]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Any, Dict, List, Optional, Tuple

try:  # runnable both as a module and as a script from the repo root
    from benchmarks.perf_report import validate_bench_document
except ImportError:  # pragma: no cover
    from perf_report import validate_bench_document


def load_ledger(path: pathlib.Path) -> Dict[str, Any]:
    """Read and schema-validate one ``repro-bench/1`` document."""
    doc = json.loads(path.read_text())
    validate_bench_document(doc)
    return doc


def _rows_by_key(doc: Dict[str, Any]) -> Dict[Tuple[str, str], Dict[str, Any]]:
    return {(r["benchmark"], r["protocol"]): r for r in doc["results"]}


def compare(
    base: Dict[str, Any],
    head: Dict[str, Any],
    threshold: float = 0.10,
    total_only: bool = False,
) -> Dict[str, Any]:
    """Structured comparison of two BENCH documents.

    Returns a dict with ``rows`` (one entry per matched ``(benchmark,
    protocol)`` pair: base/head events-per-second, the relative delta,
    and whether it regressed past the threshold), ``only_base`` /
    ``only_head`` key lists, the totals delta, and the overall ``ok``
    verdict the CLI turns into an exit code.

    With ``total_only`` the verdict considers only the aggregate row —
    the smoke gate's mode, where each per-protocol wall time is a few
    milliseconds and its relative delta is dominated by timer noise.
    """
    base_rows = _rows_by_key(base)
    head_rows = _rows_by_key(head)
    rows: List[Dict[str, Any]] = []
    for key in sorted(base_rows.keys() & head_rows.keys()):
        b = base_rows[key]["events_per_sec"]
        h = head_rows[key]["events_per_sec"]
        delta = (h - b) / b if b else 0.0
        rows.append({
            "benchmark": key[0],
            "protocol": key[1],
            "base_events_per_sec": b,
            "head_events_per_sec": h,
            "delta": delta,
            "regressed": not total_only and delta < -threshold,
        })
    tb = base["totals"]["events_per_sec"]
    th = head["totals"]["events_per_sec"]
    total_delta = (th - tb) / tb if tb else 0.0
    totals = {
        "base_events_per_sec": tb,
        "head_events_per_sec": th,
        "delta": total_delta,
        "regressed": total_delta < -threshold,
    }
    return {
        "threshold": threshold,
        "total_only": total_only,
        "rows": rows,
        "only_base": sorted(base_rows.keys() - head_rows.keys()),
        "only_head": sorted(head_rows.keys() - base_rows.keys()),
        "totals": totals,
        "ok": not totals["regressed"]
        and not any(r["regressed"] for r in rows),
    }


_SHARD_KEY = re.compile(r"^(?P<proto>.+)@(?P<count>\d+)(?P<kind>sh|proc)$")


def shard_scaling_report(
    doc: Dict[str, Any], threshold: float = 0.10
) -> Dict[str, Any]:
    """Within-ledger shard-scaling check over ``stress_loadgen`` rows.

    For each protocol with a ``@1sh`` row, every ``@Nsh`` (N > 1) row is
    compared against it: the multi-shard deployment must commit at least
    ``(1 - threshold) ×`` the single-shard transactions/s.  Duplicate
    keys keep the *last* row, matching the append-only trend-ledger
    convention (the freshest run wins).  Protocols with multi-shard rows
    but no 1-shard baseline are listed under ``unmatched`` and never
    fail the gate.

    ``@Nproc`` rows (multi-*process* deployments) are compared against
    the same ``@1sh`` baseline but are **informational**: every shard op
    crosses a socket, so on a single-core box the ratio measures wire
    overhead, not scaling (docs/PERFORMANCE.md) — a gate on it would pin
    the host's core count, not the code.
    """
    latest: Dict[Tuple[str, int, str], Dict[str, Any]] = {}
    for row in doc["results"]:
        if row["benchmark"] != "stress_loadgen":
            continue
        match = _SHARD_KEY.match(row["protocol"])
        if match is None:
            continue
        latest[(
            match.group("proto"), int(match.group("count")),
            match.group("kind"),
        )] = row
    rows: List[Dict[str, Any]] = []
    unmatched: List[str] = []
    for (proto, count, kind), row in sorted(latest.items()):
        if count == 1 and kind == "sh":
            continue
        base = latest.get((proto, 1, "sh"))
        if base is None:
            unmatched.append(f"{proto}@{count}{kind}")
            continue
        b = base["events_per_sec"]
        h = row["events_per_sec"]
        ratio = h / b if b else 0.0
        rows.append({
            "protocol": proto,
            "shards": count,
            "kind": kind,
            "base_events_per_sec": b,
            "head_events_per_sec": h,
            "base_events": base["events"],
            "head_events": row["events"],
            "ratio": ratio,
            "informational": kind == "proc",
            "regressed": kind == "sh" and h < b * (1.0 - threshold),
        })
    return {
        "threshold": threshold,
        "rows": rows,
        "unmatched": unmatched,
        "ok": bool(rows) and not any(r["regressed"] for r in rows),
        "empty": not rows,
    }


def render_shard_scaling(report: Dict[str, Any]) -> str:
    """Human-readable table for one shard-scaling report."""
    lines = [
        f"{'deployment':<14}{'1sh ev/s':>12}{'N ev/s':>12}"
        f"{'1sh txns':>10}{'N txns':>10}{'ratio':>8}",
    ]
    for row in report["rows"]:
        if row["regressed"]:
            flag = "  REGRESSION"
        elif row["informational"]:
            flag = "  (info: crosses process boundaries)"
        else:
            flag = ""
        key = f"{row['protocol']}@{row['shards']}{row.get('kind', 'sh')}"
        lines.append(
            f"{key:<14}"
            f"{row['base_events_per_sec']:>12,.0f}"
            f"{row['head_events_per_sec']:>12,.0f}"
            f"{row['base_events']:>10,}{row['head_events']:>10,}"
            f"{row['ratio']:>7.2f}x{flag}"
        )
    for key in report["unmatched"]:
        lines.append(f"no 1-shard baseline for {key}")
    if report["empty"]:
        lines.append(
            "no comparable stress_loadgen @1sh/@Nsh row pairs in the ledger"
        )
    lines.append(
        f"gate: multi-shard >= {1.0 - report['threshold']:.0%} of 1-shard "
        "committed txn/s -> " + ("OK" if report["ok"] else "FAIL")
    )
    return "\n".join(lines)


def render(report: Dict[str, Any]) -> str:
    """Human-readable delta table for one comparison report."""
    lines = [
        f"{'benchmark':<24}{'protocol':<12}{'base ev/s':>12}"
        f"{'head ev/s':>12}{'delta':>9}",
    ]
    for row in report["rows"]:
        flag = "  REGRESSION" if row["regressed"] else ""
        lines.append(
            f"{row['benchmark']:<24}{row['protocol']:<12}"
            f"{row['base_events_per_sec']:>12,.0f}"
            f"{row['head_events_per_sec']:>12,.0f}"
            f"{row['delta']:>+8.1%}{flag}"
        )
    t = report["totals"]
    flag = "  REGRESSION" if t["regressed"] else ""
    lines.append(
        f"{'TOTAL':<24}{'':<12}{t['base_events_per_sec']:>12,.0f}"
        f"{t['head_events_per_sec']:>12,.0f}{t['delta']:>+8.1%}{flag}"
    )
    for side, keys in (("base", report["only_base"]),
                       ("head", report["only_head"])):
        for benchmark, protocol in keys:
            lines.append(f"only in {side}: {benchmark}/{protocol}")
    lines.append(
        f"gate: fail below -{report['threshold']:.0%} events/s -> "
        + ("OK" if report["ok"] else "FAIL")
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", metavar="BASE", type=pathlib.Path,
                        help="baseline BENCH JSON (the commit under review's "
                             "parent); with --shard-scaling, the single "
                             "stress ledger to check")
    parser.add_argument("head", metavar="HEAD", type=pathlib.Path,
                        nargs="?", default=None,
                        help="candidate BENCH JSON (the commit under review); "
                             "omitted in --shard-scaling mode")
    parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="maximum tolerated events/s drop per row and in total "
             "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--total-only", action="store_true",
        help="gate on the aggregate row only (for smoke ledgers whose "
             "per-protocol timings are too short to be stable)",
    )
    parser.add_argument(
        "--shard-scaling", action="store_true",
        help="single-ledger mode: fail when any stress @Nsh row commits "
             "fewer txn/s than (1 - threshold) x its @1sh baseline",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")
    if args.shard_scaling:
        if args.head is not None:
            parser.error("--shard-scaling reads one ledger; drop HEAD")
        report = shard_scaling_report(load_ledger(args.base), args.threshold)
        print(render_shard_scaling(report))
        return 0 if report["ok"] else 1
    if args.head is None:
        parser.error("HEAD ledger is required unless --shard-scaling")
    report = compare(
        load_ledger(args.base), load_ledger(args.head), args.threshold,
        total_only=args.total_only,
    )
    print(render(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
