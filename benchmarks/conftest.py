"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (a table, a
figure, or the Section 9 analysis), prints it (run pytest with ``-s`` to
see the output), asserts the qualitative *shape* the paper reports, and
times the regeneration under pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol


def simulate(taskset, protocol_name, config=None, **kwargs):
    """One full simulation run; returns the result."""
    return Simulator(taskset, make_protocol(protocol_name, **kwargs), config).run()


def banner(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}"
