"""Engine throughput — how fast the substrate simulates.

Not a paper artifact, but the harness everything else stands on: these
benchmarks time full simulations (hyperperiod, priority inheritance,
ceiling checks, serializability audit) so regressions in the engine's hot
paths are visible.
"""

from benchmarks.conftest import banner, simulate
from repro.db.serializability import check_serializable
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.workloads.generator import WorkloadConfig, generate_taskset

_TASKSET = generate_taskset(
    WorkloadConfig(
        n_transactions=8, n_items=10, write_probability=0.4,
        hot_access_probability=0.7, target_utilization=0.65, seed=7,
    )
)


def test_throughput_pcp_da_hyperperiod(benchmark):
    result = benchmark(
        lambda: Simulator(_TASKSET, make_protocol("pcp-da"), SimConfig()).run()
    )
    assert result.committed_jobs


def test_throughput_rw_pcp_hyperperiod(benchmark):
    result = benchmark(
        lambda: Simulator(_TASKSET, make_protocol("rw-pcp"), SimConfig()).run()
    )
    assert result.committed_jobs


def test_throughput_serializability_check(benchmark):
    result = Simulator(_TASKSET, make_protocol("pcp-da"), SimConfig()).run()
    graph = benchmark(lambda: check_serializable(result.history))
    assert graph.is_acyclic()


def test_throughput_long_horizon(benchmark):
    """A 10x-hyperperiod run: event-queue and dispatcher scaling."""
    config = SimConfig(horizon=4800.0)
    result = benchmark.pedantic(
        lambda: Simulator(_TASKSET, make_protocol("pcp-da"), config).run(),
        rounds=3, iterations=1,
    )
    assert len(result.jobs) > 50


def test_ledger_warm_cache_speedup(benchmark, tmp_path):
    """Full-ledger rerun against a warm result cache: >= 5x faster.

    The acceptance bar for the parallel-sweep PR: the first run computes
    and stores every report; the second only deserialises them.  Prints a
    cold/warm table (run with ``-s``).
    """
    import time

    from repro.experiments import ResultCache, render_summary, run_all

    root = tmp_path / "cache"
    t0 = time.perf_counter()
    baseline = run_all(cache=ResultCache(root))
    cold = time.perf_counter() - t0

    def warm_run():
        return run_all(cache=ResultCache(root))

    t0 = time.perf_counter()
    warm_reports = warm_run()
    warm = time.perf_counter() - t0
    benchmark.pedantic(warm_run, rounds=5, iterations=1)

    assert render_summary(warm_reports) == render_summary(baseline)
    print(banner("Full ledger: cold vs warm result cache"))
    print(f"{'run':<12}{'wall (s)':>12}{'speedup':>10}")
    print(f"{'cold':<12}{cold:>12.4f}{'1.0x':>10}")
    print(f"{'warm':<12}{warm:>12.4f}{cold / warm:>9.1f}x")
    assert cold >= 5 * warm, (
        f"warm cache only {cold / warm:.1f}x faster (cold={cold:.4f}s, "
        f"warm={warm:.4f}s); expected >= 5x"
    )


def test_ledger_serial_vs_parallel(benchmark):
    """Serial vs ``jobs=4`` ledger: identical bytes, measured speedup.

    On a single-core host the pool overhead usually makes jobs=4 *slower*;
    the point of the table is that content never changes, only wall time
    (see docs/PERFORMANCE.md).  Prints the comparison (run with ``-s``).
    """
    import os
    import time

    from repro.experiments import render_summary, run_all

    t0 = time.perf_counter()
    serial_summary = render_summary(run_all())
    serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_summary = render_summary(run_all(jobs=4))
    parallel = time.perf_counter() - t0
    benchmark.pedantic(lambda: run_all(jobs=4), rounds=3, iterations=1)

    assert parallel_summary == serial_summary  # byte-identical
    print(banner("Full ledger: serial vs parallel (jobs=4)"))
    print(f"host cores: {os.cpu_count()}")
    print(f"{'mode':<12}{'wall (s)':>12}{'speedup':>10}")
    print(f"{'serial':<12}{serial:>12.4f}{'1.0x':>10}")
    print(f"{'jobs=4':<12}{parallel:>12.4f}{serial / parallel:>9.2f}x")
